"""Generic Join driver tests."""

import pytest

from repro.core.adapter import IndexAdapter
from repro.errors import QueryError
from repro.indexes import BPlusTree
from repro.joins import GenericJoin, build_adapters, resolve_relations
from repro.planner import parse_query, total_order
from repro.storage import Relation


def make_adapters(query, relations, index="btree"):
    resolved = resolve_relations(query, relations)
    order = total_order(query)
    return build_adapters(query, resolved, order, index=index), order


class TestBasics:
    def test_two_way_join(self):
        query = parse_query("R(a,b), S(b,c)")
        r = Relation("R", ("a", "b"), [(1, 10), (2, 20)])
        s = Relation("S", ("b", "c"), [(10, 100), (10, 200), (30, 300)])
        adapters, order = make_adapters(query, {"R": r, "S": s})
        result = GenericJoin(query, adapters, order=order).run(materialize=True)
        normalized = {tuple(dict(zip(result.attributes, row))[a]
                            for a in ("a", "b", "c"))
                      for row in result.rows}
        assert normalized == {(1, 10, 100), (1, 10, 200)}

    def test_empty_input_empty_output(self):
        query = parse_query("R(a,b), S(b,c)")
        r = Relation("R", ("a", "b"), [])
        s = Relation("S", ("b", "c"), [(1, 2)])
        adapters, order = make_adapters(query, {"R": r, "S": s})
        assert GenericJoin(query, adapters, order=order).run().count == 0

    def test_empty_intersection(self):
        query = parse_query("R(a,b), S(b,c)")
        r = Relation("R", ("a", "b"), [(1, 10)])
        s = Relation("S", ("b", "c"), [(99, 100)])
        adapters, order = make_adapters(query, {"R": r, "S": s})
        assert GenericJoin(query, adapters, order=order).run().count == 0

    def test_missing_adapter_rejected(self):
        query = parse_query("R(a,b), S(b,c)")
        r = Relation("R", ("a", "b"), [(1, 10)])
        adapter = IndexAdapter(r, BPlusTree(2), ("a", "b"))
        with pytest.raises(QueryError):
            GenericJoin(query, {"R": adapter})

    def test_bad_order_rejected(self):
        query = parse_query("R(a,b), S(b,c)")
        relations = {"R": Relation("R", ("a", "b"), [(1, 2)]),
                     "S": Relation("S", ("b", "c"), [(2, 3)])}
        adapters, order = make_adapters(query, relations)
        with pytest.raises(QueryError):
            GenericJoin(query, adapters, order=("a", "b"))


class TestWorstCaseOptimality:
    def test_intermediates_bounded_on_adversarial_triangle(self):
        """The Fig 1 property: GJ's intermediates don't explode."""
        from repro.data import adversarial_triangle_tables
        from repro.joins import BinaryHashJoin

        tables = adversarial_triangle_tables(220, adversity=1.0, seed=7)
        query = parse_query("R(a,b), S(b,c), T(c,a)")
        relations = resolve_relations(query, tables)

        adapters, order = make_adapters(query, tables)
        generic = GenericJoin(query, adapters, order=order)
        generic_result = generic.run()

        binary = BinaryHashJoin(query, relations)
        binary_result = binary.run()

        assert generic_result.count == binary_result.count
        # the star data makes one binary sub-join quadratic: intermediates
        # dwarf the result; GJ stays within a small factor of the output
        assert binary.metrics.intermediate_tuples > 20 * binary_result.count
        assert generic.metrics.intermediate_tuples < \
            binary.metrics.intermediate_tuples / 4

    def test_dynamic_vs_static_seed_same_result(self):
        from repro.data import random_edge_relation

        edges = random_edge_relation(40, 250, seed=8)
        query = parse_query("E1=E(a,b), E2=E(b,c), E3=E(c,a)")
        source = {"E1": edges, "E2": edges, "E3": edges}
        resolved = resolve_relations(query, source)
        order = total_order(query)
        adapters = build_adapters(query, resolved, order, index="btree")
        dynamic = GenericJoin(query, adapters, order=order,
                              dynamic_seed=True).run()
        adapters2 = build_adapters(query, resolved, order, index="btree")
        static = GenericJoin(query, adapters2, order=order,
                             dynamic_seed=False).run()
        assert dynamic.count == static.count


class TestMetrics:
    def test_metrics_populated(self):
        query = parse_query("R(a,b), S(b,c)")
        relations = {"R": Relation("R", ("a", "b"), [(1, 2), (3, 2)]),
                     "S": Relation("S", ("b", "c"), [(2, 5)])}
        adapters, order = make_adapters(query, relations)
        driver = GenericJoin(query, adapters, order=order)
        result = driver.run()
        assert result.metrics.algorithm == "generic_join"
        assert result.metrics.lookups > 0
        assert result.metrics.result_count == result.count == 2
