"""Recursive Join (the paper's Alg. 1) tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import join
from repro.data import random_edge_relation, triangle_count_truth
from repro.joins import RecursiveJoin, resolve_relations
from repro.planner import cycle_query, parse_query
from repro.storage import Relation


class TestCorrectness:
    def test_triangles_match_oracle(self):
        edges = random_edge_relation(30, 170, seed=61)
        count = join("E1=E(a,b), E2=E(b,c), E3=E(c,a)",
                     {"E1": edges, "E2": edges, "E3": edges},
                     algorithm="recursive").count
        assert count == triangle_count_truth(edges)

    def test_pentagon_matches_generic(self):
        edges = random_edge_relation(18, 70, seed=62)
        query = cycle_query(5)
        source = {f"E{i}": edges for i in range(1, 6)}
        recursive = join(query, source, algorithm="recursive").count
        generic = join(query, source, algorithm="generic",
                       index="btree").count
        assert recursive == generic

    def test_empty_inputs(self):
        empty = Relation("E", ("s", "d"), [])
        source = {"E1": empty, "E2": empty, "E3": empty}
        assert join("E1=E(a,b), E2=E(b,c), E3=E(c,a)", source,
                    algorithm="recursive").count == 0

    def test_covering_edge_base_case(self):
        wide = Relation("W", ("a", "b", "c"),
                        [(1, 2, 3), (1, 2, 4), (5, 6, 7)])
        narrow = Relation("N", ("a", "b"), [(1, 2)])
        count = join("W(a,b,c), N(a,b)", {"W": wide, "N": narrow},
                     algorithm="recursive").count
        assert count == 2  # (1,2,3) and (1,2,4)

    def test_metrics_and_cover_weights(self):
        edges = random_edge_relation(20, 90, seed=63)
        query = parse_query("E1=E(a,b), E2=E(b,c), E3=E(c,a)")
        relations = resolve_relations(query, {"E1": edges, "E2": edges,
                                              "E3": edges})
        driver = RecursiveJoin(query, relations)
        # triangle cover: all weights 1/2 -> the line-10 branch is live
        assert all(abs(w - 0.5) < 1e-6 for w in driver._weights.values())
        result = driver.run()
        assert driver.metrics.lookups > 0
        assert result.count == triangle_count_truth(edges)


@settings(max_examples=15, deadline=None)
@given(
    r_rows=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                    min_size=0, max_size=25),
    s_rows=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                    min_size=0, max_size=25),
    t_rows=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                    min_size=0, max_size=25),
)
def test_property_recursive_equals_truth(r_rows, s_rows, t_rows):
    r = Relation("R", ("a", "b"), set(r_rows))
    s = Relation("S", ("b", "c"), set(s_rows))
    t = Relation("T", ("c", "a"), set(t_rows))
    truth = sorted(
        (a, b, c)
        for (a, b) in set(r_rows)
        for (b2, c) in set(s_rows) if b2 == b
        for (c2, a2) in set(t_rows) if c2 == c and a2 == a
    )
    result = join("R(a,b), S(b,c), T(c,a)", {"R": r, "S": s, "T": t},
                  algorithm="recursive", materialize=True)
    positions = [result.attributes.index(x) for x in ("a", "b", "c")]
    got = sorted(tuple(row[p] for p in positions) for row in result.rows)
    assert got == truth
