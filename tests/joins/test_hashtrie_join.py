"""Hash-Trie Join (Umbra) tests."""

from repro.joins import BinaryHashJoin, HashTrieJoin, resolve_relations
from repro.planner import parse_query
from repro.storage import Relation


def triangle_setup(edges):
    query = parse_query("E1=E(a,b), E2=E(b,c), E3=E(c,a)")
    return query, resolve_relations(query, {"E1": edges, "E2": edges,
                                            "E3": edges})


class TestCorrectness:
    def test_matches_binary_join(self):
        from repro.data import random_edge_relation

        edges = random_edge_relation(35, 220, seed=10)
        query, relations = triangle_setup(edges)
        hashtrie = HashTrieJoin(query, relations).run()
        binary = BinaryHashJoin(query, relations).run()
        assert hashtrie.count == binary.count

    def test_flags_toggle_without_changing_results(self):
        from repro.data import random_edge_relation

        edges = random_edge_relation(30, 150, seed=11)
        query, relations = triangle_setup(edges)
        counts = set()
        for lazy in (True, False):
            for pruning in (True, False):
                driver = HashTrieJoin(query, relations, lazy=lazy,
                                      singleton_pruning=pruning)
                counts.add(driver.run().count)
        assert len(counts) == 1


class TestUmbraBehaviour:
    def test_lazy_build_defers_expansion_cost(self):
        from repro.data import random_edge_relation

        edges = random_edge_relation(40, 260, seed=12)
        query, relations = triangle_setup(edges)
        lazy = HashTrieJoin(query, relations, lazy=True)
        lazy.build()
        assert lazy.expansion_stats()["expansions"] == 0
        lazy.run()
        # arity-2 tries have only one level; expansion work appears on
        # wider relations — assert the counter plumbing is alive instead
        stats = lazy.expansion_stats()
        assert stats["expansions"] >= 0

    def test_skewed_wide_join_pays_runtime_redistribution(self):
        from repro.data import umbra_adversarial_tables

        tables = umbra_adversarial_tables(220, alpha=0.95, seed=13)
        query = parse_query(
            "R1(a,b,d,e), R2(a,c,d,f), R3(a,b,c), R4(b,d,f), R5(c,e,f)")
        relations = resolve_relations(query, tables)
        driver = HashTrieJoin(query, relations, lazy=True)
        driver.run()
        stats = driver.expansion_stats()
        assert stats["expansions"] > 0
        assert stats["redistributed"] > 0

    def test_anchor_is_smallest_relation(self):
        query = parse_query("R(a,b), S(a,c)")
        relations = resolve_relations(query, {
            "R": Relation("R", ("a", "b"), [(i, i) for i in range(50)]),
            "S": Relation("S", ("a", "c"), [(i, i) for i in range(5)]),
        })
        driver = HashTrieJoin(query, relations)
        assert driver.anchor == "S"

    def test_cursor_count_is_level_width(self):
        from repro.indexes import HashTrie

        trie = HashTrie(3)
        trie.build([(1, i, 0) for i in range(10)] + [(2, 0, 0)])
        cursor = trie.cursor()
        assert cursor.count() == 2  # two first-level entries
        assert cursor.try_descend(1)
        assert cursor.count() == 10  # expanded level width
