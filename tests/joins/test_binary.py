"""Binary hash-join pipeline tests."""

import pytest

from repro.errors import QueryError
from repro.joins import BinaryHashJoin, resolve_relations
from repro.planner import parse_query
from repro.storage import Relation


def resolved(query_text, relations):
    query = parse_query(query_text)
    return query, resolve_relations(query, relations)


class TestPipeline:
    def test_two_way(self):
        query, relations = resolved("R(a,b), S(b,c)", {
            "R": Relation("R", ("a", "b"), [(1, 10), (2, 20)]),
            "S": Relation("S", ("b", "c"), [(10, 5), (10, 6)]),
        })
        result = BinaryHashJoin(query, relations).run(materialize=True)
        normalized = {tuple(dict(zip(result.attributes, row))[a]
                            for a in ("a", "b", "c")) for row in result.rows}
        assert normalized == {(1, 10, 5), (1, 10, 6)}

    def test_three_way_chain(self):
        query, relations = resolved("R(a,b), S(b,c), T(c,d)", {
            "R": Relation("R", ("a", "b"), [(1, 2)]),
            "S": Relation("S", ("b", "c"), [(2, 3)]),
            "T": Relation("T", ("c", "d"), [(3, 4), (3, 5)]),
        })
        result = BinaryHashJoin(query, relations).run()
        assert result.count == 2

    def test_self_join_aliases(self):
        edges = Relation("E", ("src", "dst"), [(0, 1), (1, 2), (2, 0), (1, 0)])
        query, relations = resolved("E1=E(a,b), E2=E(b,c), E3=E(c,a)",
                                    {"E1": edges, "E2": edges, "E3": edges})
        result = BinaryHashJoin(query, relations).run()
        assert result.count == 3  # the rotations (0,1,2),(1,2,0),(2,0,1)

    def test_pinned_order(self):
        query, relations = resolved("R(a,b), S(b,c)", {
            "R": Relation("R", ("a", "b"), [(1, 10)]),
            "S": Relation("S", ("b", "c"), [(10, 5)]),
        })
        driver = BinaryHashJoin(query, relations, order=["S", "R"])
        assert driver.order == ["S", "R"]
        assert driver.run().count == 1

    def test_bad_pinned_order_rejected(self):
        query, relations = resolved("R(a,b), S(b,c)", {
            "R": Relation("R", ("a", "b"), [(1, 10)]),
            "S": Relation("S", ("b", "c"), [(10, 5)]),
        })
        with pytest.raises(QueryError):
            BinaryHashJoin(query, relations, order=["R"])

    def test_cross_product_handled(self):
        query, relations = resolved("R(a,b), S(x,y)", {
            "R": Relation("R", ("a", "b"), [(1, 2), (3, 4)]),
            "S": Relation("S", ("x", "y"), [(5, 6), (7, 8), (9, 10)]),
        })
        assert BinaryHashJoin(query, relations).run().count == 6

    def test_single_atom_scan(self):
        query, relations = resolved("R(a,b)", {
            "R": Relation("R", ("a", "b"), [(1, 2), (3, 4)]),
        })
        assert BinaryHashJoin(query, relations).run().count == 2

    def test_repeated_run_does_not_rebuild(self):
        query, relations = resolved("R(a,b), S(b,c)", {
            "R": Relation("R", ("a", "b"), [(1, 10)]),
            "S": Relation("S", ("b", "c"), [(10, 5)]),
        })
        driver = BinaryHashJoin(query, relations)
        driver.run()
        build_time = driver.metrics.build_seconds
        driver.run()
        assert driver.metrics.build_seconds == build_time


class TestOrderSensitivity:
    def test_bad_order_inflates_intermediates(self):
        """The Fig 1 motivation: binary join cost depends on the order."""
        from repro.data import adversarial_triangle_tables

        tables = adversarial_triangle_tables(200, adversity=1.0, seed=9)
        query, relations = resolved("R(a,b), S(b,c), T(c,a)", tables)

        worst = BinaryHashJoin(query, relations, order=["R", "S", "T"])
        worst_result = worst.run()
        assert worst_result.count >= 1
        assert worst.metrics.intermediate_tuples > \
            50 * max(worst_result.count, 1)
