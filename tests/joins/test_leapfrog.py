"""Leapfrog Triejoin tests."""

from repro.data import random_edge_relation, triangle_count_truth
from repro.joins import BinaryHashJoin, LeapfrogTrieJoin, resolve_relations
from repro.planner import parse_query
from repro.storage import Relation


class TestCorrectness:
    def test_triangles_match_truth(self):
        edges = random_edge_relation(40, 250, seed=21)
        query = parse_query("E1=E(a,b), E2=E(b,c), E3=E(c,a)")
        relations = resolve_relations(query, {"E1": edges, "E2": edges,
                                              "E3": edges})
        result = LeapfrogTrieJoin(query, relations).run()
        assert result.count == triangle_count_truth(edges)

    def test_two_way(self):
        query = parse_query("R(a,b), S(b,c)")
        relations = resolve_relations(query, {
            "R": Relation("R", ("a", "b"), [(1, 10), (2, 20), (3, 10)]),
            "S": Relation("S", ("b", "c"), [(10, 7), (20, 8)]),
        })
        result = LeapfrogTrieJoin(query, relations).run(materialize=True)
        assert result.count == 3

    def test_empty_relation_short_circuits(self):
        query = parse_query("R(a,b), S(b,c)")
        relations = resolve_relations(query, {
            "R": Relation("R", ("a", "b"), []),
            "S": Relation("S", ("b", "c"), [(1, 2)]),
        })
        assert LeapfrogTrieJoin(query, relations).run().count == 0

    def test_matches_binary_on_wider_query(self):
        import random
        rng = random.Random(22)
        r = Relation("R", ("a", "b"),
                     {(rng.randrange(12), rng.randrange(12)) for _ in range(60)})
        s = Relation("S", ("b", "c", "d"),
                     {(rng.randrange(12), rng.randrange(12), rng.randrange(12))
                      for _ in range(90)})
        t = Relation("T", ("d", "a"),
                     {(rng.randrange(12), rng.randrange(12)) for _ in range(60)})
        query = parse_query("R(a,b), S(b,c,d), T(d,a)")
        relations = resolve_relations(query, {"R": r, "S": s, "T": t})
        lftj = LeapfrogTrieJoin(query, relations).run()
        binary = BinaryHashJoin(query, relations).run()
        assert lftj.count == binary.count

    def test_seek_counter_grows(self):
        edges = random_edge_relation(30, 200, seed=23)
        query = parse_query("E1=E(a,b), E2=E(b,c), E3=E(c,a)")
        relations = resolve_relations(query, {"E1": edges, "E2": edges,
                                              "E3": edges})
        driver = LeapfrogTrieJoin(query, relations)
        driver.run()
        assert driver.metrics.lookups > 0
        assert driver.metrics.build_seconds > 0
