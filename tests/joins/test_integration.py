"""End-to-end integration tests across the whole stack."""

import subprocess
import sys

import pytest

from repro import Catalog, Relation, join, parse_query
from repro.data import load_snap_dataset, make_imdb, job_light_queries, triangle_count_truth
from repro.planner import clique_query, cycle_query


class TestGraphWorkloads:
    def test_triangles_on_snap_standin(self):
        edges = load_snap_dataset("facebook", scale=0.15, seed=3)
        truth = triangle_count_truth(edges)
        source = {"E1": edges, "E2": edges, "E3": edges}
        query = "E1=E(a,b), E2=E(b,c), E3=E(c,a)"
        assert join(query, source, index="sonic").count == truth
        assert join(query, source, algorithm="hashtrie").count == truth

    def test_four_cycles_agree(self):
        edges = load_snap_dataset("wikivote", scale=0.1, seed=4)
        query = cycle_query(4)
        source = {f"E{i}": edges for i in range(1, 5)}
        counts = {join(query, source, algorithm=a).count
                  for a in ("generic", "binary", "leapfrog")}
        assert len(counts) == 1

    def test_clique_query_runs(self):
        edges = load_snap_dataset("facebook", scale=0.1, seed=5)
        query = clique_query(3)  # triangle expressed as a clique
        source = {atom.alias: edges for atom in query.atoms}
        result = join(query, source, index="sonic")
        assert result.count == triangle_count_truth(edges)


class TestRelationalWorkloads:
    def test_job_light_binary_vs_wcoj_full_sweep(self):
        catalog = make_imdb(250, seed=6)
        for job in job_light_queries(catalog, seed=7, max_satellites=3)[:8]:
            binary = join(job.query, job.relations, algorithm="binary").count
            wcoj = join(job.query, job.relations, index="sonic").count
            assert binary == wcoj, job.name

    def test_catalog_workflow(self):
        catalog = Catalog([
            Relation("orders", ("order_id", "customer"),
                     [(i, i % 7) for i in range(60)]),
            Relation("items", ("order_id", "product"),
                     [(i % 60, i % 11) for i in range(120)]),
        ])
        result = join("orders(o, c), items(o, p)", catalog,
                      algorithm="auto", materialize=True)
        assert result.count > 0
        # every output row joins correctly
        orders = set(catalog["orders"].rows)
        for row in result.rows_as_dicts():
            assert (row["o"], row["c"]) in orders


class TestEmptyAndDegenerateInputs:
    def test_all_algorithms_handle_empty_relation(self):
        empty = Relation("E", ("s", "d"), [])
        source = {"E1": empty, "E2": empty, "E3": empty}
        query = "E1=E(a,b), E2=E(b,c), E3=E(c,a)"
        for algorithm in ("generic", "binary", "hashtrie", "leapfrog"):
            assert join(query, source, algorithm=algorithm).count == 0

    def test_single_tuple_everywhere(self):
        one = Relation("E", ("s", "d"), [(1, 1)])
        source = {"E1": one, "E2": one, "E3": one}
        query = "E1=E(a,b), E2=E(b,c), E3=E(c,a)"
        for algorithm in ("generic", "binary", "hashtrie", "leapfrog"):
            assert join(query, source, algorithm=algorithm).count == 1

    def test_disconnected_query_is_cross_product(self):
        r = Relation("R", ("a", "b"), [(1, 2), (3, 4)])
        s = Relation("S", ("x", "y"), [(5, 6), (7, 8), (9, 10)])
        query = parse_query("R(a,b), S(x,y)")
        for algorithm in ("generic", "binary", "leapfrog"):
            assert join(query, {"R": r, "S": s},
                        algorithm=algorithm).count == 6


class TestModuleEntryPoint:
    @pytest.mark.slow
    def test_python_dash_m_repro(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro"],
            capture_output=True, text=True, timeout=300,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
        assert "self-check passed" in completed.stdout
