"""Regressions for the RA5xx dogfood fixes in the join drivers.

The per-probe allocations in ``GenericJoin._join_level`` (fresh
participant/others/survived lists per partial binding) and
``LeapfrogTrieJoin._join_level`` (fresh iterator list per level entry)
were hoisted into per-depth lists built once per ``run()``; the dead
``participants``/``candidates`` stores found by RA503 were removed.
These tests pin the restructured drivers to the old semantics — same
results, balanced cursors — and keep the fixed files clean under the
analyzer so the allocations cannot creep back.
"""

from pathlib import Path

from repro.analysis import analyze_paths
from repro.data import adversarial_triangle_tables
from repro.joins import (
    BinaryHashJoin,
    GenericJoin,
    LeapfrogTrieJoin,
    RecursiveJoin,
    build_adapters,
    resolve_relations,
)
from repro.planner import parse_query, total_order
from repro.storage import Relation

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXED_FILES = [
    REPO_ROOT / "src" / "repro" / "joins" / "generic_join.py",
    REPO_ROOT / "src" / "repro" / "joins" / "leapfrog.py",
]


def normalized(result, attrs):
    return {tuple(dict(zip(result.attributes, row))[a] for a in attrs)
            for row in result.rows}


def triangle_setup(n=160, seed=5):
    tables = adversarial_triangle_tables(n, adversity=0.7, seed=seed)
    query = parse_query("R(a,b), S(b,c), T(c,a)")
    return query, tables


class TestDriversAgreeAfterRestructure:
    def test_generic_join_matches_binary_on_triangle(self):
        query, tables = triangle_setup()
        relations = resolve_relations(query, tables)
        order = total_order(query)
        adapters = build_adapters(query, relations, order, index="btree")
        generic = GenericJoin(query, adapters, order=order).run(materialize=True)
        binary = BinaryHashJoin(query, relations).run(materialize=True)
        attrs = ("a", "b", "c")
        assert normalized(generic, attrs) == normalized(binary, attrs)

    def test_leapfrog_matches_binary_on_triangle(self):
        query, tables = triangle_setup()
        relations = resolve_relations(query, tables)
        leapfrog = LeapfrogTrieJoin(query, relations).run(materialize=True)
        binary = BinaryHashJoin(query, relations).run(materialize=True)
        attrs = ("a", "b", "c")
        assert normalized(leapfrog, attrs) == normalized(binary, attrs)

    def test_recursive_matches_binary_on_triangle(self):
        query, tables = triangle_setup(n=120)
        relations = resolve_relations(query, tables)
        recursive = RecursiveJoin(query, relations).run(materialize=True)
        binary = BinaryHashJoin(query, relations).run(materialize=True)
        attrs = ("a", "b", "c")
        assert normalized(recursive, attrs) == normalized(binary, attrs)

    def test_generic_join_static_and_dynamic_agree(self):
        query, tables = triangle_setup(n=100, seed=9)
        relations = resolve_relations(query, tables)
        order = total_order(query)
        adapters = build_adapters(query, relations, order, index="sonic")
        dynamic = GenericJoin(query, adapters, order=order,
                              dynamic_seed=True).run(materialize=True)
        adapters2 = build_adapters(query, relations, order, index="sonic")
        static = GenericJoin(query, adapters2, order=order,
                             dynamic_seed=False).run(materialize=True)
        attrs = ("a", "b", "c")
        assert normalized(dynamic, attrs) == normalized(static, attrs)


class TestCursorBalance:
    def test_generic_join_leaves_cursors_at_root(self):
        """The descended-counter ascend logic must pop exactly what it
        pushed: rerunning on the same adapters works only if it does."""
        query = parse_query("R(a,b), S(b,c)")
        r = Relation("R", ("a", "b"), [(1, 10), (2, 20), (2, 30)])
        s = Relation("S", ("b", "c"), [(10, 1), (20, 2), (30, 3)])
        relations = resolve_relations(query, {"R": r, "S": s})
        order = total_order(query)
        adapters = build_adapters(query, relations, order, index="hashtrie")
        driver = GenericJoin(query, adapters, order=order)
        first = driver.run(materialize=True)
        second = driver.run(materialize=True)
        attrs = ("a", "b", "c")
        assert normalized(first, attrs) == normalized(second, attrs)
        assert first.count == second.count

    def test_leapfrog_rerun_is_stable(self):
        query, tables = triangle_setup(n=80, seed=3)
        relations = resolve_relations(query, tables)
        driver = LeapfrogTrieJoin(query, relations)
        first = driver.run(materialize=True)
        second = driver.run(materialize=True)
        attrs = ("a", "b", "c")
        assert normalized(first, attrs) == normalized(second, attrs)


class TestFixedFilesStayClean:
    def test_no_hot_alloc_or_dead_store_findings(self):
        findings = analyze_paths(FIXED_FILES)
        hot = [f for f in findings if f.rule in ("RA501", "RA503")]
        assert hot == [], [f.render() for f in hot]
