"""Seed (anchor) selection behaviour of the WCOJ drivers."""

import random

from repro.joins import GenericJoin, HashTrieJoin, build_adapters, resolve_relations
from repro.planner import parse_query
from repro.planner.qptree import connectivity_order
from repro.storage import Relation


def skewed_pair():
    """R has a hub value with many children; S is uniform."""
    rng = random.Random(171)
    r_rows = {(0, i) for i in range(300)} | {(i, i) for i in range(1, 40)}
    s_rows = {(rng.randrange(40), rng.randrange(40)) for _ in range(120)}
    return (Relation("R", ("a", "b"), r_rows),
            Relation("S", ("a", "c"), s_rows))


class TestDynamicSeed:
    def test_dynamic_explores_no_more_than_static(self):
        r, s = skewed_pair()
        query = parse_query("R(a,b), S(a,c)")
        relations = resolve_relations(query, {"R": r, "S": s})
        order = connectivity_order(query)

        def run(dynamic):
            adapters = build_adapters(query, relations, order, index="sonic")
            driver = GenericJoin(query, adapters, order=order,
                                 dynamic_seed=dynamic)
            result = driver.run()
            return result.count, driver.metrics.intermediate_tuples

        dynamic_count, dynamic_work = run(True)
        static_count, static_work = run(False)
        assert dynamic_count == static_count
        assert dynamic_work <= static_work

    def test_static_seed_is_smallest_relation(self):
        r, s = skewed_pair()
        query = parse_query("R(a,b), S(a,c)")
        relations = resolve_relations(query, {"R": r, "S": s})
        order = connectivity_order(query)
        adapters = build_adapters(query, relations, order, index="btree")
        driver = GenericJoin(query, adapters, order=order, dynamic_seed=False)
        a_depth = driver.order.index("a")
        assert driver._static_seed[a_depth] == "S"  # |S| = 120 < |R| = 339


class TestHashTrieSeedRule:
    def test_seed_follows_level_width_not_subtree_size(self):
        # R's root table has 40 distinct 'a' values (hub included); S has
        # up to 40 too but fewer rows. Freitag's rule compares table
        # widths at the current level, so the narrower table drives.
        r, s = skewed_pair()
        query = parse_query("R(a,b), S(a,c)")
        relations = resolve_relations(query, {"R": r, "S": s})
        driver = HashTrieJoin(query, relations)
        result = driver.run()
        binary_reference = sum(
            1 for (a1, _) in set(r.rows) for (a2, _) in set(s.rows) if a1 == a2)
        assert result.count == binary_reference

    def test_metrics_track_candidate_work(self):
        r, s = skewed_pair()
        query = parse_query("R(a,b), S(a,c)")
        relations = resolve_relations(query, {"R": r, "S": s})
        driver = HashTrieJoin(query, relations)
        result = driver.run()
        assert driver.metrics.lookups > 0
        assert driver.metrics.intermediate_tuples >= result.count > 0
