"""Engine-equivalence property tests: batch vs tuple Generic Join.

The batch driver (:class:`repro.joins.batch.GenericJoinBatch`) must be
observationally identical to the tuple driver over every registered index
— same counts, same materialized rows, same Python value types — on
randomized query/data combinations including empty results and Zipf-skewed
inputs.  These tests are the local mirror of the CI ``perf-trajectory``
equivalence gate.
"""

import random

import pytest

from repro.data.zipf import ZipfGenerator
from repro.joins import join
from repro.planner.query import parse_query
from repro.storage.relation import Relation

TRIANGLE = parse_query("E1=E(a,b), E2=E(b,c), E3=E(c,a)")
BOWTIE = parse_query("E1=E(a,b), E2=E(b,c), E3=E(c,a), E4=E(a,d), E5=E(d,e), E6=E(e,a)")
CHAIN3 = parse_query("E1=E(a,b), E2=E(b,c), E3=E(c,d)")

#: every index exercised through the batch engine: three native kernels
#: plus one structure that joins through the per-value fallback shim
INDEXES = ("sonic", "sortedtrie", "hashtrie", "btree")


def random_edges(count: int, domain: int, seed: int) -> Relation:
    rng = random.Random(seed)
    rows = {(rng.randrange(domain), rng.randrange(domain)) for _ in range(count)}
    return Relation("E", ("src", "dst"), rows)


def zipf_edges(count: int, domain: int, alpha: float, seed: int) -> Relation:
    src = ZipfGenerator(domain, alpha=alpha, seed=seed).sample(count)
    dst = ZipfGenerator(domain, alpha=alpha, seed=seed + 1).sample(count)
    rows = set(zip(src.tolist(), dst.tolist()))
    return Relation("E", ("src", "dst"), rows)


def self_join_relations(query, edges: Relation) -> dict:
    return {atom.alias: edges for atom in query.atoms}


def assert_engines_agree(query, relations, index: str, **kwargs):
    tuple_result = join(query, relations, index=index, engine="tuple",
                        materialize=True, **kwargs)
    batch_result = join(query, relations, index=index, engine="batch",
                        materialize=True, **kwargs)
    assert batch_result.count == tuple_result.count
    assert sorted(batch_result.rows) == sorted(tuple_result.rows)
    for row in batch_result.rows[:50]:
        assert all(not hasattr(value, "dtype") for value in row), (
            f"numpy scalar leaked into batch results: {row!r}"
        )


@pytest.mark.parametrize("index", INDEXES)
@pytest.mark.parametrize("query", [TRIANGLE, BOWTIE, CHAIN3],
                         ids=["triangle", "bowtie", "chain3"])
@pytest.mark.parametrize("seed", range(3))
def test_randomized_self_joins(index, query, seed):
    edges = random_edges(300, 40, seed=seed)
    assert_engines_agree(query, self_join_relations(query, edges), index)


@pytest.mark.parametrize("index", INDEXES)
@pytest.mark.parametrize("alpha", [0.6, 1.1], ids=["mild", "heavy"])
def test_zipf_skewed_inputs(index, alpha):
    edges = zipf_edges(400, 60, alpha=alpha, seed=7)
    assert_engines_agree(TRIANGLE, self_join_relations(TRIANGLE, edges), index)


@pytest.mark.parametrize("index", INDEXES)
def test_empty_relation(index):
    empty = Relation("E", ("src", "dst"), [])
    assert_engines_agree(TRIANGLE, self_join_relations(TRIANGLE, empty), index)
    result = join(TRIANGLE, self_join_relations(TRIANGLE, empty),
                  index=index, engine="batch")
    assert result.count == 0


@pytest.mark.parametrize("index", INDEXES)
def test_empty_result_nonempty_input(index):
    # a strict DAG on distinct levels: plenty of edges, zero triangles
    rows = [(a, a + 100) for a in range(50)] + [(a + 100, a + 200) for a in range(50)]
    edges = Relation("E", ("src", "dst"), rows)
    assert_engines_agree(TRIANGLE, self_join_relations(TRIANGLE, edges), index)
    result = join(TRIANGLE, self_join_relations(TRIANGLE, edges),
                  index=index, engine="batch")
    assert result.count == 0


@pytest.mark.parametrize("index", ("sonic", "sortedtrie"))
@pytest.mark.parametrize("dynamic_seed", [True, False], ids=["dynamic", "static"])
def test_seed_selection_modes_agree(index, dynamic_seed):
    edges = random_edges(250, 30, seed=11)
    assert_engines_agree(TRIANGLE, self_join_relations(TRIANGLE, edges),
                         index, dynamic_seed=dynamic_seed)


@pytest.mark.parametrize("index", INDEXES)
def test_non_self_join(index):
    rng = random.Random(5)
    r = Relation("R", ("a", "b"),
                 {(rng.randrange(25), rng.randrange(25)) for _ in range(120)})
    s = Relation("S", ("b", "c"),
                 {(rng.randrange(25), rng.randrange(25)) for _ in range(120)})
    t = Relation("T", ("c", "a"),
                 {(rng.randrange(25), rng.randrange(25)) for _ in range(120)})
    query = parse_query("R(a,b), S(b,c), T(c,a)")
    assert_engines_agree(query, {"R": r, "S": s, "T": t}, index)


def test_auto_engine_picks_batch_only_with_native_kernels():
    edges = random_edges(100, 20, seed=1)
    relations = self_join_relations(TRIANGLE, edges)
    batch = join(TRIANGLE, relations, index="sonic", engine="auto")
    assert batch.metrics.algorithm == "generic_join_batch"
    fallback = join(TRIANGLE, relations, index="btree", engine="auto")
    assert fallback.metrics.algorithm == "generic_join"
    assert batch.count == fallback.count
