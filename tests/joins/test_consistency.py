"""Cross-algorithm / cross-index consistency: the strongest correctness net.

Every join driver and every prefix-capable index must produce the same
result set on the same query — including property-based random inputs.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import join, parse_query
from repro.indexes import prefix_capable_indexes
from repro.storage import Relation

ALGORITHMS = ("generic", "binary", "hashtrie", "leapfrog")


def normalize(result, attributes):
    positions = [result.attributes.index(a) for a in attributes]
    return sorted(tuple(row[p] for p in positions) for row in result.rows)


class TestAlgorithmsAgree:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_triangle_materialized(self, seed):
        rng = random.Random(seed)
        edges = Relation("E", ("s", "d"),
                         {(rng.randrange(20), rng.randrange(20))
                          for _ in range(120)})
        source = {"E1": edges, "E2": edges, "E3": edges}
        query = "E1=E(a,b), E2=E(b,c), E3=E(c,a)"
        outputs = {}
        for algorithm in ALGORITHMS:
            result = join(query, source, algorithm=algorithm, materialize=True)
            outputs[algorithm] = normalize(result, ("a", "b", "c"))
        reference = outputs["binary"]
        for algorithm, rows in outputs.items():
            assert rows == reference, algorithm

    @pytest.mark.parametrize("seed", [4, 5])
    def test_four_atom_mixed_arity(self, seed):
        rng = random.Random(seed)
        r = Relation("R", ("a", "b"),
                     {(rng.randrange(10), rng.randrange(10)) for _ in range(50)})
        s = Relation("S", ("b", "c", "d"),
                     {(rng.randrange(10), rng.randrange(10), rng.randrange(10))
                      for _ in range(80)})
        t = Relation("T", ("d", "e"),
                     {(rng.randrange(10), rng.randrange(10)) for _ in range(50)})
        u = Relation("U", ("e", "a"),
                     {(rng.randrange(10), rng.randrange(10)) for _ in range(50)})
        query = "R(a,b), S(b,c,d), T(d,e), U(e,a)"
        source = {"R": r, "S": s, "T": t, "U": u}
        outputs = [normalize(join(query, source, algorithm=a, materialize=True),
                             ("a", "b", "c", "d", "e"))
                   for a in ALGORITHMS]
        assert all(rows == outputs[0] for rows in outputs)


class TestIndexesAgreeUnderGenericJoin:
    def test_all_prefix_indexes_same_triangles(self):
        rng = random.Random(6)
        edges = Relation("E", ("s", "d"),
                         {(rng.randrange(18), rng.randrange(18))
                          for _ in range(110)})
        source = {"E1": edges, "E2": edges, "E3": edges}
        query = "E1=E(a,b), E2=E(b,c), E3=E(c,a)"
        counts = {name: join(query, source, index=name).count
                  for name in prefix_capable_indexes()}
        assert len(set(counts.values())) == 1, counts


@settings(max_examples=20, deadline=None)
@given(
    r_rows=st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)),
                    min_size=0, max_size=40),
    s_rows=st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)),
                    min_size=0, max_size=40),
    t_rows=st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)),
                    min_size=0, max_size=40),
)
def test_property_triangle_equivalence(r_rows, s_rows, t_rows):
    r = Relation("R", ("a", "b"), set(r_rows))
    s = Relation("S", ("b", "c"), set(s_rows))
    t = Relation("T", ("c", "a"), set(t_rows))
    truth = sorted(
        (a, b, c)
        for (a, b) in set(r_rows)
        for (b2, c) in set(s_rows) if b2 == b
        for (c2, a2) in set(t_rows) if c2 == c and a2 == a
    )
    source = {"R": r, "S": s, "T": t}
    for algorithm in ALGORITHMS:
        result = join("R(a,b), S(b,c), T(c,a)", source,
                      algorithm=algorithm, materialize=True)
        assert normalize(result, ("a", "b", "c")) == truth, algorithm


@settings(max_examples=15, deadline=None)
@given(
    rows=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                  min_size=0, max_size=30),
)
def test_property_self_join_square(rows):
    edges = Relation("E", ("s", "d"), set(rows))
    present = set(rows)
    truth_count = sum(
        1
        for (a, b) in present
        for (b2, c) in present if b2 == b
        for (c2, d) in present if c2 == c
        if (d, a) in present
    )
    source = {"E1": edges, "E2": edges, "E3": edges, "E4": edges}
    query = "E1=E(a,b), E2=E(b,c), E3=E(c,d), E4=E(d,a)"
    for algorithm in ALGORITHMS:
        assert join(query, source, algorithm=algorithm).count == truth_count
