"""Top-level join() API tests."""

import pytest

from repro import Catalog, Relation, join, parse_query, triangle_count
from repro.data import random_edge_relation, triangle_count_truth
from repro.errors import ConfigurationError, QueryError


@pytest.fixture
def edges():
    return random_edge_relation(30, 180, seed=31)


class TestJoinApi:
    def test_query_as_string(self, edges):
        result = join("E1=E(a,b), E2=E(b,c), E3=E(c,a)",
                      {"E1": edges, "E2": edges, "E3": edges})
        assert result.count == triangle_count_truth(edges)

    def test_catalog_source(self, edges):
        catalog = Catalog([edges])
        result = join("E1=E(a,b), E2=E(b,c), E3=E(c,a)", catalog)
        assert result.count == triangle_count_truth(edges)

    def test_relation_name_fallback(self):
        r = Relation("R", ("a", "b"), [(1, 2)])
        s = Relation("S", ("b", "c"), [(2, 3)])
        assert join("R(a,b), S(b,c)", {"R": r, "S": s}).count == 1

    def test_unknown_algorithm(self, edges):
        with pytest.raises(ConfigurationError):
            join("E1=E(a,b), E2=E(b,c), E3=E(c,a)",
                 {"E1": edges, "E2": edges, "E3": edges},
                 algorithm="quantum")

    def test_missing_relation(self):
        with pytest.raises(QueryError):
            join("R(a,b), S(b,c)", {"R": Relation("R", ("a", "b"), [])})

    def test_arity_mismatch(self):
        with pytest.raises(QueryError):
            join("R(a,b,c)", {"R": Relation("R", ("a", "b"), [(1, 2)])})

    def test_materialize_returns_rows(self, edges):
        result = join("E1=E(a,b), E2=E(b,c), E3=E(c,a)",
                      {"E1": edges, "E2": edges, "E3": edges},
                      materialize=True)
        assert len(result.rows) == result.count
        assert result.rows_as_dicts()[0].keys() == set(result.attributes)

    def test_counting_mode_has_no_rows(self, edges):
        result = join("E1=E(a,b), E2=E(b,c), E3=E(c,a)",
                      {"E1": edges, "E2": edges, "E3": edges})
        with pytest.raises(AttributeError):
            result.rows

    def test_build_time_recorded_for_wcoj(self, edges):
        result = join("E1=E(a,b), E2=E(b,c), E3=E(c,a)",
                      {"E1": edges, "E2": edges, "E3": edges}, index="sonic")
        assert result.metrics.build_seconds > 0
        assert result.metrics.index == "sonic"

    def test_auto_picks_binary_for_star(self):
        f = Relation("F", ("t", "x"), [(i, i) for i in range(40)])
        a = Relation("A", ("t", "p"), [(i, i + 1) for i in range(40)])
        result = join("F(t,x), A(t,p)", {"F": f, "A": a}, algorithm="auto")
        assert result.metrics.algorithm == "binary_join"
        assert result.count == 40

    def test_auto_picks_wcoj_for_triangle(self, edges):
        result = join("E1=E(a,b), E2=E(b,c), E3=E(c,a)",
                      {"E1": edges, "E2": edges, "E3": edges},
                      algorithm="auto")
        assert result.metrics.algorithm == "generic_join"


class TestTriangleCount:
    def test_matches_truth_for_each_algorithm(self, edges):
        truth = triangle_count_truth(edges)
        for algorithm in ("generic", "binary", "hashtrie", "leapfrog"):
            assert triangle_count(edges, algorithm=algorithm) == truth


class TestDebugMode:
    """join(debug=True) runs the static plan validator before executing."""

    def test_debug_join_still_correct(self, edges):
        truth = triangle_count_truth(edges)
        result = join("E1=E(a,b), E2=E(b,c), E3=E(c,a)",
                      {"E1": edges, "E2": edges, "E3": edges}, debug=True)
        assert result.count == truth

    def test_debug_rejects_bad_order(self, edges):
        from repro.errors import PlanValidationError

        with pytest.raises(PlanValidationError, match="RA302"):
            join("E1=E(a,b), E2=E(b,c), E3=E(c,a)",
                 {"E1": edges, "E2": edges, "E3": edges},
                 order=("a", "b"), debug=True)

    def test_without_debug_bad_order_fails_later_or_not_at_all(self, edges):
        # the non-debug path must not import-time-validate: it raises the
        # adapter's SchemaError instead (pre-existing behaviour)
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            join("E1=E(a,b), E2=E(b,c), E3=E(c,a)",
                 {"E1": edges, "E2": edges, "E3": edges},
                 order=("a", "b"), debug=False)

    def test_env_variable_enables_debug(self, edges, monkeypatch):
        from repro.errors import PlanValidationError

        monkeypatch.setenv("REPRO_DEBUG", "1")
        with pytest.raises(PlanValidationError):
            join("E1=E(a,b), E2=E(b,c), E3=E(c,a)",
                 {"E1": edges, "E2": edges, "E3": edges},
                 order=("a", "b"))

    def test_env_variable_off_values(self, edges, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG", "0")
        result = join("E1=E(a,b), E2=E(b,c), E3=E(c,a)",
                      {"E1": edges, "E2": edges, "E3": edges})
        assert result.count == triangle_count_truth(edges)

    def test_debug_binary_path(self, edges):
        result = join("E1=E(a,b), E2=E(b,c), E3=E(c,a)",
                      {"E1": edges, "E2": edges, "E3": edges},
                      algorithm="binary", debug=True)
        assert result.count == triangle_count_truth(edges)
