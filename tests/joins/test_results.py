"""Result sinks and metrics."""

import pytest

from repro.joins.results import (
    CountingSink,
    JoinMetrics,
    JoinResult,
    MaterializingSink,
    Stopwatch,
    make_sink,
    project_binding,
)


class TestSinks:
    def test_counting(self):
        sink = CountingSink()
        for i in range(5):
            sink.emit((i,))
        assert sink.count == 5

    def test_materializing(self):
        sink = MaterializingSink()
        sink.emit((1, 2))
        sink.emit((3, 4))
        assert sink.rows == [(1, 2), (3, 4)]
        assert sink.count == 2

    def test_make_sink(self):
        assert isinstance(make_sink(True), MaterializingSink)
        assert isinstance(make_sink(False), CountingSink)


class TestJoinResult:
    def test_rows_require_materialization(self):
        result = JoinResult(attributes=("a",), sink=CountingSink())
        with pytest.raises(AttributeError):
            result.rows

    def test_rows_as_dicts(self):
        sink = MaterializingSink()
        sink.emit((1, 2))
        result = JoinResult(attributes=("a", "b"), sink=sink)
        assert result.rows_as_dicts() == [{"a": 1, "b": 2}]


class TestMetrics:
    def test_total_and_row(self):
        metrics = JoinMetrics(algorithm="x", index="y",
                              build_seconds=1.0, probe_seconds=2.0)
        assert metrics.total_seconds == 3.0
        row = metrics.as_row()
        assert row["algorithm"] == "x"
        assert row["total_s"] == 3.0


class TestHelpers:
    def test_stopwatch_laps(self):
        watch = Stopwatch()
        first = watch.lap()
        second = watch.lap()
        assert first >= 0 and second >= 0

    def test_project_binding(self):
        assert project_binding({"a": 1, "b": 2}, ("b", "a")) == (2, 1)
