"""Cache simulator tests."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import CacheHierarchy, CacheLevel, tiny_hierarchy, xeon_silver_4114


class TestCacheLevel:
    def test_size_validation(self):
        with pytest.raises(ConfigurationError):
            CacheLevel("L1", 1000, 8, 64)  # not divisible

    def test_hit_after_miss(self):
        level = CacheLevel("L1", 1024, 2, 64)
        assert not level.access(0)
        assert level.access(0)
        assert level.stats.hits == 1
        assert level.stats.misses == 1

    def test_lru_eviction(self):
        level = CacheLevel("L1", 2 * 64, 1, 64)  # 2 sets, direct mapped
        level.access(0)
        level.access(2)   # same set (2 % 2 == 0), evicts 0
        assert not level.access(0)

    def test_associativity_protects(self):
        level = CacheLevel("L1", 4 * 64, 2, 64)  # 2 sets, 2-way
        level.access(0)
        level.access(2)   # same set, second way
        assert level.access(0)
        assert level.access(2)

    def test_lru_order_within_set(self):
        level = CacheLevel("L1", 4 * 64, 2, 64)
        level.access(0)
        level.access(2)
        level.access(0)   # refresh 0
        level.access(4)   # same set: evicts 2 (least recent), not 0
        assert level.access(0)
        assert not level.access(2)


class TestHierarchy:
    def test_miss_fills_all_levels(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0)
        assert hierarchy.stats.memory_accesses == 1
        hierarchy.access(0)
        assert hierarchy.stats.level_hits["L1"] == 1

    def test_l2_backstops_l1(self):
        hierarchy = tiny_hierarchy(l1_bytes=128, l2_bytes=8192)
        # touch enough lines to overflow L1 (2 lines) but not L2
        for address in range(0, 64 * 16, 64):
            hierarchy.access(address)
        for address in range(0, 64 * 16, 64):
            hierarchy.access(address)
        assert hierarchy.stats.level_hits["L2"] > 0

    def test_multi_byte_access_spans_lines(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(60, size=8)  # crosses the 64B boundary
        assert hierarchy.stats.total_accesses == 2

    def test_estimated_cycles_positive(self):
        hierarchy = tiny_hierarchy()
        for address in range(0, 2048, 8):
            hierarchy.access(address)
        assert hierarchy.estimated_cycles() > 0

    def test_reset(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0)
        hierarchy.reset()
        assert hierarchy.stats.total_accesses == 0
        assert not hierarchy.levels[0].access(0)  # cold again

    def test_xeon_profile_shapes(self):
        levels = xeon_silver_4114()
        assert [level.name for level in levels] == ["L1", "L2", "L3"]
        assert levels[0].size_bytes == 32 * 1024
        assert levels[2].size_bytes == 25600 * 1024


class TestCacheCliff:
    def test_working_set_cliff(self):
        """The Fig 11 phenomenon: hit rate collapses past the cache size."""
        def hit_rate(working_set_bytes):
            hierarchy = tiny_hierarchy(l1_bytes=4096, l2_bytes=4096 * 4)
            for _ in range(4):
                for address in range(0, working_set_bytes, 64):
                    hierarchy.access(address)
            stats = hierarchy.stats
            return stats.level_hits["L1"] / stats.total_accesses

        inside = hit_rate(2048)
        outside = hit_rate(65536)
        assert inside > 0.7
        assert outside < inside - 0.3
