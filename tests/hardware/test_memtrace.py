"""Memory tracer tests."""

import pytest

from repro.core import SonicConfig, SonicIndex
from repro.errors import ConfigurationError
from repro.hardware import CacheHierarchy, MemoryTracer, tiny_hierarchy


@pytest.fixture
def config():
    return SonicConfig(capacity=256, bucket_size=8)


class TestLayout:
    def test_regions_disjoint_and_aligned(self, config):
        tracer = MemoryTracer(4, config, num_levels=3)
        bases = sorted(tracer._bases.items(), key=lambda item: item[1])
        for (_, base), (_, next_base) in zip(bases, bases[1:]):
            assert base % 64 == 0
            assert next_base > base
        assert tracer.total_bytes > 0

    def test_unknown_region_rejected(self, config):
        tracer = MemoryTracer(4, config, num_levels=2)
        with pytest.raises(ConfigurationError):
            tracer.record(0, "bogus", 0)
        with pytest.raises(ConfigurationError):
            tracer.record(5, "key", 0)


class TestRecording:
    def test_touch_counts(self, config):
        tracer = MemoryTracer(3, config, num_levels=2)
        tracer.record(0, "key", 10)
        tracer.record(0, "key", 11)
        tracer.record(1, "patch_bit", 3, size=1)
        assert tracer.touches_by_region["key"] == 2
        assert tracer.touches_by_region["patch_bit"] == 1
        assert tracer.total_touches() == 3

    def test_keep_trace(self, config):
        tracer = MemoryTracer(3, config, num_levels=2, keep_trace=True)
        tracer.record(0, "key", 0)
        tracer.record(0, "key", 1)
        assert len(tracer.trace) == 2
        assert tracer.trace[0][0] != tracer.trace[1][0]

    def test_reset(self, config):
        tracer = MemoryTracer(3, config, num_levels=2, keep_trace=True,
                              hierarchy=tiny_hierarchy())
        tracer.record(0, "key", 0)
        tracer.reset()
        assert tracer.total_touches() == 0
        assert tracer.trace == []
        assert tracer.hierarchy.stats.total_accesses == 0


class TestEndToEnd:
    def test_sonic_build_drives_the_cache(self):
        config = SonicConfig.for_tuples(500)
        hierarchy = CacheHierarchy()
        index = SonicIndex(3, config)
        index.tracer = MemoryTracer(3, config, index.num_levels,
                                    hierarchy=hierarchy)
        rows = [(i % 40, (i * 7) % 40, i) for i in range(500)]
        index.build(rows)
        assert hierarchy.stats.total_accesses > len(rows)
        assert index.tracer.touches_by_region["key"] > 0

    def test_patch_checks_produce_patch_traffic(self):
        config = SonicConfig.for_tuples(400)
        index = SonicIndex(3, config)
        index.tracer = MemoryTracer(3, config, index.num_levels)
        rows = [(i % 30, (i * 3) % 30, i) for i in range(400)]
        index.build(rows)
        index.force_patch_fraction(1, 1.0)
        index.tracer.reset()
        for row in rows[:100]:
            index.contains(row)
        assert index.tracer.touches_by_region["patch_bit"] > 0
        assert index.tracer.touches_by_region["patch_key"] > 0
