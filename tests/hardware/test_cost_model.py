"""Parallel build / cycle cost model tests (Fig 16 substrate)."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import CycleCostModel, ParallelBuildModel, granularity_sweep, tiny_hierarchy


class TestParallelBuildModel:
    def test_single_thread_baseline(self):
        model = ParallelBuildModel()
        assert model.speedup(1, stripes=8) == pytest.approx(1.0, rel=0.05)

    def test_monotone_within_socket(self):
        model = ParallelBuildModel()
        speedups = [model.speedup(threads, stripes=8)
                    for threads in range(1, 11)]
        assert speedups == sorted(speedups)
        assert speedups[-1] > 5  # near-linear-ish at 10 cores

    def test_numa_cliff_beyond_socket(self):
        """Fig 16's shape: scaling flattens/dips crossing the socket."""
        model = ParallelBuildModel()
        at_10 = model.speedup(10, stripes=8)
        at_20 = model.speedup(20, stripes=8)
        per_thread_10 = at_10 / 10
        per_thread_20 = at_20 / 20
        assert per_thread_20 < per_thread_10 * 0.8

    def test_more_stripes_less_contention(self):
        model = ParallelBuildModel()
        few = model.speedup(16, stripes=1)
        many = model.speedup(16, stripes=64)
        assert many > few

    def test_threads_beyond_cores_capped(self):
        model = ParallelBuildModel()
        assert model.speedup(40, stripes=8) == model.speedup(20, stripes=8)

    def test_build_time_projection(self):
        model = ParallelBuildModel()
        assert model.build_time(10.0, 10, stripes=8) < 10.0 / 4

    def test_validation(self):
        model = ParallelBuildModel()
        with pytest.raises(ConfigurationError):
            model.speedup(0, stripes=8)
        with pytest.raises(ConfigurationError):
            model.speedup(4, stripes=0)


class TestGranularitySweep:
    def test_paper_8192_claim(self):
        """§3.4.2: granularity 8192 is never >30% worse than optimal."""
        model = ParallelBuildModel()
        capacity = 1 << 20
        granularities = [256, 1024, 8192, 65536, capacity]
        for threads in (4, 10, 20):
            sweep = granularity_sweep(model, capacity, granularities, threads)
            best = max(sweep.values())
            assert sweep[8192] >= 0.7 * best, (threads, sweep)

    def test_whole_level_lock_is_bad(self):
        model = ParallelBuildModel()
        capacity = 1 << 20
        sweep = granularity_sweep(model, capacity, [8192, capacity], 16)
        assert sweep[capacity] < sweep[8192]


class TestCycleCostModel:
    def test_cycles_combine_cache_and_alu(self):
        hierarchy = tiny_hierarchy()
        for address in range(0, 1024, 8):
            hierarchy.access(address)
        model = CycleCostModel(arithmetic_per_touch=3.0)
        total = model.cycles(hierarchy, touches=128)
        assert total > hierarchy.estimated_cycles()
        assert model.cycles_per_operation(hierarchy, 128, operations=64) == \
            pytest.approx(total / 64)

    def test_zero_operations_rejected(self):
        model = CycleCostModel()
        with pytest.raises(ConfigurationError):
            model.cycles_per_operation(tiny_hierarchy(), 1, operations=0)
