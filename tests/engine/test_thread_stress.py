"""Multithreaded stress over one shared Session (the RA7xx runtime witness).

The static analysis (``repro.analysis.concurrency``) proves what it can
see; this harness exercises what it cannot: many threads driving one
Session through mixed algorithms over aliased relations, with forced
evictions and concurrent relation mutation.  Every result must equal the
single-threaded ground truth, and the cache counters must stay coherent:

* ``stores − evictions == entries`` — put_if_absent is the only publish
  path, so the identity survives any interleaving;
* ``store + race == miss`` — every miss builds and then either publishes
  or adopts the winner's structure;
* ``hits + misses == executions × lookups-per-execution`` — the prepare
  stage performs a deterministic number of cache lookups per query shape
  regardless of interleaving.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine import Session
from repro.joins import join
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation

TRIANGLE = "E1=E(a,b), E2=E(b,c), E3=E(c,a)"
PATH = "R1=E(a,b), R2=E(b,c)"

#: (query, kwargs) pairs mixed across the worker pool — every driver
#: family, tuple and batch engines, aliased relations throughout
CASES = [
    (TRIANGLE, {"algorithm": "generic", "index": "sonic"}),
    (TRIANGLE, {"algorithm": "generic", "index": "sonic", "engine": "batch"}),
    (TRIANGLE, {"algorithm": "binary"}),
    (TRIANGLE, {"algorithm": "hashtrie"}),
    (TRIANGLE, {"algorithm": "leapfrog"}),
    (TRIANGLE, {"algorithm": "recursive"}),
    (PATH, {"algorithm": "generic", "index": "sortedtrie"}),
    (PATH, {"algorithm": "generic", "index": "btree"}),
]

THREADS = 8
ITERATIONS = 6
JOIN_TIMEOUT = 120.0


def make_edges() -> Relation:
    rows = [(i, (i * 7 + 3) % 23) for i in range(23)]
    rows += [(i, (i + 1) % 23) for i in range(23)]
    return Relation("E", ("src", "dst"), sorted(set(rows)))


@pytest.fixture(scope="module")
def ground_truth():
    """Single-threaded expected rows per case, via the cold join() path."""
    tables = {"E": make_edges()}
    expected = {}
    for i, (query, kwargs) in enumerate(CASES):
        result = join(query, tables, materialize=True, **kwargs)
        expected[i] = sorted(result.rows)
    return expected


def lookups_per_execution() -> dict[int, int]:
    """Cache lookups (hits+misses) one execution of each case performs."""
    per_case = {}
    for i, (query, kwargs) in enumerate(CASES):
        session = Session({"E": make_edges()})
        session.execute(query, **kwargs)
        stats = session.cache_stats()
        per_case[i] = stats.hits + stats.misses
    return per_case


def run_threads(worker, count=THREADS):
    """Start, join (with timeout), and surface worker exceptions."""
    barrier = threading.Barrier(count)
    errors: list = []

    def wrapped(tid):
        try:
            barrier.wait(timeout=JOIN_TIMEOUT)
            worker(tid)
        except Exception as exc:  # surfaced below, never swallowed
            errors.append((tid, repr(exc)))

    threads = [threading.Thread(target=wrapped, args=(tid,), daemon=True)
               for tid in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=JOIN_TIMEOUT)
    hung = [t.name for t in threads if t.is_alive()]
    assert not hung, f"threads still alive after {JOIN_TIMEOUT}s: {hung}"
    assert errors == []


def assert_counters_coherent(session: Session,
                             expected_lookups: "int | None" = None):
    stats = session.cache_stats()
    assert stats.stores - stats.evictions == stats.entries, stats
    store = session.metrics.get("cache.store")
    race = session.metrics.get("cache.race")
    assert store == stats.stores
    assert store + race == stats.misses, (store, race, stats)
    if expected_lookups is not None:
        assert stats.hits + stats.misses == expected_lookups, stats


class TestSharedSessionStress:
    def test_mixed_algorithms_shared_cache(self, ground_truth):
        session = Session({"E": make_edges()})
        per_case = lookups_per_execution()
        schedule: list[list[int]] = [
            [(tid + step * 3) % len(CASES) for step in range(ITERATIONS)]
            for tid in range(THREADS)
        ]

        def worker(tid):
            for case in schedule[tid]:
                query, kwargs = CASES[case]
                result = session.execute(query, materialize=True, **kwargs)
                assert sorted(result.rows) == ground_truth[case], \
                    (tid, case, kwargs)

        run_threads(worker)
        total_lookups = sum(per_case[case]
                            for row in schedule for case in row)
        assert_counters_coherent(session, total_lookups)

    def test_forced_evictions_tiny_budget(self, ground_truth):
        # a budget of a few KiB holds at most one or two structures, so
        # the pool constantly evicts and rebuilds while racing on keys
        session = Session({"E": make_edges()}, cache_bytes=8192)

        def worker(tid):
            for step in range(ITERATIONS):
                case = (tid * 5 + step) % len(CASES)
                query, kwargs = CASES[case]
                result = session.execute(query, materialize=True, **kwargs)
                assert sorted(result.rows) == ground_truth[case], \
                    (tid, case, kwargs)

        run_threads(worker)
        stats = session.cache_stats()
        assert stats.evictions > 0, "tiny budget never evicted"
        assert_counters_coherent(session)

    def test_prepared_joins_shared_across_threads(self, ground_truth):
        # one PreparedJoin per case, prepared once, executed by everyone:
        # execution must touch only prebuilt read-only structures
        session = Session({"E": make_edges()})
        prepared = [session.prepare(query, **kwargs)
                    for query, kwargs in CASES]

        def worker(tid):
            for step in range(ITERATIONS):
                case = (tid + step) % len(CASES)
                result = prepared[case].execute(materialize=True)
                assert sorted(result.rows) == ground_truth[case], \
                    (tid, case)

        run_threads(worker)
        assert_counters_coherent(session)


class TestConcurrentInvalidation:
    def test_mutation_and_invalidation_under_load(self, ground_truth):
        # the mutator inserts disconnected edges (no new triangles, so
        # ground truth is stable) and eagerly invalidates: every worker
        # execution sees either the old or the new fingerprint, never a
        # torn structure
        edges = make_edges()
        catalog = Catalog()
        catalog.add(edges)
        session = Session(catalog)
        triangle_cases = [i for i, (query, _) in enumerate(CASES)
                          if query == TRIANGLE]
        stop = threading.Event()

        def mutate():
            # bounded: every insert invalidates all cached structures, so
            # an unthrottled mutator would starve the workers into
            # rebuilding over an ever-growing relation forever
            for step in range(60):
                if stop.is_set():
                    return
                edges.insert((10_000 + step, 20_000 + step))
                if step % 4 == 3:
                    session.invalidate("E")
                stop.wait(0.01)

        def worker(tid):
            for step in range(ITERATIONS):
                case = triangle_cases[(tid + step) % len(triangle_cases)]
                query, kwargs = CASES[case]
                result = session.execute(query, materialize=True,
                                         **kwargs)
                assert sorted(result.rows) == ground_truth[case], \
                    (tid, case, kwargs)

        mutator = threading.Thread(target=mutate, daemon=True)
        mutator.start()
        try:
            run_threads(worker)
        finally:
            stop.set()
            mutator.join(timeout=JOIN_TIMEOUT)
        assert not mutator.is_alive()
        assert_counters_coherent(session)

    def test_concurrent_extend_through_aliased_views(self):
        # extends race through renamed views sharing one storage; the
        # version counter must count every mutation exactly once
        edges = make_edges()
        views = [edges.renamed(f"V{i}") for i in range(THREADS)]
        before = edges.fingerprint()[1]
        per_thread = 25

        def worker(tid):
            view = views[tid]
            for step in range(per_thread):
                view.extend([(50_000 + tid * per_thread + step, 1)])

        run_threads(worker)
        assert edges.fingerprint()[1] == before + THREADS * per_thread
        assert len(edges.rows) == len(make_edges().rows) \
            + THREADS * per_thread
