"""Regression: invalidation must close partially-built lazy adapters.

The planted bug: ``relation.extend()`` mid-materialization bumps the
fingerprint, the cache entry is invalidated, but a half-built lazy
adapter kept deepening and firing its cache-upgrade callback — racing a
*new* adapter's entry under the same logical spec and, worse, leaving a
level built over the pre-extend snapshot visible through the upgraded
entry.  ``IndexCache.invalidate_relation`` now ``close()``\\ s every
``CLOSE_ON_INVALIDATE`` structure (outside the lock), detaching the
callback; the pinned snapshot stays safe for in-flight readers.
"""

from __future__ import annotations

import threading

import pytest

from repro.data.graphs import random_edge_relation
from repro.engine import Session
from repro.indexes.lazy import LazyTrieAdapter

TRIANGLE = "E1=E(a,b), E2=E(b,c), E3=E(c,a)"


@pytest.fixture
def edges():
    return random_edge_relation(60, 240, seed=3)


def lazy_keys(session):
    return [key for key, entry in session.cache._entries.items()
            if isinstance(entry.value, LazyTrieAdapter)]


class TestInvalidationClosesLazyAdapters:
    def test_invalidate_closes_and_detaches(self, edges):
        relations = {"E1": edges, "E2": edges, "E3": edges}
        with Session(relations) as session:
            truth = session.execute(TRIANGLE, algorithm="generic").count
            prepared = session.prepare(TRIANGLE, algorithm="generic",
                                       lazy=True)
            adapters = [entry.value
                        for entry in session.cache._entries.values()
                        if isinstance(entry.value, LazyTrieAdapter)]
            # two distinct entries: E1/E2 share a permutation over the
            # same relation, E3 flips it
            assert len(adapters) == 2
            assert all(not a.closed for a in adapters)
            # (61, 62) touches no existing node, so it closes no triangle
            edges.extend([(61, 62)])
            dropped = session.invalidate(edges)
            assert dropped >= 2
            assert all(a.closed for a in adapters)
            assert all(a.on_deepen is None for a in adapters)
            # the in-flight prepared join still runs — over its pinned
            # pre-extend snapshot, never a mixed-rows trie
            assert prepared.execute().count == truth

    def test_closed_adapter_never_upgrades_cache(self, edges):
        relations = {"E1": edges, "E2": edges, "E3": edges}
        with Session(relations) as session:
            session.prepare(TRIANGLE, algorithm="generic", lazy=True)
            keys = lazy_keys(session)
            adapters = {key: session.cache._entries[key].value
                        for key in keys}
            edges.extend([(70, 71)])
            session.invalidate(edges)
            # fresh prepare repopulates the cache under the new
            # fingerprint; deepening the *stale* adapters must not
            # touch the new entries
            session.execute(TRIANGLE, algorithm="generic", lazy=True)
            fresh = {key: session.cache.built_depth(key)
                     for key in lazy_keys(session)}
            for adapter in adapters.values():
                list(adapter.cursor().child_values())
                adapter.cursor().try_descend(0)
            assert {key: session.cache.built_depth(key)
                    for key in lazy_keys(session)} == fresh

    def test_eviction_does_not_close(self, edges):
        relations = {"E1": edges, "E2": edges, "E3": edges}
        # a tiny entry budget forces LRU eviction on every store
        with Session(relations, cache_entries=1) as session:
            session.prepare(TRIANGLE, algorithm="generic", lazy=True)
            survivors = [entry.value
                         for entry in session.cache._entries.values()]
            assert len(survivors) == 1
            # evicted adapters stay usable: eviction is a memory-budget
            # decision, not a correctness event — only fingerprint
            # invalidation severs an adapter from its snapshot's cache
            result = session.execute(TRIANGLE, algorithm="generic",
                                     lazy=True)
            assert result.count > 0

    def test_extend_racing_materialization_stays_consistent(self, edges):
        relations = {"E1": edges, "E2": edges, "E3": edges}
        with Session(relations) as session:
            truth = session.execute(TRIANGLE, algorithm="generic").count
            prepared = session.prepare(TRIANGLE, algorithm="generic",
                                       lazy=True)
            barrier = threading.Barrier(2)
            errors: list = []
            counts: list = []

            def run_join():
                try:
                    barrier.wait(timeout=10)
                    counts.append(prepared.execute().count)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            def mutate():
                try:
                    barrier.wait(timeout=10)
                    edges.extend([(200, 201), (201, 202)])
                    session.invalidate(edges)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=run_join),
                       threading.Thread(target=mutate)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not errors
            # the prepared join pinned its snapshot before the extend:
            # it must see exactly the pre-extend triangles
            assert counts == [truth]
