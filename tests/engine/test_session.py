"""Session / PreparedJoin semantics: equivalence, warm re-execution, spans."""

from __future__ import annotations

import pytest

from repro.engine import Session
from repro.joins import join
from repro.obs.observer import JoinObserver
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation

TRIANGLE = "E1=E(a,b), E2=E(b,c), E3=E(c,a)"

ALGORITHM_CASES = [
    {"algorithm": "generic", "index": "sonic"},
    {"algorithm": "generic", "index": "sonic", "engine": "batch"},
    {"algorithm": "generic", "index": "btree"},
    {"algorithm": "generic", "index": "hashtrie"},
    {"algorithm": "generic", "index": "sortedtrie"},
    {"algorithm": "binary"},
    {"algorithm": "hashtrie"},
    {"algorithm": "hashtrie", "lazy": False},
    {"algorithm": "leapfrog"},
    {"algorithm": "recursive"},
    {"algorithm": "auto"},
]


def case_id(case: dict) -> str:
    return "-".join(f"{k}={v}" for k, v in case.items())


@pytest.fixture
def edges() -> Relation:
    rows = [(i, (i * 7 + 3) % 23) for i in range(23)]
    rows += [(i, (i + 1) % 23) for i in range(23)]
    return Relation("E", ("src", "dst"), sorted(set(rows)))


@pytest.fixture
def tables(edges) -> dict[str, Relation]:
    return {"E1": edges, "E2": edges, "E3": edges}


class TestPreparedEquivalence:
    @pytest.mark.parametrize("case", ALGORITHM_CASES, ids=case_id)
    def test_reexecution_matches_fresh_join(self, tables, case):
        expected = join(TRIANGLE, tables, materialize=True, **case)
        session = Session(tables)
        prepared = session.prepare(TRIANGLE, **case)
        first = prepared.execute(materialize=True)
        second = prepared.execute(materialize=True)
        assert sorted(first.rows) == sorted(expected.rows)
        assert sorted(second.rows) == sorted(expected.rows)
        assert first.attributes == expected.attributes

    @pytest.mark.parametrize("case", ALGORITHM_CASES, ids=case_id)
    def test_build_charged_once(self, tables, case):
        session = Session(tables)
        prepared = session.prepare(TRIANGLE, **case)
        first = prepared.execute()
        second = prepared.execute()
        assert first.metrics.build_seconds == prepared.build_seconds
        assert second.metrics.build_seconds == 0.0
        assert prepared.executions == 2

    def test_second_prepare_skips_every_build(self, tables):
        session = Session(tables)
        session.prepare(TRIANGLE).execute()
        hits_before = session.cache_stats().hits
        prepared = session.prepare(TRIANGLE)
        assert session.cache_stats().hits == hits_before + 3
        assert session.cache_stats().misses == 2  # unchanged: no rebuild
        # a fully-warm prepare costs (almost) nothing and charges
        # (almost) nothing: nothing was built
        assert prepared.execute().count == session.execute(TRIANGLE).count

    def test_cold_join_wrapper_keeps_build_semantics(self, tables):
        # join() is a one-shot cold session: every call rebuilds and
        # charges the build to the result, like the seed (§5.15)
        first = join(TRIANGLE, tables)
        second = join(TRIANGLE, tables)
        assert first.metrics.build_seconds > 0.0
        assert second.metrics.build_seconds > 0.0
        assert first.count == second.count


class TestMutationVisibility:
    def test_session_execute_sees_catalog_mutation(self):
        edges = Relation("E", ("src", "dst"), [(0, 1), (1, 2), (2, 0)])
        catalog = Catalog()
        catalog.add(edges)
        session = Session(catalog)
        assert session.execute(TRIANGLE).count == 3
        edges.extend([(0, 2), (2, 1), (1, 0)])  # close the reverse triangle
        assert session.execute(TRIANGLE).count == 6
        # stale entries stopped matching; fresh ones were rebuilt
        assert session.cache_stats().misses == 4

    def test_prepared_join_pins_its_snapshot(self, tables, edges):
        session = Session(tables)
        prepared = session.prepare(TRIANGLE)
        before = prepared.execute().count
        edges.insert((1000, 1001))
        assert prepared.execute().count == before  # snapshot semantics
        reprepared = session.prepare(TRIANGLE)
        assert reprepared.execute().count == join(TRIANGLE, tables).count

    def test_invalidate_by_name(self):
        edges = Relation("E", ("src", "dst"), [(0, 1), (1, 2), (2, 0)])
        catalog = Catalog()
        catalog.add(edges)
        session = Session(catalog)
        session.execute(TRIANGLE)
        assert session.invalidate("E") == 2
        assert session.cache_stats().entries == 0

    def test_catalog_version_counters(self):
        catalog = Catalog()
        edges = Relation("E", ("src", "dst"), [(0, 1)])
        assert catalog.version_of("E") == 0
        catalog.add(edges)
        assert catalog.version_of("E") == 1
        catalog.replace(Relation("E", ("src", "dst"), [(1, 2)]))
        assert catalog.version_of("E") == 2
        catalog.remove("E")
        assert catalog.version_of("E") == 3


class TestObservability:
    def test_prepare_spans_and_cache_counters(self, tables):
        session = Session(tables)
        obs = JoinObserver()
        session.prepare(TRIANGLE, obs=obs).execute(obs=obs)
        names = {span["name"] for span in obs.tracer.as_dicts()}
        assert {"bind", "plan", "optimize", "prepare", "build_index",
                "probe"} <= names
        assert obs.metrics.get("cache.miss") == 2
        assert obs.metrics.get("cache.hit") == 1

    def test_warm_execution_profile_has_no_build_spans(self, tables):
        session = Session(tables)
        prepared = session.prepare(TRIANGLE)
        prepared.execute()  # consumes the one-time build charge
        obs = JoinObserver()
        result = prepared.execute(obs=obs)
        names = {span["name"] for span in obs.tracer.as_dicts()}
        assert "probe" in names and "build_index" not in names
        assert result.profile is not None
        assert result.metrics.build_seconds == 0.0

    def test_session_metrics_registry_is_shared(self, tables):
        session = Session(tables)
        session.prepare(TRIANGLE)
        session.prepare(TRIANGLE)
        assert session.metrics.get("cache.store") == 2
        assert session.metrics.get("cache.hit") >= 3


class TestSessionLifecycle:
    def test_context_manager_clears_cache(self, tables):
        with Session(tables) as session:
            session.execute(TRIANGLE)
            assert session.cache_stats().entries == 2
        assert session.cache_stats().entries == 0
        # still usable, just cold
        assert session.execute(TRIANGLE).count > 0

    def test_mapping_and_catalog_sources_agree(self, edges, tables):
        catalog = Catalog()
        catalog.add(edges)
        assert (Session(catalog).execute(TRIANGLE).count
                == Session(tables).execute(TRIANGLE).count)

    def test_disabled_cache_session_still_correct(self, tables):
        session = Session(tables, cache_bytes=0)
        first = session.execute(TRIANGLE)
        second = session.execute(TRIANGLE)
        assert first.count == second.count
        assert session.cache_stats().entries == 0


class TestWarmEngineResolution:
    """The serving path must run the driver the planner resolves.

    Regression guard for the bench warm-path artifact: a warm
    (session-prepared) re-execution pinned to ``engine="tuple"`` looked
    slower than a cold batch run (warm_speedup 0.883 on the mid-size
    triangle) even though no engine code had regressed.  ``auto`` must
    resolve once at plan time and every re-execution must run that same
    driver.
    """

    def test_warm_reexecution_keeps_resolved_driver(self, tables):
        with Session(tables) as session:
            prepared = session.prepare(TRIANGLE, engine="auto")
            assert prepared.plan.engine == "batch"  # sonic has a native kernel
            cold = prepared.execute()
            warm = prepared.execute()
        assert cold.metrics.algorithm == "generic_join_batch"
        assert warm.metrics.algorithm == cold.metrics.algorithm

    def test_auto_fallback_driver_is_stable_warm(self, tables):
        with Session(tables) as session:
            prepared = session.prepare(TRIANGLE, index="btree", engine="auto")
            assert prepared.plan.engine == "tuple"  # no native batch kernel
            cold = prepared.execute()
            warm = prepared.execute()
        assert cold.metrics.algorithm == "generic_join"
        assert warm.metrics.algorithm == cold.metrics.algorithm
