"""Unified stage-tree plans: mixed-plan equivalence, lazy builds, RA308/RA309.

The tentpole contract: a ``algorithm="unified"`` plan — binary hash
stages and Generic Join sub-plans composed in one stage tree — must
return exactly the rows of every flat plan over the same query, for
cyclic, acyclic and mixed shapes, across index kinds and engines, with
and without lazy COLT index building.
"""

from __future__ import annotations

import dataclasses
import threading

import pytest

from repro.analysis.plancheck import check_join_plan, validate_join_plan
from repro.data.graphs import random_edge_relation
from repro.data.imdb import job_light_queries, make_imdb
from repro.engine import PlanStage, Session, bind, plan, stage_alias
from repro.errors import ConfigurationError, PlanValidationError
from repro.indexes.lazy import LAZY_CAPABLE_KINDS, LazyTrieAdapter
from repro.indexes.registry import make_index, registered_indexes
from repro.joins import join
from repro.storage.relation import Relation

TRIANGLE = "E1=E(a,b), E2=E(b,c), E3=E(c,a)"
BOWTIE = "E1=E(a,b), E2=E(b,c), E3=E(c,a), E4=E(a,d), E5=E(d,e), E6=E(e,a)"
CHAIN = "E1=E(a,b), E2=E(b,c), E3=E(c,d)"
TRIANGLE_TAIL = "E1=E(a,b), E2=E(b,c), E3=E(c,a), T=T(a,d)"


def row_set(result):
    """Rows re-keyed to a canonical attribute order, as a set.

    Unified plans may emit attributes in stage order rather than γ
    order, so equivalence is over attribute-labelled tuples.
    """
    attrs = sorted(result.attributes)
    positions = [result.attributes.index(a) for a in attrs]
    return {tuple(row[i] for i in positions) for row in result.rows}


@pytest.fixture(scope="module")
def edges():
    return random_edge_relation(120, 700, seed=7)


@pytest.fixture(scope="module")
def tail():
    return Relation("T", ("a", "d"), [(i % 120, i) for i in range(300)])


class TestMixedPlanEquivalence:
    """Same rows from pure binary, pure generic and unified plans."""

    @pytest.mark.parametrize("query", [TRIANGLE, BOWTIE, CHAIN,
                                       TRIANGLE_TAIL])
    @pytest.mark.parametrize("index", ["sonic", "sortedtrie", "hashtrie"])
    def test_unified_matches_flat_plans(self, edges, tail, query, index):
        aliases = [part.split("=")[0].strip() for part in query.split(",")]
        relations = {a: (tail if a == "T" else edges) for a in aliases}
        baseline = join(query, relations, algorithm="binary",
                        materialize=True)
        truth = row_set(baseline)
        generic = join(query, relations, algorithm="generic", index=index,
                       engine="tuple", materialize=True)
        assert row_set(generic) == truth
        unified = join(query, relations, algorithm="unified", index=index,
                       materialize=True)
        assert row_set(unified) == truth
        assert unified.metrics.algorithm == "unified"

    @pytest.mark.parametrize("engine", ["tuple", "batch"])
    @pytest.mark.parametrize("lazy", [False, True])
    def test_unified_engines_and_lazy(self, edges, tail, engine, lazy):
        relations = {"E1": edges, "E2": edges, "E3": edges, "T": tail}
        truth = row_set(join(TRIANGLE_TAIL, relations, algorithm="binary",
                             materialize=True))
        unified = join(TRIANGLE_TAIL, relations, algorithm="unified",
                       engine=engine, lazy=lazy, materialize=True)
        assert row_set(unified) == truth

    def test_job_light_equivalence(self):
        catalog = make_imdb(400, seed=11)
        for item in job_light_queries(catalog, seed=11):
            flat = join(item.query, item.relations, algorithm="binary",
                        materialize=True)
            unified = join(item.query, item.relations, algorithm="unified",
                           materialize=True)
            assert row_set(unified) == row_set(flat), item.name

    def test_mixed_query_gets_core_plus_ears(self, edges, tail):
        relations = {"E1": edges, "E2": edges, "E3": edges, "T": tail}
        compiled = plan(bind(TRIANGLE_TAIL, relations), algorithm="unified")
        root = compiled.root_stage
        assert root.algorithm == "binary"
        assert len(root.children) == 1
        core = root.children[0]
        assert core.algorithm == "generic"
        assert set(core.query.attributes) == {"a", "b", "c"}
        assert stage_alias("core") in root.atom_order
        # the describe tree carries both stages, nested
        text = compiled.describe()
        assert "stage root: binary" in text
        assert "stage core: generic" in text

    def test_acyclic_query_gets_binary_root(self, edges):
        relations = {"E1": edges, "E2": edges, "E3": edges}
        compiled = plan(bind(CHAIN, relations), algorithm="unified")
        assert compiled.root_stage.algorithm == "binary"
        assert compiled.root_stage.children == ()

    def test_cyclic_query_gets_generic_root(self, edges):
        relations = {"E1": edges, "E2": edges, "E3": edges}
        compiled = plan(bind(TRIANGLE, relations), algorithm="unified")
        assert compiled.root_stage.algorithm == "generic"
        assert compiled.root_stage.children == ()

    def test_unified_rejects_parallel(self, edges):
        relations = {"E1": edges, "E2": edges, "E3": edges}
        with pytest.raises(ConfigurationError, match="sharded"):
            join(TRIANGLE, relations, algorithm="unified", parallel=2)

    def test_unified_profile_carries_stage_reports(self, edges, tail):
        relations = {"E1": edges, "E2": edges, "E3": edges, "T": tail}
        result = join(TRIANGLE_TAIL, relations, algorithm="unified",
                      profile=True)
        stages = result.profile.stages
        assert [s["label"] for s in stages] == ["root", "core"]
        assert stages[0]["depth"] == 0 and stages[1]["depth"] == 1
        assert stages[0]["actual_rows"] == result.count
        assert all(s["estimated_rows"] is None
                   or s["estimated_rows"] >= 0 for s in stages)
        assert "stage tree:" in result.profile.render()


class TestLazyEquivalence:
    """Lazy and eager builds must converge to identical level state."""

    def walk(self, index, arity):
        """Every tuple reachable through the prefix-cursor interface."""
        rows = []
        cursor = index.cursor()

        def descend(prefix):
            if len(prefix) == arity:
                rows.append(tuple(prefix))
                return
            for value in list(cursor.child_values()):
                if cursor.try_descend(value):
                    descend(prefix + [value])
                    cursor.ascend()

        descend([])
        return sorted(rows)

    @pytest.mark.parametrize("kind", list(LAZY_CAPABLE_KINDS))
    def test_full_depth_matches_eager(self, edges, kind):
        adapter = LazyTrieAdapter(edges, kind, ("a", "b"), (0, 1))
        assert adapter.built_depth == 0
        lazy_rows = self.walk(adapter, adapter.arity)
        assert adapter.built_depth == adapter.arity
        eager = make_index(kind, 2) if kind != "sonic" else None
        if eager is None:
            from repro.core.config import SonicConfig
            eager = make_index("sonic", 2,
                               config=SonicConfig.for_tuples(len(edges)))
        eager.build_bulk(edges.columns())
        assert lazy_rows == self.walk(eager, 2)
        # identical level state: same children and residual counts at
        # every prefix the eager trie knows
        inner = adapter._state[0]
        for row in lazy_rows:
            for depth in range(adapter.arity):
                prefix = tuple(row[:depth])
                assert sorted(inner.iter_next_values(prefix)) == \
                    sorted(eager.iter_next_values(prefix))
                assert inner.count_prefix(prefix) == \
                    eager.count_prefix(prefix)
            assert inner.count_prefix(row) == eager.count_prefix(row)

    def test_first_touch_builds_requested_depth_only(self, edges):
        adapter = LazyTrieAdapter(edges, "sortedtrie", ("a", "b"), (0, 1))
        cursor = adapter.cursor()
        values = list(cursor.child_values())     # needs depth 1 only
        assert values and adapter.built_depth == 1
        assert cursor.try_descend(values[0])     # still depth 1
        assert adapter.built_depth == 1
        assert list(cursor.child_values())       # depth 2 → full build
        assert adapter.built_depth == adapter.arity

    def test_root_count_never_builds(self, edges):
        adapter = LazyTrieAdapter(edges, "sonic", ("a", "b"), (0, 1))
        assert adapter.cursor().count() == len(edges)
        assert adapter.batch_cursor().count(()) == len(edges)
        assert adapter.built_depth == 0

    def test_pending_charge_drains_once(self, edges):
        adapter = LazyTrieAdapter(edges, "sonic", ("a", "b"), (0, 1))
        list(adapter.cursor().child_values())
        first = adapter.take_pending_charge()
        assert first > 0.0
        assert adapter.take_pending_charge() == 0.0

    def test_lazy_rejects_incapable_kind(self, edges):
        with pytest.raises(ValueError, match="level-at-a-time"):
            LazyTrieAdapter(edges, "hashtrie", ("a", "b"), (0, 1))

    def test_join_level_charge_lands_on_first_run(self, edges):
        relations = {"E1": edges, "E2": edges, "E3": edges}
        with Session(relations) as session:
            prepared = session.prepare(TRIANGLE, algorithm="generic",
                                       lazy=True)
            first = prepared.execute()
            again = prepared.execute()
            assert first.count == again.count
            # materialization happened during the first run
            assert first.metrics.build_seconds > 0.0

    def test_lazy_join_equivalence_via_executor(self, edges):
        relations = {"E1": edges, "E2": edges, "E3": edges}
        truth = row_set(join(TRIANGLE, relations, algorithm="generic",
                             materialize=True))
        for engine in ("tuple", "batch"):
            for kind in LAZY_CAPABLE_KINDS:
                lazy = join(TRIANGLE, relations, algorithm="generic",
                            engine=engine, index=kind, lazy=True,
                            materialize=True)
                assert row_set(lazy) == truth, (engine, kind)

    def test_lazy_on_incapable_kind_raises_at_plan_time(self, edges):
        relations = {"E1": edges, "E2": edges, "E3": edges}
        with pytest.raises(ConfigurationError, match="lazy"):
            join(TRIANGLE, relations, algorithm="generic", index="hashtrie",
                 lazy=True)


class TestLazyThreadStress:
    """Two executors racing one cached lazy adapter stay consistent."""

    def test_racing_sessions_share_one_canonical_adapter(self, edges):
        relations = {"E1": edges, "E2": edges, "E3": edges}
        with Session(relations) as session:
            truth = join(TRIANGLE, relations, algorithm="generic").count
            results, errors = [], []
            barrier = threading.Barrier(2)

            def run():
                try:
                    barrier.wait(timeout=10)
                    for _ in range(5):
                        out = session.execute(TRIANGLE, algorithm="generic",
                                              lazy=True)
                        results.append(out.count)
                except Exception as exc:  # pragma: no cover - diagnostics
                    errors.append(exc)

            threads = [threading.Thread(target=run) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not errors
            assert results == [truth] * 10
            # all runs converged on cached adapters at full depth; the
            # triangle needs only two distinct entries (E1 and E2 share
            # a permutation over the same relation)
            stats = session.cache_stats()
            assert stats.entries == 2
            for key in list(session.cache._entries):
                assert session.cache.built_depth(key) == 2


class TestStageTreeValidation:
    """RA308/RA309: planted corruptions flagged, clean plans pass."""

    @pytest.fixture
    def unified(self, edges, tail):
        relations = {"E1": edges, "E2": edges, "E3": edges, "T": tail}
        return plan(bind(TRIANGLE_TAIL, relations), algorithm="unified")

    def test_clean_unified_plan_passes(self, unified, edges, tail):
        relations = {"E1": edges, "E2": edges, "E3": edges, "T": tail}
        assert validate_join_plan(unified, relations=relations) == []

    def test_ra308_auto_below_root(self, unified):
        bad_child = dataclasses.replace(unified.root_stage.children[0],
                                        algorithm="auto")
        bad = dataclasses.replace(
            unified, root_stage=dataclasses.replace(
                unified.root_stage, children=(bad_child,)))
        codes = [i.code for i in validate_join_plan(bad)]
        assert "RA308" in codes
        with pytest.raises(PlanValidationError, match="RA308"):
            check_join_plan(bad)

    def test_ra308_child_output_must_cover_parent_atom(self, unified):
        bad_child = dataclasses.replace(unified.root_stage.children[0],
                                        output=("a",))
        bad = dataclasses.replace(
            unified, root_stage=dataclasses.replace(
                unified.root_stage, children=(bad_child,)))
        codes = [i.code for i in validate_join_plan(bad)]
        assert "RA308" in codes

    def test_ra308_orphan_synthetic_atom(self, unified):
        bad = dataclasses.replace(
            unified, root_stage=dataclasses.replace(
                unified.root_stage, children=()))
        messages = [i for i in validate_join_plan(bad) if i.code == "RA308"]
        assert any("no matching child" in i.message for i in messages)

    def test_ra308_missing_root(self, unified):
        bad = dataclasses.replace(unified, root_stage=None)
        codes = [i.code for i in validate_join_plan(bad)]
        assert "RA308" in codes

    def test_ra308_duplicate_child_labels(self, unified):
        child = unified.root_stage.children[0]
        bad = dataclasses.replace(
            unified, root_stage=dataclasses.replace(
                unified.root_stage, children=(child, child)))
        messages = [i for i in validate_join_plan(bad) if i.code == "RA308"]
        assert any("two child stages" in i.message for i in messages)

    def test_ra309_lazy_on_incapable_kind(self, edges):
        relations = {"E1": edges, "E2": edges, "E3": edges}
        compiled = plan(bind(TRIANGLE, relations), algorithm="generic",
                        index="hashtrie")
        bad_specs = tuple(dataclasses.replace(s, lazy=True)
                          for s in compiled.index_specs)
        bad = dataclasses.replace(compiled, index_specs=bad_specs)
        codes = {i.code for i in validate_join_plan(bad)}
        assert codes == {"RA309"}
        with pytest.raises(PlanValidationError, match="RA309"):
            check_join_plan(bad)

    def test_ra309_clean_counterexample(self, edges):
        # lazy on a capable kind is exactly what the validator must allow
        relations = {"E1": edges, "E2": edges, "E3": edges}
        compiled = plan(bind(TRIANGLE, relations), algorithm="generic",
                        index="sonic", index_kwargs={"lazy": True})
        assert all(s.lazy for s in compiled.index_specs)
        assert validate_join_plan(compiled, relations=relations) == []

    def test_lazy_kind_registry_cross_check(self):
        # the validator's duck-typed copy must track the live capability
        # tuple, and every capable kind must really be registered
        from repro.analysis.plancheck import _LAZY_KINDS
        assert _LAZY_KINDS == LAZY_CAPABLE_KINDS
        registered = registered_indexes()
        for kind in LAZY_CAPABLE_KINDS:
            assert kind in registered
            assert make_index(kind, 2).SUPPORTS_BULK_BUILD

    def test_stage_dataclass_is_frozen_and_renders(self, unified):
        root = unified.root_stage
        assert isinstance(root, PlanStage)
        with pytest.raises(dataclasses.FrozenInstanceError):
            root.algorithm = "generic"
        text = root.describe()
        assert text.splitlines()[0].lstrip().startswith("- stage root:")
