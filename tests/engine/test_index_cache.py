"""The session index cache: accounting, LRU/byte eviction, invalidation."""

from __future__ import annotations

import pytest

from repro.engine import IndexCache, Session
from repro.engine.cache import estimate_structure_bytes
from repro.storage.relation import Relation


def entry(cache: IndexCache, relation: Relation, tag: str) -> tuple:
    return cache.key_for(relation, (tag, (0, 1), (), None))


@pytest.fixture
def edges() -> Relation:
    return Relation("E", ("src", "dst"), [(0, 1), (1, 2), (2, 0)])


class TestAccounting:
    def test_hit_miss_store_counters(self, edges):
        cache = IndexCache(max_bytes=1 << 20)
        key = entry(cache, edges, "sonic")
        assert cache.get(key) is None
        cache.put(key, object(), 100)
        assert cache.get(key) is not None
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.stores) == (1, 1, 1)
        assert stats.entries == 1 and stats.bytes == 100

    def test_metrics_registry_sees_counters(self, edges):
        cache = IndexCache(max_bytes=1 << 20)
        key = entry(cache, edges, "sonic")
        cache.get(key)
        cache.put(key, object(), 10)
        cache.get(key)
        assert cache.metrics.get("cache.miss") == 1
        assert cache.metrics.get("cache.hit") == 1
        assert cache.metrics.get("cache.store") == 1

    def test_replacing_a_key_reclaims_its_bytes(self, edges):
        cache = IndexCache(max_bytes=1 << 20)
        key = entry(cache, edges, "sonic")
        cache.put(key, object(), 100)
        cache.put(key, object(), 40)
        assert cache.bytes_used == 40
        assert len(cache) == 1


class TestEviction:
    def test_byte_budget_evicts_lru_first(self, edges):
        cache = IndexCache(max_bytes=250)
        keys = [entry(cache, edges, f"k{i}") for i in range(3)]
        for key in keys:
            cache.put(key, object(), 100)
        # 300 bytes > 250: the coldest (first-stored) entry must go
        assert len(cache) == 2
        assert keys[0] not in cache
        assert keys[1] in cache and keys[2] in cache
        assert cache.stats().evictions == 1
        assert cache.metrics.get("cache.evict") == 1

    def test_get_refreshes_recency(self, edges):
        cache = IndexCache(max_bytes=250)
        keys = [entry(cache, edges, f"k{i}") for i in range(3)]
        cache.put(keys[0], object(), 100)
        cache.put(keys[1], object(), 100)
        cache.get(keys[0])  # k0 becomes most-recently-used
        cache.put(keys[2], object(), 100)
        assert keys[0] in cache
        assert keys[1] not in cache

    def test_entry_cap(self, edges):
        cache = IndexCache(max_bytes=1 << 20, max_entries=2)
        for i in range(4):
            cache.put(entry(cache, edges, f"k{i}"), object(), 1)
        assert len(cache) == 2

    def test_disabled_cache_stores_nothing(self, edges):
        cache = IndexCache(max_bytes=0)
        assert not cache.enabled
        key = entry(cache, edges, "sonic")
        cache.put(key, object(), 1)
        assert len(cache) == 0
        assert cache.get(key) is None

    def test_clear_releases_everything(self, edges):
        cache = IndexCache(max_bytes=1 << 20)
        for i in range(3):
            cache.put(entry(cache, edges, f"k{i}"), object(), 10)
        cache.clear()
        assert len(cache) == 0 and cache.bytes_used == 0


class TestInvalidation:
    def test_mutation_bumps_fingerprint_so_entries_stop_matching(self, edges):
        cache = IndexCache(max_bytes=1 << 20)
        before = entry(cache, edges, "sonic")
        cache.put(before, object(), 10)
        edges.insert((3, 4))
        after = entry(cache, edges, "sonic")
        assert after != before
        assert cache.get(after) is None  # stale entry never served

    def test_renamed_view_shares_fingerprint_with_base(self, edges):
        view = edges.renamed(("a", "b"), name="E1")
        assert view.fingerprint() == edges.fingerprint()
        view2 = edges.renamed(("b", "c"), name="E2")
        edges.extend([(7, 8)])
        # the version bump is visible through every view
        assert view.fingerprint() == view2.fingerprint() == edges.fingerprint()
        assert view.version == 1

    def test_invalidate_relation_drops_all_versions(self, edges):
        cache = IndexCache(max_bytes=1 << 20)
        cache.put(entry(cache, edges, "sonic"), object(), 10)
        edges.insert((5, 6))
        cache.put(entry(cache, edges, "sonic"), object(), 10)
        other = Relation("F", ("x", "y"), [(1, 1)])
        cache.put(entry(cache, other, "sonic"), object(), 10)
        dropped = cache.invalidate_relation(edges.renamed(("a", "b")))
        assert dropped == 2
        assert len(cache) == 1  # the unrelated relation survives


class TestByteEstimates:
    def test_prefers_reported_memory_usage(self):
        class Reporting:
            def memory_usage(self):
                return 12345

        assert estimate_structure_bytes(Reporting(), 10, 2) == 12345

    def test_falls_back_to_tuple_heuristic(self):
        assert estimate_structure_bytes(object(), 100, 3) == 100 * 3 * 64
        assert estimate_structure_bytes(object(), 0, 0) == 64


class TestAliasSharing:
    def test_triangle_self_join_shares_one_build(self, edges):
        # E1(a,b) and E2(b,c) index the same storage under the same
        # permutation → one build + one hit; E3(c,a) permutes the other
        # way → its own build.  2 misses, 1 hit, 2 stored entries.
        session = Session({"E1": edges, "E2": edges, "E3": edges})
        prepared = session.prepare("E1=E(a,b), E2=E(b,c), E3=E(c,a)")
        stats = session.cache_stats()
        assert (stats.misses, stats.hits, stats.entries) == (2, 1, 2)
        assert prepared.execute().count == 3

    def test_second_prepare_is_all_hits(self, edges):
        session = Session({"E1": edges, "E2": edges, "E3": edges})
        session.prepare("E1=E(a,b), E2=E(b,c), E3=E(c,a)")
        session.prepare("E1=E(a,b), E2=E(b,c), E3=E(c,a)")
        stats = session.cache_stats()
        assert stats.misses == 2 and stats.hits == 1 + 3
        assert stats.entries == 2
