"""The plan IR: spec construction, RA306/RA307 validation, option policing."""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.plancheck import check_join_plan, validate_join_plan
from repro.engine import (
    HASHTABLE_KIND,
    TUPLESET_KIND,
    IndexSpec,
    JoinPlan,
    bind,
    canonical_options,
    plan,
)
from repro.errors import ConfigurationError, PlanValidationError
from repro.joins import join
from repro.storage.relation import Relation

TRIANGLE = "E1=E(a,b), E2=E(b,c), E3=E(c,a)"


@pytest.fixture
def tables() -> dict[str, Relation]:
    edges = Relation("E", ("src", "dst"), [(0, 1), (1, 2), (2, 0)])
    return {"E1": edges, "E2": edges, "E3": edges}


@pytest.fixture
def bound(tables):
    return bind(TRIANGLE, tables)


class TestPlanConstruction:
    def test_generic_plan_fields(self, bound):
        compiled = plan(bound, algorithm="generic", index="sonic")
        assert compiled.algorithm == "generic"
        assert compiled.engine == "tuple"
        assert compiled.index == "sonic"
        assert compiled.total_order == ("a", "b", "c")
        assert compiled.atom_order == ()
        assert len(compiled.index_specs) == 3
        spec = compiled.spec_for("E3")
        # E3(c,a): total order puts a before c → permutation flips columns
        assert spec.attribute_order == ("a", "c")
        assert spec.permutation == (1, 0)
        assert dict(spec.options)["bucket_size"] == 8

    def test_engine_auto_resolves_at_plan_time(self, bound):
        assert plan(bound, engine="auto", index="sonic").engine == "batch"
        assert plan(bound, engine="auto", index="btree").engine == "tuple"

    def test_auto_algorithm_is_resolved_and_carries_choice(self, bound):
        compiled = plan(bound, algorithm="auto")
        assert compiled.algorithm in ("generic", "binary")
        assert compiled.choice is not None

    def test_binary_plan_uses_atom_order_and_hashtables(self, bound):
        compiled = plan(bound, algorithm="binary",
                        binary_order=["E1", "E2", "E3"])
        assert compiled.atom_order == ("E1", "E2", "E3")
        assert compiled.total_order == ()
        assert {s.alias for s in compiled.index_specs} == {"E2", "E3"}
        stage = compiled.spec_for("E2")
        assert stage.kind == HASHTABLE_KIND
        assert stage.key_arity == 1  # probes on b, payload c

    def test_recursive_plan_uses_tuplesets(self, bound):
        compiled = plan(bound, algorithm="recursive")
        assert all(s.kind == TUPLESET_KIND for s in compiled.index_specs)

    def test_leapfrog_specs_request_presorting(self, bound):
        compiled = plan(bound, algorithm="leapfrog")
        assert all(dict(s.options)["sorted"] for s in compiled.index_specs)

    def test_plan_is_inert_and_frozen(self, bound):
        compiled = plan(bound)
        with pytest.raises(dataclasses.FrozenInstanceError):
            compiled.algorithm = "binary"
        with pytest.raises(KeyError):
            compiled.spec_for("nope")

    def test_describe_summarizes(self, bound):
        text = plan(bound, engine="batch").describe()
        assert "generic/batch" in text and "order=a,b,c" in text

    def test_cache_key_suffix_distinguishes_options(self, bound):
        a = plan(bound, index_kwargs={"sonic_bucket_size": 8}).spec_for("E1")
        b = plan(bound, index_kwargs={"sonic_bucket_size": 16}).spec_for("E1")
        assert a.cache_key_suffix() != b.cache_key_suffix()
        assert canonical_options({"x": 1, "a": 2}) == (("a", 2), ("x", 1))


class TestOptionPolicing:
    """Satellite: index options the algorithm cannot honor must raise."""

    @pytest.mark.parametrize("algorithm", ["binary", "leapfrog", "recursive"])
    def test_index_kwargs_rejected(self, tables, algorithm):
        with pytest.raises(ConfigurationError, match="cannot honor"):
            join(TRIANGLE, tables, algorithm=algorithm, sonic_bucket_size=4)

    def test_hashtrie_rejects_foreign_options(self, tables):
        with pytest.raises(ConfigurationError, match="cannot honor"):
            join(TRIANGLE, tables, algorithm="hashtrie", sonic_bucket_size=4)
        # its own knobs still work
        assert join(TRIANGLE, tables, algorithm="hashtrie", lazy=False,
                    singleton_pruning=False).count == 3

    def test_generic_rejects_unknown_options(self, tables):
        with pytest.raises(ConfigurationError, match="cannot honor"):
            join(TRIANGLE, tables, algorithm="generic", bucket_size=4)

    def test_sonic_options_need_the_sonic_index(self, tables):
        with pytest.raises(ConfigurationError, match="sonic"):
            join(TRIANGLE, tables, algorithm="generic", index="btree",
                 sonic_bucket_size=4)

    def test_sonic_options_accepted_on_sonic(self, tables):
        assert join(TRIANGLE, tables, sonic_bucket_size=4,
                    sonic_overallocation=3.0).count == 3

    def test_unknown_algorithm_and_engine_messages(self, tables):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            join(TRIANGLE, tables, algorithm="nested-loop")
        with pytest.raises(ConfigurationError, match="unknown engine"):
            join(TRIANGLE, tables, engine="vectorized")


class TestPlanValidation:
    """RA306/RA307 over hand-corrupted plans."""

    def test_sound_plans_pass(self, bound):
        for algorithm in ("generic", "binary", "hashtrie", "leapfrog",
                          "recursive"):
            compiled = plan(bound, algorithm=algorithm)
            assert validate_join_plan(
                compiled, relations=bound.relations) == []

    def test_ra307_unresolved_algorithm(self, bound):
        compiled = dataclasses.replace(plan(bound), algorithm="auto")
        codes = [i.code for i in validate_join_plan(compiled)]
        assert "RA307" in codes

    def test_ra307_unknown_engine(self, bound):
        compiled = dataclasses.replace(plan(bound), engine="vectorized")
        with pytest.raises(PlanValidationError, match="RA307"):
            check_join_plan(compiled)

    def test_ra306_bad_permutation(self, bound):
        compiled = plan(bound)
        bad = dataclasses.replace(compiled.index_specs[0],
                                  permutation=(0, 2))
        compiled = dataclasses.replace(
            compiled, index_specs=(bad,) + compiled.index_specs[1:])
        codes = [i.code for i in validate_join_plan(compiled)]
        assert "RA306" in codes

    def test_ra306_missing_spec(self, bound):
        compiled = plan(bound)
        compiled = dataclasses.replace(compiled,
                                       index_specs=compiled.index_specs[:2])
        with pytest.raises(PlanValidationError, match="RA306"):
            check_join_plan(compiled)

    def test_ra306_hashtable_without_key_split(self, bound):
        compiled = plan(bound, algorithm="binary",
                        binary_order=["E1", "E2", "E3"])
        bad = dataclasses.replace(compiled.index_specs[0], key_arity=None)
        compiled = dataclasses.replace(
            compiled, index_specs=(bad,) + compiled.index_specs[1:])
        codes = [i.code for i in validate_join_plan(compiled)]
        assert "RA306" in codes

    def test_ra306_foreign_alias(self, bound):
        compiled = plan(bound)
        stray = IndexSpec(alias="Z", kind="sonic",
                          attribute_order=("a", "b"), permutation=(0, 1))
        compiled = dataclasses.replace(
            compiled, index_specs=compiled.index_specs + (stray,))
        codes = [i.code for i in validate_join_plan(compiled)]
        assert "RA306" in codes

    def test_debug_join_runs_ir_checks(self, tables):
        # the debug path reaches check_join_plan without raising on a
        # well-formed query end to end
        assert join(TRIANGLE, tables, debug=True).count == 3


class TestJoinPlanDataclass:
    def test_plans_hash_and_compare_by_value(self, bound):
        a = plan(bound, algorithm="leapfrog")
        b = plan(bound, algorithm="leapfrog")
        assert a == b
        assert a is not b
        assert hash(a.index_specs[0]) == hash(b.index_specs[0])
