"""Schema tests."""

import pytest

from repro.errors import SchemaError
from repro.storage import Schema


class TestValidation:
    def test_basic(self):
        schema = Schema(("a", "b", "c"))
        assert len(schema) == 3
        assert list(schema) == ["a", "b", "c"]
        assert "b" in schema
        assert "z" not in schema

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema(())

    def test_duplicates_rejected(self):
        with pytest.raises(SchemaError):
            Schema(("a", "a"))

    def test_non_string_rejected(self):
        with pytest.raises(SchemaError):
            Schema(("a", 3))

    def test_equality_and_hash(self):
        assert Schema(("a", "b")) == Schema(("a", "b"))
        assert Schema(("a", "b")) != Schema(("b", "a"))
        assert hash(Schema(("a",))) == hash(Schema(("a",)))


class TestPositions:
    def test_position(self):
        schema = Schema(("x", "y"))
        assert schema.position("x") == 0
        assert schema.position("y") == 1
        with pytest.raises(SchemaError):
            schema.position("z")

    def test_project_positions(self):
        schema = Schema(("a", "b", "c"))
        assert schema.project_positions(("c", "a")) == (2, 0)


class TestPermutation:
    def test_permutation_to_total_order(self):
        schema = Schema(("a", "b", "c"))
        perm = schema.permutation_to(("c", "a", "b"))
        assert perm == (2, 0, 1)
        assert schema.reordered(("c", "a", "b")).attributes == ("c", "a", "b")

    def test_identity(self):
        schema = Schema(("a", "b"))
        assert schema.permutation_to(("a", "b")) == (0, 1)

    def test_partial_order_appends_leftovers(self):
        schema = Schema(("a", "b", "c"))
        perm = schema.permutation_to(("c",))
        assert perm == (2, 0, 1)

    def test_order_with_foreign_attributes(self):
        schema = Schema(("a", "b"))
        assert schema.permutation_to(("z", "b", "q", "a")) == (1, 0)

    def test_common_attributes(self):
        left = Schema(("a", "b", "c"))
        right = Schema(("c", "b", "x"))
        assert left.common_attributes(right) == ("b", "c")
