"""Catalog tests."""

import pytest

from repro.errors import SchemaError
from repro.storage import Catalog, Relation


@pytest.fixture
def catalog():
    return Catalog([
        Relation("R", ("a", "b"), [(1, 2)]),
        Relation("S", ("b", "c"), [(2, 3), (2, 4)]),
    ])


class TestCatalog:
    def test_lookup(self, catalog):
        assert catalog.get("R").name == "R"
        assert catalog["S"].name == "S"
        assert "R" in catalog
        assert "Z" not in catalog

    def test_missing_raises_with_hint(self, catalog):
        with pytest.raises(SchemaError, match="have:"):
            catalog.get("Z")

    def test_duplicate_add_rejected(self, catalog):
        with pytest.raises(SchemaError):
            catalog.add(Relation("R", ("x",), []))

    def test_replace(self, catalog):
        catalog.add(Relation("R", ("x",), [(9,)]), replace=True)
        assert catalog.get("R").schema.attributes == ("x",)

    def test_stats(self, catalog):
        assert catalog.cardinalities() == {"R": 1, "S": 2}
        assert catalog.total_rows() == 3
        assert catalog.names == ["R", "S"]
        assert len(catalog) == 2
