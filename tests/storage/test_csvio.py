"""CSV round-trip tests."""

import pytest

from repro.errors import SchemaError
from repro.storage import (
    Relation,
    Schema,
    load_edge_list,
    load_relation,
    save_edge_list,
    save_relation,
)


class TestCsvRoundTrip:
    def test_typed_round_trip(self, tmp_path):
        relation = Relation("R", ("a", "b"), [(1, "x"), (2, "y")])
        path = tmp_path / "r.csv"
        save_relation(relation, path)
        loaded = load_relation("R", path)
        assert sorted(loaded) == sorted(relation)
        assert loaded.schema == relation.schema

    def test_untyped_integer_inference(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("a,b\n1,2\n3,4\n")
        loaded = load_relation("R", path)
        assert sorted(loaded) == [(1, 2), (3, 4)]

    def test_untyped_mixed_stays_string(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("a,b\n1,x\n2,y\n")
        loaded = load_relation("R", path)
        assert (1, "x") in loaded

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            load_relation("R", path)

    def test_schema_mismatch_rejected(self, tmp_path):
        relation = Relation("R", ("a", "b"), [(1, 2)])
        path = tmp_path / "r.csv"
        save_relation(relation, path)
        with pytest.raises(SchemaError):
            load_relation("R", path, schema=Schema(("x", "y")))

    def test_empty_relation_round_trip(self, tmp_path):
        relation = Relation("R", ("a", "b"), [])
        path = tmp_path / "r.csv"
        save_relation(relation, path)
        assert len(load_relation("R", path)) == 0


class TestEdgeLists:
    def test_round_trip(self, tmp_path):
        relation = Relation("E", ("src", "dst"), [(1, 2), (3, 4)])
        path = tmp_path / "edges.txt"
        save_edge_list(relation, path)
        loaded = load_edge_list("E", path)
        assert sorted(loaded) == sorted(relation)

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# a SNAP header\n1\t2\n# more\n3\t4\n")
        loaded = load_edge_list("E", path)
        assert sorted(loaded) == [(1, 2), (3, 4)]

    def test_non_binary_rejected(self, tmp_path):
        relation = Relation("R", ("a", "b", "c"), [(1, 2, 3)])
        with pytest.raises(SchemaError):
            save_edge_list(relation, tmp_path / "x.txt")
