"""Relation tests."""

import random

import pytest

from repro.errors import SchemaError
from repro.storage import Relation, Schema


@pytest.fixture
def relation():
    return Relation("R", ("a", "b", "c"),
                    [(1, 2, 3), (1, 5, 6), (2, 2, 3)])


class TestBasics:
    def test_len_iter_contains(self, relation):
        assert len(relation) == 3
        assert (1, 2, 3) in relation
        assert (9, 9, 9) not in relation
        assert sorted(relation) == [(1, 2, 3), (1, 5, 6), (2, 2, 3)]

    def test_schema_from_sequence(self):
        relation = Relation("R", ["x", "y"], [(1, 2)])
        assert isinstance(relation.schema, Schema)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", ("a", "b"), [(1, 2, 3)])

    def test_column(self, relation):
        assert relation.column("a") == [1, 1, 2]
        assert relation.column("c") == [3, 6, 3]


class TestOperations:
    def test_project(self, relation):
        projected = relation.project(("c", "a"))
        assert projected.schema.attributes == ("c", "a")
        assert sorted(projected) == [(3, 1), (3, 2), (6, 1)]

    def test_project_distinct(self, relation):
        projected = relation.project(("b",), distinct=True)
        assert sorted(projected) == [(2,), (5,)]

    def test_select(self, relation):
        selected = relation.select(lambda row: row[0] == 1)
        assert len(selected) == 2

    def test_reordered(self, relation):
        reordered = relation.reordered(("c", "b", "a"))
        assert reordered.schema.attributes == ("c", "b", "a")
        assert (3, 2, 1) in reordered

    def test_reordered_identity_returns_self(self, relation):
        assert relation.reordered(("a", "b", "c")) is relation

    def test_renamed_shares_rows(self, relation):
        view = relation.renamed(("x", "y", "z"))
        assert view.rows is relation.rows
        assert view.schema.attributes == ("x", "y", "z")

    def test_renamed_arity_checked(self, relation):
        with pytest.raises(SchemaError):
            relation.renamed(("x", "y"))

    def test_distinct(self):
        relation = Relation("R", ("a",), [(1,), (1,), (2,)])
        assert len(relation.distinct()) == 2

    def test_sorted(self):
        relation = Relation("R", ("a", "b"), [(2, 1), (1, 9), (1, 2)])
        assert list(relation.sorted()) == [(1, 2), (1, 9), (2, 1)]

    def test_sample_rows(self, relation):
        rng = random.Random(1)
        sample = relation.sample_rows(10, rng)
        assert len(sample) == 10
        assert all(row in relation.rows for row in sample)

    def test_sample_empty(self):
        relation = Relation("R", ("a",), [])
        assert relation.sample_rows(5, random.Random(1)) == []
