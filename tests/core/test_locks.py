"""Key-range lock manager (§3.4.2)."""

import pytest

from repro.core import KeyRangeLockManager
from repro.errors import ConfigurationError


class TestKeyRangeLockManager:
    def test_stripe_partitioning(self):
        manager = KeyRangeLockManager(num_levels=2, capacity=32768,
                                      granularity=8192)
        assert manager.stripes_per_level == 4
        assert manager.stripe_of(0) == 0
        assert manager.stripe_of(8191) == 0
        assert manager.stripe_of(8192) == 1
        assert manager.stripe_of(32767) == 3

    def test_rounds_partial_stripe_up(self):
        manager = KeyRangeLockManager(num_levels=1, capacity=10000,
                                      granularity=8192)
        assert manager.stripes_per_level == 2

    def test_invalid_granularity(self):
        with pytest.raises(ConfigurationError):
            KeyRangeLockManager(1, 1024, granularity=0)

    def test_locks_are_acquirable_and_distinct(self):
        manager = KeyRangeLockManager(num_levels=2, capacity=16384,
                                      granularity=8192)
        lock_a = manager.lock_for(0, 0)
        lock_b = manager.lock_for(0, 8192)
        lock_c = manager.lock_for(1, 0)
        assert lock_a is not lock_b
        assert lock_a is not lock_c
        with lock_a:
            assert lock_b.acquire(blocking=False)
            lock_b.release()

    def test_same_range_same_lock(self):
        manager = KeyRangeLockManager(num_levels=1, capacity=16384,
                                      granularity=8192)
        assert manager.lock_for(0, 5) is manager.lock_for(0, 8000)

    def test_acquisition_accounting(self):
        manager = KeyRangeLockManager(num_levels=2, capacity=1024,
                                      granularity=128)
        for slot in (0, 1, 500):
            manager.lock_for(0, slot)
        manager.lock_for(1, 0)
        assert manager.acquisitions == [3, 1]
        assert manager.total_acquisitions() == 4

    def test_allocator_locks_per_level(self):
        manager = KeyRangeLockManager(num_levels=3, capacity=1024)
        locks = {id(manager.allocator_lock(level)) for level in range(3)}
        assert len(locks) == 3
