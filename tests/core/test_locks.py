"""Key-range lock manager (§3.4.2)."""

import threading

import pytest

from repro.core import KeyRangeLockManager
from repro.errors import ConfigurationError


class TestKeyRangeLockManager:
    def test_stripe_partitioning(self):
        manager = KeyRangeLockManager(num_levels=2, capacity=32768,
                                      granularity=8192)
        assert manager.stripes_per_level == 4
        assert manager.stripe_of(0) == 0
        assert manager.stripe_of(8191) == 0
        assert manager.stripe_of(8192) == 1
        assert manager.stripe_of(32767) == 3

    def test_rounds_partial_stripe_up(self):
        manager = KeyRangeLockManager(num_levels=1, capacity=10000,
                                      granularity=8192)
        assert manager.stripes_per_level == 2

    def test_invalid_granularity(self):
        with pytest.raises(ConfigurationError):
            KeyRangeLockManager(1, 1024, granularity=0)

    def test_locks_are_acquirable_and_distinct(self):
        manager = KeyRangeLockManager(num_levels=2, capacity=16384,
                                      granularity=8192)
        lock_a = manager.lock_for(0, 0)
        lock_b = manager.lock_for(0, 8192)
        lock_c = manager.lock_for(1, 0)
        assert lock_a is not lock_b
        assert lock_a is not lock_c
        with lock_a:
            assert lock_b.acquire(blocking=False)
            lock_b.release()

    def test_same_range_same_lock(self):
        manager = KeyRangeLockManager(num_levels=1, capacity=16384,
                                      granularity=8192)
        assert manager.lock_for(0, 5) is manager.lock_for(0, 8000)

    def test_acquisition_accounting(self):
        manager = KeyRangeLockManager(num_levels=2, capacity=1024,
                                      granularity=128)
        for slot in (0, 1, 500):
            manager.lock_for(0, slot)
        manager.lock_for(1, 0)
        assert manager.acquisitions == [3, 1]
        assert manager.total_acquisitions() == 4

    def test_allocator_locks_per_level(self):
        manager = KeyRangeLockManager(num_levels=3, capacity=1024)
        locks = {id(manager.allocator_lock(level)) for level in range(3)}
        assert len(locks) == 3


class TestLockDiscipline:
    """Balance, ordering and stats coherence — the RA703/RA705 dogfood."""

    def test_acquire_release_balance_under_exceptions(self):
        # the canonical client pattern: acquire, work, release in finally;
        # the lock must be re-acquirable afterwards even when work raises
        manager = KeyRangeLockManager(num_levels=1, capacity=1024,
                                      granularity=128)
        lock = manager.lock_for(0, 5)
        with pytest.raises(ValueError):
            lock.acquire()
            try:
                raise ValueError("work failed")
            finally:
                lock.release()
        assert lock.acquire(blocking=False)
        lock.release()

    def test_stats_lock_independent_of_stripe_locks(self):
        # lock_for takes only _stats_lock internally, so calling it while
        # holding a stripe lock must not deadlock (acyclic lock order:
        # stripe locks never nest inside the stats lock)
        manager = KeyRangeLockManager(num_levels=1, capacity=1024,
                                      granularity=128)
        first = manager.lock_for(0, 0)
        with first:
            second = manager.lock_for(0, 500)  # re-enters accounting
            assert second is not first
            assert second.acquire(blocking=False)
            second.release()

    def test_level_then_stripe_order_is_consistent(self):
        # allocator lock before stripe lock is the documented order for
        # parallel builds; both directions on *different* levels must
        # still be independent (no shared lock between levels)
        manager = KeyRangeLockManager(num_levels=2, capacity=1024,
                                      granularity=128)
        with manager.allocator_lock(0):
            with manager.lock_for(0, 0):
                assert manager.allocator_lock(1).acquire(blocking=False)
                manager.allocator_lock(1).release()

    def test_concurrent_acquisition_accounting_exact(self):
        # the acquisitions table is annotated shared[lock=_stats_lock];
        # concurrent lock_for traffic must not lose counts
        manager = KeyRangeLockManager(num_levels=2, capacity=4096,
                                      granularity=256)
        threads = 8
        per_thread = 2000
        barrier = threading.Barrier(threads)

        def worker(tid):
            barrier.wait(timeout=60)
            for i in range(per_thread):
                lock = manager.lock_for(tid % 2, i % 4096)
                with lock:
                    pass

        pool = [threading.Thread(target=worker, args=(tid,), daemon=True)
                for tid in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=60)
        assert not any(t.is_alive() for t in pool)
        assert manager.total_acquisitions() == threads * per_thread
        assert manager.acquisitions == [threads // 2 * per_thread] * 2

    def test_locks_module_passes_concurrency_analysis(self):
        # the annotations in repro/core/locks.py are the first RA7xx
        # dogfood target: the module itself must scan clean
        from pathlib import Path

        import repro.core.locks as locks_module
        from repro.analysis import analyze_paths

        findings = analyze_paths([Path(locks_module.__file__)])
        assert [f for f in findings if f.rule.startswith("RA7")] == []
