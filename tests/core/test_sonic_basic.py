"""Sonic index: construction, insert, point lookup."""

import pytest

from conftest import make_rows
from repro.core import SonicConfig, SonicIndex
from repro.errors import ConfigurationError, SchemaError


class TestConstruction:
    def test_requires_arity_two(self):
        with pytest.raises(ConfigurationError):
            SonicIndex(1)

    def test_level_count_is_arity_minus_one(self):
        for arity in (2, 3, 5, 8):
            assert SonicIndex(arity).num_levels == arity - 1

    def test_keyword_overrides(self):
        index = SonicIndex(3, capacity=512, bucket_size=16, seed=7)
        assert index.config.capacity == 512
        assert index.config.bucket_size == 16
        assert index.config.seed == 7

    def test_config_object(self):
        config = SonicConfig(capacity=256, bucket_size=4)
        assert SonicIndex(3, config).config is config


class TestInsertAndContains:
    def test_empty_index(self):
        index = SonicIndex(3)
        assert len(index) == 0
        assert not index.contains((1, 2, 3))
        assert list(index) == []

    def test_single_tuple(self):
        index = SonicIndex(3)
        index.insert((1, 2, 3))
        assert len(index) == 1
        assert index.contains((1, 2, 3))
        assert not index.contains((1, 2, 4))
        assert not index.contains((9, 2, 3))

    def test_duplicate_insert_idempotent(self):
        index = SonicIndex(3)
        index.insert((1, 2, 3))
        index.insert((1, 2, 3))
        assert len(index) == 1
        assert list(index) == [(1, 2, 3)]

    def test_shared_prefixes(self):
        index = SonicIndex(3)
        index.insert((1, 2, 3))
        index.insert((1, 2, 4))
        index.insert((1, 5, 6))
        assert len(index) == 3
        for row in [(1, 2, 3), (1, 2, 4), (1, 5, 6)]:
            assert index.contains(row)

    def test_wrong_arity_rejected(self):
        index = SonicIndex(3)
        with pytest.raises(SchemaError):
            index.insert((1, 2))
        with pytest.raises(SchemaError):
            index.contains((1, 2, 3, 4))

    def test_membership_operator(self):
        index = SonicIndex(2)
        index.insert((4, 5))
        assert (4, 5) in index
        assert (5, 4) not in index
        assert "not a tuple" not in index

    def test_string_keys(self):
        index = SonicIndex(3)
        index.insert(("alice", "bob", "carol"))
        index.insert(("alice", "bob", "dave"))
        assert index.contains(("alice", "bob", "carol"))
        assert not index.contains(("alice", "carol", "bob"))

    def test_bulk_build_matches_ground_truth(self):
        rows = make_rows(4, 600, domain=25, seed=3)
        index = SonicIndex(4, SonicConfig.for_tuples(len(rows)))
        index.build(rows)
        assert len(index) == len(rows)
        assert sorted(index) == rows
        for row in rows[::17]:
            assert index.contains(row)

    def test_arity_two_special_case(self):
        # arity 2: the single level is first and last simultaneously
        rows = make_rows(2, 300, domain=40, seed=4)
        index = SonicIndex(2, SonicConfig.for_tuples(len(rows)))
        index.build(rows)
        assert sorted(index) == rows
        assert index.num_levels == 1


class TestIntrospection:
    def test_level_fill(self):
        rows = make_rows(3, 200, domain=30, seed=5)
        index = SonicIndex(3, SonicConfig.for_tuples(len(rows)))
        index.build(rows)
        fills = index.level_fill()
        assert len(fills) == 2
        assert all(0 < f <= 1 for f in fills)

    def test_memory_usage_positive_and_scales(self):
        small = SonicIndex(3, SonicConfig(capacity=64))
        large = SonicIndex(3, SonicConfig(capacity=4096))
        assert 0 < small.memory_usage() < large.memory_usage()

    def test_patch_stats_keys(self):
        index = SonicIndex(4, SonicConfig(capacity=64))
        stats = index.patch_stats()
        # levels 1 and 2 have patch structures; level 0 does not
        assert set(stats) == {1, 2}
        assert all(v == 0.0 for v in stats.values())
