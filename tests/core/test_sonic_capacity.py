"""Sonic is single-allocation: overflow raises instead of rehashing (§3.1)."""

import pytest

from conftest import make_rows
from repro.core import SonicConfig, SonicIndex
from repro.errors import CapacityError


class TestCapacityLimits:
    def test_exact_capacity_fits(self):
        rows = make_rows(3, 64, domain=1000, seed=31)
        index = SonicIndex(3, SonicConfig(capacity=64, bucket_size=8))
        index.build(rows)
        assert len(index) == 64

    def test_overflow_raises_capacity_error(self):
        rows = make_rows(3, 100, domain=1000, seed=32)
        index = SonicIndex(3, SonicConfig(capacity=64, bucket_size=8))
        with pytest.raises(CapacityError):
            index.build(rows)

    def test_error_message_mentions_capacity(self):
        index = SonicIndex(2, SonicConfig(capacity=8, bucket_size=8))
        with pytest.raises(CapacityError, match="capacity"):
            for i in range(100):
                index.insert((i, i))

    def test_duplicates_do_not_consume_capacity(self):
        index = SonicIndex(3, SonicConfig(capacity=8, bucket_size=8))
        for _ in range(100):
            index.insert((1, 2, 3))
        assert len(index) == 1

    def test_index_still_readable_after_overflow(self):
        rows = make_rows(2, 200, domain=5000, seed=33)
        index = SonicIndex(2, SonicConfig(capacity=128, bucket_size=8))
        inserted = []
        with pytest.raises(CapacityError):
            for row in rows:
                index.insert(row)
                inserted.append(row)
        # everything inserted before the failure is still intact
        for row in inserted[:-1]:
            assert index.contains(row)
