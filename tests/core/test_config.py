"""SonicConfig validation tests."""

import pytest

from repro.core import SonicConfig
from repro.errors import ConfigurationError


class TestSonicConfig:
    def test_defaults(self):
        config = SonicConfig()
        assert config.capacity >= config.bucket_size
        assert config.capacity % config.bucket_size == 0

    def test_capacity_rounded_to_buckets(self):
        config = SonicConfig(capacity=100, bucket_size=8)
        assert config.capacity == 104
        assert config.num_buckets == 13

    def test_bucket_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SonicConfig(capacity=64, bucket_size=0)

    def test_capacity_below_one_bucket_rejected(self):
        with pytest.raises(ConfigurationError):
            SonicConfig(capacity=4, bucket_size=8)

    def test_for_tuples_applies_overallocation(self):
        config = SonicConfig.for_tuples(1000, overallocation=2.0)
        assert config.capacity >= 2000

    def test_for_tuples_rejects_underallocation(self):
        with pytest.raises(ConfigurationError):
            SonicConfig.for_tuples(1000, overallocation=0.5)

    def test_for_tuples_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            SonicConfig.for_tuples(0)

    def test_for_tuples_minimum_one_bucket(self):
        config = SonicConfig.for_tuples(1, bucket_size=8)
        assert config.capacity >= 8

    def test_frozen(self):
        config = SonicConfig()
        with pytest.raises(AttributeError):
            config.capacity = 1  # type: ignore[misc]
