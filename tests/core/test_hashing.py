"""Hash function unit tests."""

import pytest

from repro.core.hashing import MASK64, fmix64, hash_key, hash_tuple, murmur3_bytes


class TestFmix64:
    def test_zero_maps_to_zero(self):
        assert fmix64(0) == 0

    def test_stays_in_64_bits(self):
        for value in (1, 2**63, 2**64 - 1, 123456789):
            assert 0 <= fmix64(value) <= MASK64

    def test_deterministic(self):
        assert fmix64(42) == fmix64(42)

    def test_is_bijective_on_sample(self):
        # a finalizer must not collide; spot-check a dense range
        outputs = {fmix64(v) for v in range(10000)}
        assert len(outputs) == 10000

    def test_avalanche(self):
        # flipping one input bit should flip roughly half the output bits
        base = fmix64(0xDEADBEEF)
        flipped = fmix64(0xDEADBEEF ^ 1)
        differing = (base ^ flipped).bit_count()
        assert 16 <= differing <= 48


class TestMurmurBytes:
    def test_known_reference_properties(self):
        # deterministic, seed-sensitive, length-sensitive
        assert murmur3_bytes(b"hello") == murmur3_bytes(b"hello")
        assert murmur3_bytes(b"hello") != murmur3_bytes(b"hello", seed=1)
        assert murmur3_bytes(b"hello") != murmur3_bytes(b"hello!")

    def test_empty_input(self):
        assert isinstance(murmur3_bytes(b""), int)

    def test_block_boundaries(self):
        # exercise tail lengths 0..16 around the 16-byte block size
        values = {murmur3_bytes(b"x" * n) for n in range(33)}
        assert len(values) == 33

    def test_range(self):
        for n in (0, 1, 15, 16, 17, 31, 32, 100):
            assert 0 <= murmur3_bytes(b"a" * n) <= MASK64


class TestHashKey:
    def test_int_and_str_supported(self):
        assert isinstance(hash_key(7), int)
        assert isinstance(hash_key("seven"), int)
        assert isinstance(hash_key(b"seven"), int)

    def test_bool_normalized_to_int(self):
        assert hash_key(True) == hash_key(1)
        assert hash_key(False) == hash_key(0)

    def test_seed_changes_hash(self):
        assert hash_key(99, seed=0) != hash_key(99, seed=1)
        assert hash_key("abc", seed=0) != hash_key("abc", seed=2)

    def test_unhashable_type_raises(self):
        with pytest.raises(TypeError):
            hash_key(3.14)

    def test_distribution_over_buckets(self):
        # hashed keys modulo a bucket count should spread evenly
        buckets = [0] * 16
        for value in range(4096):
            buckets[hash_key(value) % 16] += 1
        assert max(buckets) < 2 * min(buckets)


class TestHashTuple:
    def test_order_sensitive(self):
        assert hash_tuple((1, 2)) != hash_tuple((2, 1))

    def test_length_sensitive(self):
        assert hash_tuple((1,)) != hash_tuple((1, 0))

    def test_mixed_types(self):
        assert isinstance(hash_tuple((1, "a", b"b")), int)

    def test_empty_tuple(self):
        assert hash_tuple(()) == (0 if hash_tuple(()) == 0 else hash_tuple(()))
        assert hash_tuple(()) == hash_tuple(())
