"""The §3.5 space model."""

import pytest

from conftest import make_rows
from repro.core import SonicConfig, SonicIndex, sonic_bytes_per_tuple, sonic_space_estimate
from repro.errors import ConfigurationError


class TestSpaceFormula:
    def test_four_int_columns(self):
        # k=4, DTS=4: keys 3*4 + pointers 2*8 + patch keys 1*4 + tuple 4*4
        # + 1 bit = 48.125 bytes per tuple
        per_tuple = sonic_bytes_per_tuple([4, 4, 4, 4])
        assert per_tuple == pytest.approx(48.125)

    def test_paper_1000_tuple_example_is_lower_bound(self):
        # §3.5: "for 1000 tuples, 4 integers each, Sonic requires at least
        # 24KB" — the formula gives ~48KB at OF=1; the paper's number is a
        # loose lower bound, ours must be at least it
        estimate = sonic_space_estimate(1000, [4, 4, 4, 4])
        assert estimate >= 24 * 1024

    def test_two_columns_has_no_patch_keys_or_pointers(self):
        per_tuple = sonic_bytes_per_tuple([8, 8])
        # keys 8 + pointers 0 + patch 0 + tuple 16 + bit
        assert per_tuple == pytest.approx(8 + 16 + 1 / 8)

    def test_overallocation_scales_linearly(self):
        base = sonic_space_estimate(1000, [8, 8, 8])
        double = sonic_space_estimate(1000, [8, 8, 8], overallocation=2.0)
        assert double == pytest.approx(2 * base, rel=0.01)

    def test_counters_add_four_bytes_per_inner_level(self):
        without = sonic_bytes_per_tuple([8, 8, 8, 8])
        with_counters = sonic_bytes_per_tuple([8, 8, 8, 8], include_counters=True)
        assert with_counters - without == pytest.approx(2 * 4)

    def test_single_column_rejected(self):
        with pytest.raises(ConfigurationError):
            sonic_bytes_per_tuple([8])


class TestModelVsImplementation:
    def test_actual_allocation_within_model_ballpark(self):
        rows = make_rows(4, 500, domain=50, seed=41)
        overallocation = 2.0
        index = SonicIndex(4, SonicConfig.for_tuples(
            len(rows), overallocation=overallocation))
        index.build(rows)
        modelled = sonic_space_estimate(len(rows), [8, 8, 8, 8],
                                        overallocation=overallocation,
                                        include_counters=True)
        actual = index.memory_usage()
        # same order of magnitude: the implementation sizes per level
        # uniformly while the model is per-tuple exact
        assert modelled / 3 < actual < modelled * 3

    def test_memory_grows_with_arity(self):
        rows3 = make_rows(3, 300, domain=40, seed=42)
        rows6 = [row + row for row in rows3]
        small = SonicIndex(3, SonicConfig.for_tuples(300))
        small.build(rows3)
        large = SonicIndex(6, SonicConfig.for_tuples(300))
        large.build(rows6)
        assert large.memory_usage() > small.memory_usage()
