"""Sonic index: prefix lookup, prefix counting, child enumeration."""

import pytest

from conftest import make_rows, matching
from repro.core import SonicConfig, SonicIndex
from repro.errors import SchemaError


class TestPrefixLookup:
    @pytest.mark.parametrize("length", [0, 1, 2, 3, 4])
    def test_all_prefix_lengths(self, rows4, sonic4, length):
        for row in rows4[::41]:
            prefix = row[:length]
            assert sorted(sonic4.prefix_lookup(prefix)) == matching(rows4, prefix)

    def test_missing_prefix_yields_nothing(self, sonic4):
        assert list(sonic4.prefix_lookup((9999,))) == []
        assert list(sonic4.prefix_lookup((9999, 1, 2))) == []

    def test_full_tuple_prefix_is_point_lookup(self, rows4, sonic4):
        row = rows4[0]
        assert list(sonic4.prefix_lookup(row)) == [row]

    def test_prefix_longer_than_arity_rejected(self, sonic4):
        with pytest.raises(SchemaError):
            list(sonic4.prefix_lookup((1, 2, 3, 4, 5)))

    def test_no_duplicates_in_enumeration(self, rows4, sonic4):
        for row in rows4[::59]:
            out = list(sonic4.prefix_lookup(row[:1]))
            assert len(out) == len(set(out))

    def test_arity_two_prefix(self, rows2):
        index = SonicIndex(2, SonicConfig.for_tuples(len(rows2)))
        index.build(rows2)
        for row in rows2[::23]:
            assert sorted(index.prefix_lookup(row[:1])) == matching(rows2, row[:1])


class TestCountPrefix:
    @pytest.mark.parametrize("length", [0, 1, 2, 3, 4])
    def test_counts_match_enumeration(self, rows4, sonic4, length):
        for row in rows4[::47]:
            prefix = row[:length]
            assert sonic4.count_prefix(prefix) == len(matching(rows4, prefix))

    def test_count_zero_for_missing(self, sonic4):
        assert sonic4.count_prefix((424242,)) == 0
        assert sonic4.count_prefix((424242, 0, 1)) == 0

    def test_empty_prefix_counts_everything(self, rows4, sonic4):
        assert sonic4.count_prefix(()) == len(rows4)

    def test_approx_count_never_undercounts(self, rows4, sonic4):
        # the raw counter is >= truth by construction (§3.3 false positives
        # can only merge foreign subtrees in, never lose own tuples)
        for row in rows4[::31]:
            for length in (1, 2, 3):
                prefix = row[:length]
                assert sonic4.approx_count_prefix(prefix) >= len(
                    matching(rows4, prefix))

    def test_approx_equals_exact_without_sharing(self):
        # generous capacity: no spills, no shared buckets => counters exact
        rows = make_rows(4, 200, domain=12, seed=9)
        index = SonicIndex(4, SonicConfig.for_tuples(len(rows), overallocation=8.0))
        index.build(rows)
        for row in rows[::11]:
            for length in (1, 2, 3):
                prefix = row[:length]
                assert index.approx_count_prefix(prefix) == len(
                    matching(rows, prefix))


class TestIterNextValues:
    def test_root_values_are_distinct_first_components(self, rows4, sonic4):
        truth = sorted({row[0] for row in rows4})
        assert sorted(sonic4.iter_next_values(())) == truth

    def test_child_values_cover_truth(self, rows4, sonic4):
        # child enumeration may include rare foreign false positives but
        # must never miss a genuine child and never duplicate
        for row in rows4[::37]:
            for length in (1, 2, 3):
                prefix = row[:length]
                got = list(sonic4.iter_next_values(prefix))
                truth = {r[length] for r in rows4 if r[:length] == prefix}
                assert truth <= set(got)
                assert len(got) == len(set(got))

    def test_last_component_values(self, rows4, sonic4):
        row = rows4[0]
        prefix = row[:3]
        truth = sorted({r[3] for r in rows4 if r[:3] == prefix})
        assert sorted(sonic4.iter_next_values(prefix)) == truth

    def test_has_prefix(self, rows4, sonic4):
        assert sonic4.has_prefix(rows4[0][:2])
        assert not sonic4.has_prefix((31337,))
        assert sonic4.has_prefix(())
