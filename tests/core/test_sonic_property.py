"""Property-based tests for the Sonic index (hypothesis).

The invariant under test everywhere: a Sonic index over any tuple set
behaves exactly like the obvious set-of-tuples model for membership,
prefix enumeration and prefix counting.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SonicConfig, SonicIndex

_tuples3 = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12), st.integers(0, 12)),
    min_size=0, max_size=120,
)
_tuples2 = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)),
    min_size=0, max_size=120,
)


def _build(rows, arity, bucket_size=4, overallocation=1.5):
    config = SonicConfig.for_tuples(max(len(rows), 1), bucket_size=bucket_size,
                                    overallocation=overallocation)
    index = SonicIndex(arity, config)
    index.build(rows)
    return index


@settings(max_examples=60, deadline=None)
@given(rows=_tuples3)
def test_membership_matches_set_model(rows):
    model = set(rows)
    index = _build(rows, 3)
    assert len(index) == len(model)
    for row in model:
        assert index.contains(row)
    assert sorted(index) == sorted(model)


@settings(max_examples=60, deadline=None)
@given(rows=_tuples3, probe=st.tuples(st.integers(0, 12), st.integers(0, 12),
                                      st.integers(0, 12)))
def test_absent_tuples_not_found(rows, probe):
    model = set(rows)
    index = _build(rows, 3)
    assert index.contains(probe) == (probe in model)


@settings(max_examples=60, deadline=None)
@given(rows=_tuples3, length=st.integers(0, 3), pick=st.integers(0, 10**6))
def test_prefix_lookup_matches_model(rows, length, pick):
    model = set(rows)
    index = _build(rows, 3)
    if model:
        anchor = sorted(model)[pick % len(model)]
        prefix = anchor[:length]
    else:
        prefix = (0, 0, 0)[:length]
    truth = sorted(r for r in model if r[:length] == prefix)
    assert sorted(index.prefix_lookup(prefix)) == truth
    assert index.count_prefix(prefix) == len(truth)


@settings(max_examples=60, deadline=None)
@given(rows=_tuples2)
def test_arity_two_model(rows):
    model = set(rows)
    index = _build(rows, 2)
    assert sorted(index) == sorted(model)
    firsts = sorted({r[0] for r in model})
    assert sorted(index.iter_next_values(())) == firsts
    for first in firsts[:5]:
        truth = sorted(r for r in model if r[0] == first)
        assert sorted(index.prefix_lookup((first,))) == truth


@settings(max_examples=40, deadline=None)
@given(rows=_tuples3, extra=_tuples3)
def test_incremental_inserts_equal_bulk_build(rows, extra):
    combined = rows + extra
    bulk = _build(combined, 3, overallocation=2.0)
    incremental = SonicIndex(
        3, SonicConfig.for_tuples(max(len(combined), 1), bucket_size=4,
                                  overallocation=2.0))
    for row in combined:
        incremental.insert(row)
    assert sorted(bulk) == sorted(incremental)
    assert len(bulk) == len(incremental)


@settings(max_examples=40, deadline=None)
@given(rows=_tuples3, seed=st.integers(0, 2**32 - 1))
def test_hash_seed_does_not_change_semantics(rows, seed):
    config = SonicConfig.for_tuples(max(len(rows), 1), bucket_size=4, seed=seed)
    index = SonicIndex(3, config)
    index.build(rows)
    assert sorted(index) == sorted(set(rows))
