"""IndexAdapter: total-order permutation and prefix extraction."""

import pytest

from repro.core import SonicConfig, SonicIndex
from repro.core.adapter import IndexAdapter
from repro.errors import SchemaError
from repro.indexes import BPlusTree
from repro.storage import Relation


@pytest.fixture
def relation():
    return Relation("R", ("a", "b", "c"),
                    [(1, 10, 100), (1, 20, 200), (2, 10, 300)])


class TestAdapterConstruction:
    def test_order_must_cover_relation(self, relation):
        with pytest.raises(SchemaError):
            IndexAdapter(relation, BPlusTree(3), ("a", "b"))

    def test_arity_mismatch_rejected(self, relation):
        with pytest.raises(SchemaError):
            IndexAdapter(relation, BPlusTree(2), ("a", "b", "c"))

    def test_attribute_order_follows_total_order(self, relation):
        adapter = IndexAdapter(relation, BPlusTree(3), ("c", "x", "a", "b"))
        assert adapter.attribute_order == ("c", "a", "b")


class TestBuildAndLookup:
    def test_identity_order(self, relation):
        adapter = IndexAdapter(relation, BPlusTree(3), ("a", "b", "c"))
        adapter.build()
        assert sorted(adapter.index) == sorted(relation.rows)

    def test_permuted_order(self, relation):
        adapter = IndexAdapter(relation, BPlusTree(3), ("c", "a", "b"))
        adapter.build()
        expected = sorted((c, a, b) for (a, b, c) in relation.rows)
        assert sorted(adapter.index) == expected

    def test_sonic_through_adapter(self, relation):
        index = SonicIndex(3, SonicConfig.for_tuples(3))
        adapter = IndexAdapter(relation, index, ("b", "c", "a"))
        adapter.build()
        assert adapter.index.contains((10, 100, 1))


class TestPrefixExtraction:
    def test_extracts_contiguous_bound_prefix(self, relation):
        adapter = IndexAdapter(relation, BPlusTree(3), ("c", "a", "b"))
        assert adapter.extract_prefix({"c": 100}) == (100,)
        assert adapter.extract_prefix({"c": 100, "a": 1}) == (100, 1)
        assert adapter.extract_prefix({"c": 100, "a": 1, "b": 10}) == (100, 1, 10)

    def test_stops_at_first_unbound(self, relation):
        adapter = IndexAdapter(relation, BPlusTree(3), ("c", "a", "b"))
        # 'a' unbound: 'b' cannot contribute even though bound
        assert adapter.extract_prefix({"c": 100, "b": 10}) == (100,)
        assert adapter.extract_prefix({"b": 10}) == ()

    def test_position_of(self, relation):
        adapter = IndexAdapter(relation, BPlusTree(3), ("c", "a", "b"))
        assert adapter.position_of("c") == 0
        assert adapter.position_of("b") == 2
        with pytest.raises(SchemaError):
            adapter.position_of("zz")

    def test_contains_binding_requires_full_cover(self, relation):
        adapter = IndexAdapter(relation, BPlusTree(3), ("a", "b", "c"))
        adapter.build()
        assert adapter.contains_binding({"a": 1, "b": 10, "c": 100})
        assert not adapter.contains_binding({"a": 1, "b": 10, "c": 999})
        with pytest.raises(SchemaError):
            adapter.contains_binding({"a": 1, "b": 10})
