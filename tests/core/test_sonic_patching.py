"""Sonic patch mechanism (§3.3): spills, patch bits/keys, forced patching."""

import pytest

from conftest import make_rows, matching
from repro.core import SonicConfig, SonicIndex
from repro.errors import ConfigurationError


def build_tight(rows, arity, overallocation=1.1, bucket_size=4):
    """A deliberately tight index that must spill and share buckets."""
    config = SonicConfig.for_tuples(len(rows), bucket_size=bucket_size,
                                    overallocation=overallocation)
    index = SonicIndex(arity, config)
    index.build(rows)
    return index


class TestPatchingUnderPressure:
    def test_tight_index_patches_but_stays_correct(self):
        rows = make_rows(3, 700, domain=40, seed=21)
        index = build_tight(rows, 3)
        stats = index.patch_stats()
        assert stats[1] > 0.0, "a tight build must have patched buckets"
        assert sorted(index) == rows
        for row in rows[::13]:
            assert index.contains(row)
            assert sorted(index.prefix_lookup(row[:1])) == matching(rows, row[:1])
            assert index.count_prefix(row[:2]) == len(matching(rows, row[:2]))

    def test_spill_flags_set_under_pressure(self):
        rows = make_rows(4, 600, domain=30, seed=22)
        index = build_tight(rows, 4)
        flags = [(level.spilled, level.shared) for level in index._levels[1:]]
        assert any(spilled or shared for spilled, shared in flags)

    def test_generous_index_barely_patches(self):
        rows = make_rows(3, 300, domain=500, seed=23)
        config = SonicConfig.for_tuples(len(rows), overallocation=8.0)
        index = SonicIndex(3, config)
        index.build(rows)
        assert index.patch_stats()[1] <= 0.15  # the paper quotes ~10%


class TestForcedPatching:
    """The §5.13 experiment: patch bits set artificially (Figs 10/12)."""

    def test_force_patch_fraction_counts(self):
        rows = make_rows(3, 300, domain=40, seed=24)
        index = SonicIndex(3, SonicConfig.for_tuples(len(rows)))
        index.build(rows)
        patched = index.force_patch_fraction(1, 0.5)
        assert patched == int(index._levels[1].num_buckets * 0.5)
        assert index.patch_stats()[1] >= 0.45

    def test_forced_patching_preserves_correctness(self):
        rows = make_rows(3, 400, domain=30, seed=25)
        index = SonicIndex(3, SonicConfig.for_tuples(len(rows)))
        index.build(rows)
        index.force_patch_fraction(1, 1.0)
        assert sorted(index) == rows
        for row in rows[::19]:
            assert index.contains(row)
            assert sorted(index.prefix_lookup(row[:2])) == matching(rows, row[:2])

    def test_force_patch_on_first_level_rejected(self):
        index = SonicIndex(3, SonicConfig(capacity=64))
        with pytest.raises(ConfigurationError):
            index.force_patch_fraction(0, 0.5)

    def test_force_patch_fraction_validated(self):
        index = SonicIndex(3, SonicConfig(capacity=64))
        with pytest.raises(ConfigurationError):
            index.force_patch_fraction(1, 1.5)

    def test_forced_patching_is_monotone(self):
        rows = make_rows(3, 200, domain=30, seed=26)
        index = SonicIndex(3, SonicConfig.for_tuples(len(rows)))
        index.build(rows)
        index.force_patch_fraction(1, 0.25)
        quarter = index.patch_stats()[1]
        index.force_patch_fraction(1, 0.75)
        assert index.patch_stats()[1] >= quarter


class TestPaperExample:
    """The Fig 3 walkthrough: <12,9,56,27>, <87,1,84,13>, <68,73,15,8>,
    <87,44,50,12> and overflow patching semantics."""

    def test_figure3_tuples(self):
        index = SonicIndex(4, SonicConfig(capacity=32, bucket_size=2))
        tuples = [(12, 9, 56, 27), (87, 1, 84, 13), (68, 73, 15, 8),
                  (87, 44, 50, 12)]
        for row in tuples:
            index.insert(row)
        assert len(index) == 4
        for row in tuples:
            assert index.contains(row)
        # prefix counters: 87 has two tuples below it
        assert index.count_prefix((87,)) == 2
        assert index.count_prefix((12,)) == 1
        assert sorted(index.prefix_lookup((87,))) == [(87, 1, 84, 13),
                                                      (87, 44, 50, 12)]
