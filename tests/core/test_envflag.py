"""The shared environment-knob parsing helpers (repro.core.envflag)."""

from __future__ import annotations

import pytest

from repro.core.envflag import env_flag, env_str, resolve_flag, resolve_str


class TestEnvFlag:
    @pytest.mark.parametrize("raw", ["", "0", "false", "no", "off",
                                     " FALSE ", "Off", "  0  "])
    def test_falsy_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TEST_FLAG", raw)
        assert env_flag("REPRO_TEST_FLAG") is False

    @pytest.mark.parametrize("raw", ["1", "true", "yes", "on", "anything"])
    def test_truthy_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TEST_FLAG", raw)
        assert env_flag("REPRO_TEST_FLAG") is True

    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_FLAG", raising=False)
        assert env_flag("REPRO_TEST_FLAG") is False
        assert env_flag("REPRO_TEST_FLAG", default=True) is True

    def test_empty_is_falsy_even_with_true_default(self, monkeypatch):
        # an explicitly-empty variable is a set-but-falsy spelling, not
        # "unset": the repo convention treats it as False
        monkeypatch.setenv("REPRO_TEST_FLAG", "")
        assert env_flag("REPRO_TEST_FLAG", default=True) is False


class TestResolveFlag:
    def test_explicit_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAG", "1")
        assert resolve_flag(False, "REPRO_TEST_FLAG") is False
        monkeypatch.setenv("REPRO_TEST_FLAG", "0")
        assert resolve_flag(True, "REPRO_TEST_FLAG") is True

    def test_none_falls_back_to_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAG", "yes")
        assert resolve_flag(None, "REPRO_TEST_FLAG") is True
        monkeypatch.delenv("REPRO_TEST_FLAG")
        assert resolve_flag(None, "REPRO_TEST_FLAG") is False


class TestEnvStr:
    def test_strips_and_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_OUT", "  /tmp/trace.json  ")
        assert env_str("REPRO_TEST_OUT") == "/tmp/trace.json"
        monkeypatch.setenv("REPRO_TEST_OUT", "   ")
        assert env_str("REPRO_TEST_OUT", default="fallback") == "fallback"
        monkeypatch.delenv("REPRO_TEST_OUT")
        assert env_str("REPRO_TEST_OUT") == ""

    def test_resolve_str_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_OUT", "/env/path")
        assert resolve_str("/explicit", "REPRO_TEST_OUT") == "/explicit"
        assert resolve_str(None, "REPRO_TEST_OUT") == "/env/path"
        assert resolve_str("", "REPRO_TEST_OUT") == "/env/path"


class TestExecutorIntegration:
    """join() resolves its knobs through these helpers (no drift)."""

    def test_debug_env_spellings_match_executor(self, monkeypatch):
        from repro.joins.executor import _debug_enabled, _profile_enabled

        monkeypatch.setenv("REPRO_DEBUG", "off")
        assert _debug_enabled(None) is False
        monkeypatch.setenv("REPRO_DEBUG", "1")
        assert _debug_enabled(None) is True
        assert _debug_enabled(False) is False

        monkeypatch.setenv("REPRO_PROFILE", "no")
        assert _profile_enabled(None) is False
        monkeypatch.setenv("REPRO_PROFILE", "on")
        assert _profile_enabled(None) is True
