"""Parallel Sonic build: concurrency correctness and contention profile."""

import pytest

from conftest import make_rows, matching
from repro.core import ParallelSonicBuilder, SonicConfig, SonicIndex, parallel_build
from repro.errors import ConfigurationError


class TestParallelBuildCorrectness:
    @pytest.mark.parametrize("threads", [1, 2, 4, 8])
    def test_parallel_equals_sequential(self, threads):
        rows = make_rows(3, 900, domain=45, seed=51)
        sequential = SonicIndex(3, SonicConfig.for_tuples(len(rows)))
        sequential.build(rows)

        index, profile = parallel_build(
            rows, arity=3, num_threads=threads,
            config=SonicConfig.for_tuples(len(rows)))
        assert len(index) == len(sequential)
        assert sorted(index) == sorted(sequential)
        assert profile["threads"] == float(threads)

    def test_parallel_prefix_queries_correct(self):
        rows = make_rows(4, 600, domain=25, seed=52)
        index, _ = parallel_build(rows, arity=4, num_threads=4,
                                  config=SonicConfig.for_tuples(len(rows)))
        for row in rows[::29]:
            assert sorted(index.prefix_lookup(row[:2])) == matching(rows, row[:2])
            assert index.count_prefix(row[:1]) == len(matching(rows, row[:1]))

    def test_duplicate_rows_across_threads(self):
        # every thread gets the same rows: the index must still dedupe
        rows = make_rows(3, 150, domain=30, seed=53) * 4
        index, _ = parallel_build(rows, arity=3, num_threads=4,
                                  config=SonicConfig.for_tuples(len(set(rows))))
        assert len(index) == len(set(rows))


class TestBuilderConfiguration:
    def test_zero_threads_rejected(self):
        index = SonicIndex(3, SonicConfig(capacity=64))
        with pytest.raises(ConfigurationError):
            ParallelSonicBuilder(index, num_threads=0)

    def test_contention_profile_fields(self):
        rows = make_rows(3, 200, domain=40, seed=54)
        index = SonicIndex(3, SonicConfig.for_tuples(len(rows)))
        builder = ParallelSonicBuilder(index, num_threads=2, granularity=512)
        builder.build(rows)
        profile = builder.contention_profile()
        assert profile["acquisitions"] >= len(rows)
        assert profile["granularity"] == 512.0

    def test_capacity_error_propagates_from_workers(self):
        rows = make_rows(2, 300, domain=5000, seed=55)
        index = SonicIndex(2, SonicConfig(capacity=64, bucket_size=8))
        builder = ParallelSonicBuilder(index, num_threads=4)
        with pytest.raises(Exception):
            builder.build(rows)
