"""Hypergraph tests."""

import pytest

from repro.errors import QueryError
from repro.planner import Hypergraph, parse_query


@pytest.fixture
def triangle():
    return Hypergraph.from_query(parse_query("R(a,b), S(b,c), T(c,a)"))


class TestConstruction:
    def test_from_query(self, triangle):
        assert set(triangle.vertices) == {"a", "b", "c"}
        assert triangle.edges["R"] == frozenset({"a", "b"})

    def test_uncovered_vertex_rejected(self):
        with pytest.raises(QueryError):
            Hypergraph(["a", "b"], {"R": ["a"]})

    def test_unknown_vertex_in_edge_rejected(self):
        with pytest.raises(QueryError):
            Hypergraph(["a"], {"R": ["a", "zz"]})


class TestStructure:
    def test_edges_with(self, triangle):
        assert sorted(triangle.edges_with("a")) == ["R", "T"]
        assert triangle.degree("b") == 2

    def test_is_edge_cover(self, triangle):
        assert triangle.is_edge_cover(["R", "S"])
        assert triangle.is_edge_cover(["R", "S", "T"])
        assert not triangle.is_edge_cover(["R"])

    def test_connected(self, triangle):
        assert triangle.is_connected()
        split = Hypergraph(["a", "b", "x", "y"],
                           {"R": ["a", "b"], "S": ["x", "y"]})
        assert not split.is_connected()

    def test_single_edge_cover(self, triangle):
        assert not triangle.covered_by_single_edge()
        wide = Hypergraph(["a", "b"], {"R": ["a", "b"], "S": ["a"]})
        assert wide.covered_by_single_edge()


class TestRestriction:
    def test_restricted_to(self, triangle):
        sub = triangle.restricted_to(["a", "b"])
        assert set(sub.vertices) == {"a", "b"}
        assert sub.edges["R"] == frozenset({"a", "b"})
        assert sub.edges["S"] == frozenset({"b"})
        assert sub.edges["T"] == frozenset({"a"})

    def test_restriction_drops_disjoint_edges(self):
        graph = Hypergraph(["a", "b", "c"],
                           {"R": ["a", "b"], "S": ["c"]})
        sub = graph.restricted_to(["a", "b"])
        assert "S" not in sub.edges
