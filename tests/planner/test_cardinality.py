"""Statistics and join-size estimation tests."""

import pytest

from repro.planner import Statistics, estimate_join_size
from repro.storage import Relation


@pytest.fixture
def stats():
    r = Relation("R", ("a", "b"), [(i, i % 5) for i in range(100)])
    s = Relation("S", ("b", "c"), [(i % 5, i) for i in range(50)])
    return Statistics.collect([r, s])


class TestStatistics:
    def test_cardinalities(self, stats):
        assert stats.cardinality("R") == 100
        assert stats.cardinality("S") == 50
        assert stats.cardinalities() == {"R": 100, "S": 50}

    def test_distinct_counts(self, stats):
        assert stats.distinct("R", "a") == 100
        assert stats.distinct("R", "b") == 5
        assert stats.distinct("S", "b") == 5

    def test_unknown_distinct_is_floor_one(self, stats):
        assert stats.distinct("R", "zz") == 1
        assert stats.distinct("nope", "a") == 1


class TestEstimation:
    def test_textbook_formula(self, stats):
        # |R ⋈ S| = 100*50 / max(5,5) = 1000
        estimate = estimate_join_size(100, 50, "R", "S", ["b"], stats)
        assert estimate == pytest.approx(1000)

    def test_cross_product_when_no_join_attrs(self, stats):
        assert estimate_join_size(100, 50, "R", "S", [], stats) == 5000

    def test_multi_attribute_divides_twice(self, stats):
        estimate = estimate_join_size(100, 50, "R", "S", ["b", "c"], stats)
        assert estimate < estimate_join_size(100, 50, "R", "S", ["b"], stats)

    def test_override_distinct(self, stats):
        with_override = estimate_join_size(
            100, 50, "R", "S", ["b"], stats,
            left_distinct_override={"b": 50})
        assert with_override == pytest.approx(100 * 50 / 50)
