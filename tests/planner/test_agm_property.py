"""Property-based tests for the AGM machinery on random queries."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.planner import (
    Hypergraph,
    agm_bound,
    fractional_cover,
    integral_cover_bound,
    verify_cover,
)


@st.composite
def random_hypergraphs(draw):
    """Connected-ish random hypergraphs with 2-5 edges over 2-6 vertices."""
    num_vertices = draw(st.integers(2, 6))
    vertices = [f"v{i}" for i in range(num_vertices)]
    num_edges = draw(st.integers(2, 5))
    edges = {}
    for e in range(num_edges):
        size = draw(st.integers(1, num_vertices))
        members = draw(st.permutations(vertices))[:size]
        edges[f"R{e}"] = list(members)
    # guarantee full coverage: one edge over everything
    edges["Rall"] = vertices
    sizes = {name: draw(st.integers(1, 10000)) for name in edges}
    return Hypergraph(vertices, edges), sizes


@settings(max_examples=60, deadline=None)
@given(data=random_hypergraphs())
def test_cover_is_feasible_and_bound_positive(data):
    graph, sizes = data
    cover = fractional_cover(graph, sizes)
    assert verify_cover(graph, cover.weights)
    assert cover.bound >= 0


@settings(max_examples=60, deadline=None)
@given(data=random_hypergraphs())
def test_fractional_never_exceeds_integral(data):
    graph, sizes = data
    fractional = agm_bound(graph, sizes)
    integral = integral_cover_bound(graph, sizes)
    assert fractional <= integral * (1 + 1e-6)


@settings(max_examples=40, deadline=None)
@given(data=random_hypergraphs(), factor=st.integers(2, 10))
def test_bound_monotone_in_relation_sizes(data, factor):
    graph, sizes = data
    grown = {name: size * factor for name, size in sizes.items()}
    assert agm_bound(graph, grown) >= agm_bound(graph, sizes) - 1e-6


@settings(max_examples=40, deadline=None)
@given(data=random_hypergraphs())
def test_single_covering_edge_caps_bound(data):
    graph, sizes = data
    # Rall covers every vertex, so weight 1 on it alone is feasible:
    # the optimal bound can never exceed |Rall|
    assert agm_bound(graph, sizes) <= sizes["Rall"] * (1 + 1e-9)
