"""AGM bound / fractional edge cover tests (§2.1–2.2)."""

import math

import pytest

from repro.errors import QueryError
from repro.planner import (
    Hypergraph,
    agm_bound,
    cycle_query,
    fractional_cover,
    integral_cover_bound,
    parse_query,
    verify_cover,
)


def hypergraph(text):
    return Hypergraph.from_query(parse_query(text))


class TestTriangle:
    """The paper's worked example: |Q| <= n^{3/2} with u = (1/2,1/2,1/2)."""

    def test_optimal_weights(self):
        cover = fractional_cover(hypergraph("R(a,b), S(b,c), T(c,a)"),
                                 {"R": 1000, "S": 1000, "T": 1000})
        for weight in cover.weights.values():
            assert weight == pytest.approx(0.5, abs=1e-6)

    def test_bound_is_n_to_three_halves(self):
        n = 1000
        bound = agm_bound(hypergraph("R(a,b), S(b,c), T(c,a)"),
                          {"R": n, "S": n, "T": n})
        assert bound == pytest.approx(n ** 1.5, rel=1e-6)

    def test_fractional_beats_integral(self):
        n = 1000
        graph = hypergraph("R(a,b), S(b,c), T(c,a)")
        sizes = {"R": n, "S": n, "T": n}
        fractional = agm_bound(graph, sizes)
        integral = integral_cover_bound(graph, sizes)
        assert integral == pytest.approx(n * n)
        assert fractional < integral


class TestGeneralQueries:
    def test_chain_query_bound(self):
        # acyclic chain R(a,b) S(b,c): cover weights (1,1) -> n*m... the LP
        # actually picks both edges at weight 1 since each has a private
        # vertex
        bound = agm_bound(hypergraph("R(a,b), S(b,c)"), {"R": 100, "S": 50})
        assert bound == pytest.approx(100 * 50, rel=1e-6)

    def test_single_relation(self):
        bound = agm_bound(hypergraph("R(a,b)"), {"R": 77})
        assert bound == pytest.approx(77)

    def test_five_cycle_bound(self):
        # odd cycle of length 5: fractional cover weight 1/2 per edge,
        # bound n^{5/2}
        n = 100
        graph = Hypergraph.from_query(cycle_query(5))
        sizes = {f"E{i}": n for i in range(1, 6)}
        assert agm_bound(graph, sizes) == pytest.approx(n ** 2.5, rel=1e-6)

    def test_empty_relation_pulls_bound_down(self):
        bound = agm_bound(hypergraph("R(a,b), S(b,c), T(c,a)"),
                          {"R": 0, "S": 1000, "T": 1000})
        assert bound <= 1000  # an empty edge caps the product

    def test_missing_cardinality_rejected(self):
        with pytest.raises(QueryError):
            fractional_cover(hypergraph("R(a,b)"), {})


class TestCoverVerification:
    def test_lp_solution_is_feasible(self):
        graph = hypergraph("R(a,b,c), S(c,d), T(d,a)")
        cover = fractional_cover(graph, {"R": 500, "S": 400, "T": 300})
        assert verify_cover(graph, cover.weights)

    def test_infeasible_weights_detected(self):
        graph = hypergraph("R(a,b), S(b,c), T(c,a)")
        assert not verify_cover(graph, {"R": 0.1, "S": 0.1, "T": 0.1})

    def test_log_bound_consistent(self):
        graph = hypergraph("R(a,b), S(b,c), T(c,a)")
        cover = fractional_cover(graph, {"R": 100, "S": 200, "T": 300})
        assert cover.bound == pytest.approx(math.exp(cover.log_bound))
