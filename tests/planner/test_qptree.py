"""QP-tree and total order tests (§2.3.1)."""

from repro.planner import (
    build_qp_tree,
    cycle_query,
    is_compatible,
    order_heuristic_cardinality,
    parse_query,
    total_order,
)


class TestQPTree:
    def test_root_universe_is_all_attributes(self):
        query = parse_query("R(a,b), S(b,c), T(c,a)")
        root = build_qp_tree(query)
        assert root.universe == frozenset({"a", "b", "c"})
        assert root.edge == "R"

    def test_children_partition_universe(self):
        query = parse_query("R(a,b), S(b,c), T(c,a)")
        root = build_qp_tree(query)
        if root.right is not None:
            assert root.right.universe <= root.attributes
        if root.left is not None:
            assert root.left.universe.isdisjoint(root.attributes)

    def test_paper_fig2_query_builds(self):
        query = parse_query(
            "RA(a,b,d,e), RB(a,d,f,c), RC(g,c,h,i), RD(a,b,d,h), RE(f,c,e,h)")
        root = build_qp_tree(query)
        assert root.universe == frozenset("abdefghic")


class TestTotalOrder:
    def test_is_permutation_of_attributes(self):
        for text in ("R(a,b), S(b,c), T(c,a)",
                     "R(a,b,c), S(c,d), T(d,e,a)",
                     "RA(a,b,d,e), RB(a,d,f,c), RC(g,c,h,i), RD(a,b,d,h), "
                     "RE(f,c,e,h)"):
            query = parse_query(text)
            order = total_order(query)
            assert sorted(order) == sorted(query.attributes)

    def test_deterministic(self):
        query = cycle_query(4)
        assert total_order(query) == total_order(query)

    def test_fig2_query_order_valid(self):
        # the paper's Fig 2 query: our emission order differs from the
        # paper's γ (the intra-group order is unspecified) but must be a
        # complete, deterministic permutation
        query = parse_query(
            "RA(a,b,d,e), RB(a,d,f,c), RC(g,c,h,i), RD(a,b,d,h), RE(f,c,e,h)")
        order = total_order(query)
        assert sorted(order) == sorted(query.attributes)
        assert order == total_order(query)

    def test_triangle_order_is_compatible(self):
        query = parse_query("R(a,b), S(b,c), T(c,a)")
        assert is_compatible(total_order(query), query)


class TestCompatibility:
    def test_suffix_detection(self):
        query = parse_query("R(a,b), S(b,c)")
        assert is_compatible(("a", "b", "c"), query)     # S is a suffix
        assert is_compatible(("c", "a", "b"), query)     # R is a suffix
        assert not is_compatible(("b", "a", "c"), query)  # neither


class TestHeuristicOrder:
    def test_orders_by_min_relation_size(self):
        query = parse_query("R(a,b), S(b,c)")
        order = order_heuristic_cardinality(query, {"R": 10, "S": 10000})
        # attributes of the small relation come first
        assert order.index("a") < order.index("c")

    def test_is_permutation(self):
        query = cycle_query(5)
        order = order_heuristic_cardinality(
            query, {f"E{i}": 10 * i for i in range(1, 6)})
        assert sorted(order) == sorted(query.attributes)


class TestConnectivityOrder:
    """The execution-default order (join keys first, always connected)."""

    def test_star_query_binds_hub_first(self):
        from repro.planner.qptree import connectivity_order

        query = parse_query("title(t,kind,year), ci(t,person), mk(t,kw)")
        order = connectivity_order(query)
        assert order[0] == "t"  # degree 3, everything else degree 1
        assert sorted(order) == sorted(query.attributes)

    def test_order_stays_connected(self):
        from repro.planner.qptree import connectivity_order

        query = parse_query("R(a,b), S(b,c), T(c,d), U(d,e)")
        order = connectivity_order(query)
        bound_atoms = set()
        for position, attribute in enumerate(order):
            atoms = {atom.alias for atom in query.atoms_with(attribute)}
            if position > 0:
                assert atoms & bound_atoms, (order, attribute)
            bound_atoms |= atoms

    def test_deterministic(self):
        from repro.planner.qptree import connectivity_order

        query = cycle_query(5)
        assert connectivity_order(query) == connectivity_order(query)
        assert sorted(connectivity_order(query)) == sorted(query.attributes)

    def test_join_accepts_explicit_qptree_order(self):
        # the paper's raw QP-tree order remains usable via order=
        from repro.joins import join
        from repro.storage import Relation

        edges = Relation("E", ("s", "d"), [(0, 1), (1, 2), (2, 0)])
        query = parse_query("E1=E(a,b), E2=E(b,c), E3=E(c,a)")
        source = {"E1": edges, "E2": edges, "E3": edges}
        default = join(query, source).count
        qp = join(query, source, order=total_order(query)).count
        assert default == qp == 3
