"""Query model and parser tests."""

import pytest

from repro.errors import QueryError
from repro.planner import Atom, JoinQuery, clique_query, cycle_query, parse_query


class TestAtom:
    def test_basic(self):
        atom = Atom("R", ("a", "b"))
        assert atom.alias == "R"
        assert atom.arity == 2

    def test_alias(self):
        atom = Atom("E", ("a", "b"), alias="E1")
        assert str(atom) == "E1=E(a, b)"

    def test_no_attributes_rejected(self):
        with pytest.raises(QueryError):
            Atom("R", ())

    def test_repeated_attribute_rejected(self):
        with pytest.raises(QueryError):
            Atom("R", ("a", "a"))


class TestJoinQuery:
    def test_attribute_order_is_first_appearance(self):
        query = JoinQuery([Atom("R", ("b", "a")), Atom("S", ("a", "c"))])
        assert query.attributes == ("b", "a", "c")

    def test_duplicate_aliases_rejected(self):
        with pytest.raises(QueryError):
            JoinQuery([Atom("R", ("a",)), Atom("R", ("b",))])

    def test_empty_query_rejected(self):
        with pytest.raises(QueryError):
            JoinQuery([])

    def test_atoms_with(self):
        query = parse_query("R(a,b), S(b,c), T(c,a)")
        assert [a.alias for a in query.atoms_with("b")] == ["R", "S"]

    def test_connectivity_check(self):
        connected = parse_query("R(a,b), S(b,c)")
        connected.validate_connected()
        disconnected = parse_query("R(a,b), S(x,y)")
        with pytest.raises(QueryError):
            disconnected.validate_connected()


class TestParser:
    def test_simple(self):
        query = parse_query("R(a, b), S(b, c)")
        assert len(query) == 2
        assert query.atoms[0].attributes == ("a", "b")

    def test_aliases(self):
        query = parse_query("E1=E(a,b), E2=E(b,c)")
        assert query.atoms[0].relation == "E"
        assert query.atoms[0].alias == "E1"

    def test_garbage_rejected(self):
        with pytest.raises(QueryError):
            parse_query("not a query")
        with pytest.raises(QueryError):
            parse_query("R(a,b")
        with pytest.raises(QueryError):
            parse_query("")


class TestQueryBuilders:
    def test_triangle(self):
        query = cycle_query(3)
        assert len(query) == 3
        assert query.attributes == ("v0", "v1", "v2")
        # each consecutive pair shares exactly one attribute
        for left, right in zip(query.atoms, query.atoms[1:]):
            shared = set(left.attributes) & set(right.attributes)
            assert len(shared) == 1

    def test_pentagon(self):
        query = cycle_query(5)
        assert len(query) == 5
        assert len(query.attributes) == 5

    def test_cycle_too_short(self):
        with pytest.raises(QueryError):
            cycle_query(1)

    def test_clique(self):
        query = clique_query(4)
        assert len(query) == 6  # C(4,2)
        assert len(query.attributes) == 4
