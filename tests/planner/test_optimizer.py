"""Join ordering and the hybrid binary/WCOJ chooser."""

from repro.planner import (
    HybridOptimizer,
    Hypergraph,
    Statistics,
    cycle_query,
    greedy_join_order,
    is_alpha_acyclic,
    parse_query,
)
from repro.storage import Relation


def make_stats(sizes: dict[str, int], arities: dict[str, tuple]):
    relations = []
    for name, size in sizes.items():
        attrs = arities[name]
        rows = [tuple((i + j) % max(size, 1) for j in range(len(attrs)))
                for i in range(size)]
        relations.append(Relation(name, attrs, set(rows)))
    return Statistics.collect(relations)


class TestGreedyOrder:
    def test_starts_with_smallest(self):
        query = parse_query("R(a,b), S(b,c), T(c,d)")
        stats = make_stats({"R": 1000, "S": 10, "T": 500},
                           {"R": ("a", "b"), "S": ("b", "c"), "T": ("c", "d")})
        order = greedy_join_order(query, stats)
        assert order[0] == "S"
        assert sorted(order) == ["R", "S", "T"]

    def test_prefers_connected_extensions(self):
        query = parse_query("R(a,b), S(b,c), T(x,y), U(c,x)")
        stats = make_stats(
            {"R": 10, "S": 100, "T": 5, "U": 100},
            {"R": ("a", "b"), "S": ("b", "c"), "T": ("x", "y"),
             "U": ("c", "x")})
        order = greedy_join_order(query, stats)
        # the query is connected, so every step after the first must share
        # an attribute with what is already bound (no cross products)
        bound = set(query.attributes_of(order[0]))
        for alias in order[1:]:
            attrs = set(query.attributes_of(alias))
            assert attrs & bound, (order, alias)
            bound |= attrs


class TestAcyclicity:
    def test_triangle_is_cyclic(self):
        graph = Hypergraph.from_query(cycle_query(3))
        assert not is_alpha_acyclic(graph)

    def test_chain_is_acyclic(self):
        graph = Hypergraph.from_query(parse_query("R(a,b), S(b,c), T(c,d)"))
        assert is_alpha_acyclic(graph)

    def test_star_is_acyclic(self):
        graph = Hypergraph.from_query(
            parse_query("F(t,x), A(t,p), B(t,k), C(t,m)"))
        assert is_alpha_acyclic(graph)

    def test_contained_edge_is_ear(self):
        graph = Hypergraph.from_query(parse_query("R(a,b,c), S(a,b)"))
        assert is_alpha_acyclic(graph)

    def test_five_cycle_is_cyclic(self):
        graph = Hypergraph.from_query(cycle_query(5))
        assert not is_alpha_acyclic(graph)


class TestHybridOptimizer:
    def test_cyclic_query_goes_wcoj(self):
        query = cycle_query(3)
        stats = make_stats({f"E{i}": 100 for i in (1, 2, 3)},
                           {"E1": ("v0", "v1"), "E2": ("v1", "v2"),
                            "E3": ("v2", "v0")})
        choice = HybridOptimizer().choose(query, stats)
        assert choice.algorithm == "wcoj"
        assert "cyclic" in choice.reason

    def test_star_query_goes_binary(self):
        query = parse_query("F(t,x), A(t,p), B(t,k)")
        stats = make_stats({"F": 100, "A": 100, "B": 100},
                           {"F": ("t", "x"), "A": ("t", "p"), "B": ("t", "k")})
        choice = HybridOptimizer().choose(query, stats)
        assert choice.algorithm == "binary"

    def test_single_atom_is_a_scan(self):
        query = parse_query("R(a,b)")
        stats = make_stats({"R": 10}, {"R": ("a", "b")})
        assert HybridOptimizer().choose(query, stats).algorithm == "binary"

    def test_choice_carries_bounds(self):
        query = cycle_query(3)
        stats = make_stats({f"E{i}": 100 for i in (1, 2, 3)},
                           {"E1": ("v0", "v1"), "E2": ("v1", "v2"),
                            "E3": ("v2", "v0")})
        choice = HybridOptimizer().choose(query, stats)
        assert choice.agm_bound > 0
        assert choice.binary_estimate > 0
