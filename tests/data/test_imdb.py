"""Synthetic IMDB / JOB-light tests."""

from repro.data import job_light_queries, make_imdb
from repro.joins import join
from repro.planner import Hypergraph
from repro.planner.optimizer import is_alpha_acyclic


class TestCatalog:
    def test_schema_shape(self):
        catalog = make_imdb(300, seed=1)
        assert catalog.get("title").schema.attributes == ("t", "kind", "year")
        for name in ("cast_info", "movie_info", "movie_keyword",
                     "movie_companies", "movie_info_idx"):
            assert "t" in catalog.get(name).schema

    def test_fanouts_scale_with_titles(self):
        catalog = make_imdb(400, seed=2)
        assert len(catalog.get("cast_info")) > len(catalog.get("title"))

    def test_fk_skew(self):
        catalog = make_imdb(400, seed=3)
        column = catalog.get("cast_info").column("t")
        counts = sorted((column.count(v) for v in set(column)), reverse=True)
        assert counts[0] > 4 * max(counts[len(counts) // 2], 1)

    def test_deterministic(self):
        a = make_imdb(200, seed=4)
        b = make_imdb(200, seed=4)
        assert sorted(a.get("title")) == sorted(b.get("title"))


class TestJobLightQueries:
    def test_workload_covers_combinations(self):
        catalog = make_imdb(200, seed=5)
        queries = job_light_queries(catalog, seed=6, max_satellites=2)
        # 5 choose 1 + 5 choose 2 = 15
        assert len(queries) == 15
        assert len({q.name for q in queries}) == 15

    def test_queries_are_acyclic_stars(self):
        catalog = make_imdb(150, seed=7)
        for job in job_light_queries(catalog, seed=8, max_satellites=3):
            graph = Hypergraph.from_query(job.query)
            assert is_alpha_acyclic(graph), job.name

    def test_queries_execute_consistently(self):
        catalog = make_imdb(150, seed=9)
        queries = job_light_queries(catalog, seed=10, max_satellites=2)
        for job in queries[:4]:
            binary = join(job.query, job.relations, algorithm="binary")
            generic = join(job.query, job.relations, algorithm="generic",
                           index="btree")
            assert binary.count == generic.count, job.name

    def test_filters_reduce_inputs(self):
        catalog = make_imdb(300, seed=11)
        job = job_light_queries(catalog, seed=12, max_satellites=1)[0]
        assert len(job.relations["title"]) < len(catalog.get("title"))
