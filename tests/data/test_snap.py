"""Synthetic SNAP stand-in tests."""

import pytest

from repro.data import DATASETS, dataset_summary, load_snap_dataset
from repro.data.graphs import triangle_count_truth
from repro.errors import ConfigurationError


class TestDatasets:
    def test_all_datasets_load(self):
        for name in DATASETS:
            relation = load_snap_dataset(name, scale=0.3, seed=1)
            assert len(relation) > 0
            assert relation.arity == 2

    def test_deterministic(self):
        a = load_snap_dataset("facebook", scale=0.3, seed=2)
        b = load_snap_dataset("facebook", scale=0.3, seed=2)
        assert sorted(a) == sorted(b)

    def test_scale_changes_size(self):
        small = load_snap_dataset("wikivote", scale=0.2, seed=3)
        large = load_snap_dataset("wikivote", scale=0.6, seed=3)
        assert len(large) > len(small)

    def test_facebook_symmetric(self):
        relation = load_snap_dataset("facebook", scale=0.3, seed=4)
        present = set(relation.rows)
        assert all((dst, src) in present for src, dst in present)

    def test_directed_datasets_not_fully_symmetric(self):
        relation = load_snap_dataset("epinions", scale=0.3, seed=5)
        present = set(relation.rows)
        asymmetric = sum(1 for s, d in present if (d, s) not in present)
        assert asymmetric > 0

    def test_relative_sizes_preserved(self):
        summary = {row["dataset"]: row["edges"]
                   for row in dataset_summary(scale=0.4, seed=6)}
        assert summary["twitter"] > summary["epinions"] > summary["wikivote"]

    def test_social_graphs_have_triangles(self):
        relation = load_snap_dataset("facebook", scale=0.25, seed=7)
        assert triangle_count_truth(relation) > 0

    def test_unknown_dataset(self):
        with pytest.raises(ConfigurationError):
            load_snap_dataset("friendster")

    def test_bad_scale(self):
        with pytest.raises(ConfigurationError):
            load_snap_dataset("facebook", scale=0)
