"""Zipf generator tests."""

import numpy as np
import pytest

from repro.data import ZipfGenerator, zipf_columns
from repro.errors import ConfigurationError


class TestZipfGenerator:
    def test_uniform_when_alpha_zero(self):
        generator = ZipfGenerator(1000, alpha=0.0, seed=1)
        samples = generator.sample(20000)
        counts = np.bincount(samples, minlength=1000)
        # uniform: the heaviest value should not dominate
        assert counts.max() < 5 * counts.mean()

    def test_skew_concentrates_mass(self):
        uniform = ZipfGenerator(1000, alpha=0.0, seed=2).sample(20000)
        skewed = ZipfGenerator(1000, alpha=1.2, seed=2).sample(20000)
        top_uniform = np.bincount(uniform, minlength=1000).max()
        top_skewed = np.bincount(skewed, minlength=1000).max()
        assert top_skewed > 5 * top_uniform

    def test_alpha_orders_distinct_counts(self):
        distincts = []
        for alpha in (0.0, 0.5, 1.0, 1.5):
            samples = ZipfGenerator(5000, alpha=alpha, seed=3).sample(5000)
            distincts.append(len(set(samples.tolist())))
        assert distincts == sorted(distincts, reverse=True)

    def test_domain_respected(self):
        samples = ZipfGenerator(50, alpha=0.7, seed=4).sample(5000)
        assert samples.min() >= 0
        assert samples.max() < 50

    def test_deterministic(self):
        a = ZipfGenerator(100, alpha=0.9, seed=5).sample(100)
        b = ZipfGenerator(100, alpha=0.9, seed=5).sample(100)
        assert (a == b).all()

    def test_shuffle_decorrelates_magnitude(self):
        # with shuffling, the heaviest value is (almost surely) not 0
        generator = ZipfGenerator(1000, alpha=1.5, seed=6, shuffle=True)
        samples = generator.sample(5000)
        heaviest = np.bincount(samples, minlength=1000).argmax()
        unshuffled = ZipfGenerator(1000, alpha=1.5, seed=6, shuffle=False)
        assert np.bincount(unshuffled.sample(5000), minlength=1000).argmax() == 0
        assert heaviest != 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ZipfGenerator(0)
        with pytest.raises(ConfigurationError):
            ZipfGenerator(10, alpha=-1)


class TestZipfColumns:
    def test_columns_independent(self):
        left, right = zipf_columns(2000, 2, 100, alpha=0.0, seed=7)
        correlation = np.corrcoef(left, right)[0, 1]
        assert abs(correlation) < 0.1
