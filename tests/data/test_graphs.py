"""Graph generator and oracle tests."""

import pytest

from repro.data import (
    barabasi_albert_graph,
    cycle_count_truth,
    edges_relation,
    erdos_renyi_graph,
    powerlaw_cluster_graph,
    random_edge_relation,
    triangle_count_truth,
)
from repro.errors import ConfigurationError
from repro.storage import Relation


class TestEdgesRelation:
    def test_undirected_symmetrized(self):
        graph = erdos_renyi_graph(30, 0.2, seed=1)
        relation = edges_relation(graph)
        present = set(relation.rows)
        for src, dst in present:
            assert (dst, src) in present

    def test_directed_not_symmetrized(self):
        graph = erdos_renyi_graph(30, 0.1, seed=2, directed=True)
        relation = edges_relation(graph)
        assert len(relation) == sum(1 for u, v in graph.edges() if u != v)

    def test_self_loops_dropped(self):
        import networkx as nx
        graph = nx.DiGraph([(1, 1), (1, 2)])
        relation = edges_relation(graph)
        assert (1, 1) not in relation.rows
        assert (1, 2) in relation.rows


class TestGenerators:
    def test_barabasi_skewed_degrees(self):
        graph = barabasi_albert_graph(300, 4, seed=3)
        degrees = sorted((d for _, d in graph.degree()), reverse=True)
        assert degrees[0] > 4 * degrees[len(degrees) // 2]

    def test_powerlaw_cluster_has_triangles(self):
        graph = powerlaw_cluster_graph(200, 5, 0.5, seed=4)
        relation = edges_relation(graph)
        assert triangle_count_truth(relation) > 0

    def test_random_edge_relation_size(self):
        relation = random_edge_relation(50, 300, seed=5)
        assert relation.arity == 2
        assert 250 <= len(relation) <= 300  # self-loops removed

    def test_ba_validation(self):
        with pytest.raises(ConfigurationError):
            barabasi_albert_graph(5, 10)


class TestOracles:
    def test_known_triangle(self):
        relation = Relation("E", ("s", "d"), [(0, 1), (1, 2), (2, 0)])
        assert triangle_count_truth(relation) == 3  # three rotations

    def test_symmetric_triangle_counted_six_times(self):
        rows = [(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2)]
        relation = Relation("E", ("s", "d"), rows)
        assert triangle_count_truth(relation) == 6

    def test_no_triangles_in_dag_chain(self):
        relation = Relation("E", ("s", "d"), [(0, 1), (1, 2), (2, 3)])
        assert triangle_count_truth(relation) == 0

    def test_cycle_truth_matches_triangle_truth(self):
        relation = random_edge_relation(25, 120, seed=6)
        assert cycle_count_truth(relation, 3) == triangle_count_truth(relation)

    def test_square_count(self):
        relation = Relation("E", ("s", "d"), [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert cycle_count_truth(relation, 4) == 4  # four rotations

    def test_cycle_length_validated(self):
        relation = Relation("E", ("s", "d"), [(0, 1)])
        with pytest.raises(ConfigurationError):
            cycle_count_truth(relation, 1)
