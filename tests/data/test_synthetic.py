"""Synthetic workload generator tests."""

import pytest

from repro.data import (
    adversarial_triangle_tables,
    lookup_workload,
    prefix_workload,
    string_table,
    umbra_adversarial_tables,
    zipf_table,
)
from repro.errors import ConfigurationError


class TestZipfTable:
    def test_shape(self):
        table = zipf_table("T", 500, 3, seed=1)
        assert len(table) == 500
        assert table.arity == 3
        assert table.schema.attributes == ("c0", "c1", "c2")

    def test_distinct_rows(self):
        table = zipf_table("T", 800, 2, domain=60, alpha=0.5, seed=2)
        assert len(set(table.rows)) == len(table)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            zipf_table("T", 0, 2)


class TestLookupWorkloads:
    def test_miss_fraction(self):
        table = zipf_table("T", 400, 3, seed=3)
        present = set(table.rows)
        probes = lookup_workload(table, 200, seed=4, miss_fraction=0.5)
        misses = sum(1 for probe in probes if probe not in present)
        assert len(probes) == 200
        assert 80 <= misses <= 120

    def test_prefix_workload_lengths(self):
        table = zipf_table("T", 400, 4, seed=5)
        probes = prefix_workload(table, 100, prefix_length=2, seed=6)
        assert all(len(probe) == 2 for probe in probes)
        prefixes = {row[:2] for row in table.rows}
        hits = sum(1 for probe in probes if probe in prefixes)
        assert 30 <= hits <= 70


class TestAdversarialTriangle:
    def test_star_structure_at_full_adversity(self):
        tables = adversarial_triangle_tables(200, adversity=1.0, seed=7)
        r = tables["R"]
        zero_touching = sum(1 for row in r if 0 in row)
        assert zero_touching > 0.9 * len(r)

    def test_uniform_at_zero_adversity(self):
        tables = adversarial_triangle_tables(200, adversity=0.0, seed=8)
        zero_touching = sum(1 for row in tables["R"] if 0 in row)
        assert zero_touching == 0  # uniform part draws from [1, domain)

    def test_sizes(self):
        tables = adversarial_triangle_tables(300, adversity=0.5, seed=9)
        assert all(len(rel) == 300 for rel in tables.values())

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            adversarial_triangle_tables(100, adversity=1.5)


class TestUmbraAdversarial:
    def test_schemas_match_paper(self):
        tables = umbra_adversarial_tables(150, seed=10)
        assert tables["R1"].schema.attributes == ("a", "b", "d", "e")
        assert tables["R5"].schema.attributes == ("c", "e", "f")
        assert len(tables) == 5

    def test_skew_present_on_shared_attributes(self):
        tables = umbra_adversarial_tables(300, alpha=1.0, seed=11)
        column = tables["R1"].column("a")
        top = max(column.count(v) for v in set(column))
        assert top > 3  # heavy hitters exist


class TestStringTable:
    def test_variable_length_strings(self):
        table = string_table("S", 150, 2, key_length=10, seed=12)
        lengths = {len(value) for row in table for value in row}
        assert len(lengths) > 1
        assert len(table) == 150
