"""Reporting helpers tests."""

import json

from repro.bench import print_series, print_table, save_results, speedup_summary
from repro.bench.reporting import format_value


class TestFormatting:
    def test_format_value(self):
        assert format_value(3) == "3"
        assert format_value(0.5) == "0.5"
        assert format_value(1234567.0) == "1.235e+06"
        assert format_value(0.00001) == "1.000e-05"
        assert format_value("x") == "x"
        assert format_value(0.0) == "0"

    def test_print_table(self, capsys):
        print_table("demo", [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        output = capsys.readouterr().out
        assert "demo" in output
        assert "a" in output and "b" in output
        assert "2" in output and "y" in output

    def test_print_table_empty(self, capsys):
        print_table("empty", [])
        assert "(no rows)" in capsys.readouterr().out

    def test_print_series(self, capsys):
        print_series("fig", "x", [1, 2], {"sonic": [0.1, 0.2],
                                          "btree": [0.3, 0.4]})
        output = capsys.readouterr().out
        assert "sonic" in output and "btree" in output


class TestPersistence:
    def test_save_results_merges(self, tmp_path):
        path = tmp_path / "results.json"
        save_results(path, "fig1", {"x": 1})
        save_results(path, "fig2", {"y": 2})
        data = json.loads(path.read_text())
        assert data == {"fig1": {"x": 1}, "fig2": {"y": 2}}


class TestSpeedups:
    def test_speedup_summary(self):
        summary = speedup_summary(10.0, {"fast": 5.0, "slow": 20.0, "zero": 0})
        assert summary["fast"] == "2.00x"
        assert summary["slow"] == "0.50x"
        assert summary["zero"] == "inf"
