"""Benchmark harness plumbing tests."""

from repro.bench import (
    BUILD_AND_POINT_INDEXES,
    PREFIX_INDEXES,
    Timing,
    build_index,
    make_sized_index,
    sweep,
    time_callable,
)
from repro.core import SonicIndex
from repro.data import zipf_table
from repro.indexes import registered_indexes


class TestMakeSizedIndex:
    def test_sonic_capacity_derived(self):
        index = make_sized_index("sonic", 3, 1000, overallocation=3.0)
        assert isinstance(index, SonicIndex)
        assert index.config.capacity >= 3000

    def test_other_indexes_pass_through(self):
        index = make_sized_index("btree", 3, 1000)
        assert index.arity == 3

    def test_baseline_sets_are_registered(self):
        names = set(registered_indexes())
        assert set(BUILD_AND_POINT_INDEXES) <= names
        assert set(PREFIX_INDEXES) <= names


class TestBuildIndex:
    def test_builds_over_relation(self):
        relation = zipf_table("T", 200, 3, seed=1)
        index = build_index("sonic", relation)
        assert len(index) == len(relation)


class TestSweep:
    def test_shape(self):
        xs, series = sweep(["a", "b"], [1, 2, 3],
                           lambda name, x: float(x if name == "a" else -x))
        assert xs == [1, 2, 3]
        assert series == {"a": [1.0, 2.0, 3.0], "b": [-1.0, -2.0, -3.0]}


class TestTimer:
    def test_time_callable(self):
        timing = time_callable(lambda: sum(range(1000)), repeats=3)
        assert isinstance(timing, Timing)
        assert 0 <= timing.best_seconds <= timing.mean_seconds
        assert timing.repeats == 3
        assert timing.best_ms == timing.best_seconds * 1000
