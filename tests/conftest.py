"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core import SonicConfig, SonicIndex
from repro.storage import Relation


def make_rows(arity: int, count: int, domain: int, seed: int = 0) -> list[tuple]:
    """Deterministic distinct random tuples."""
    rng = random.Random(seed)
    rows: set[tuple] = set()
    guard = 0
    while len(rows) < count and guard < 50 * count:
        rows.add(tuple(rng.randrange(domain) for _ in range(arity)))
        guard += 1
    return sorted(rows)


def matching(rows: list[tuple], prefix: tuple) -> list[tuple]:
    """Ground-truth prefix lookup."""
    width = len(prefix)
    return sorted(row for row in rows if row[:width] == prefix)


@pytest.fixture
def rows4() -> list[tuple]:
    """A medium 4-column tuple set with plenty of shared prefixes."""
    return make_rows(4, 800, domain=20, seed=11)


@pytest.fixture
def rows2() -> list[tuple]:
    return make_rows(2, 500, domain=60, seed=13)


@pytest.fixture
def sonic4(rows4) -> SonicIndex:
    index = SonicIndex(4, SonicConfig.for_tuples(len(rows4)))
    index.build(rows4)
    return index


@pytest.fixture
def edges_relation_small() -> Relation:
    rng = random.Random(5)
    rows = {(rng.randrange(25), rng.randrange(25)) for _ in range(160)}
    return Relation("E", ("src", "dst"), rows)
