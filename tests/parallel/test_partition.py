"""Partitioner unit tests: determinism, hash agreement, shard grouping.

The partitioner must agree with itself across processes and dtypes:
the vectorized int64 path must be bit-identical to the scalar
:func:`repro.core.hashing.hash_key` the indexes use, object columns
must route integer values to the same shards as the fast path, and
``partition_order`` must be a stable grouping of row positions.
"""

import numpy as np
import pytest

from repro.core.hashing import fmix64, hash_key
from repro.parallel import build_sharded_columns, partition_order, shard_ids, shard_of
from repro.parallel.partition import _fmix64_array
from repro.storage.relation import Relation


def test_vectorized_fmix64_matches_scalar():
    values = np.array([0, 1, -1, 2**62, -(2**62), 123456789], dtype=np.int64)
    mixed = _fmix64_array(values)
    for raw, got in zip(values.tolist(), mixed.tolist()):
        assert got == fmix64(raw & 0xFFFFFFFFFFFFFFFF)


@pytest.mark.parametrize("workers", [1, 2, 3, 7])
def test_int64_path_matches_hash_key(workers):
    column = np.array([0, 5, -3, 99, 2**40, 5], dtype=np.int64)
    ids = shard_ids(column, workers)
    for value, sid in zip(column.tolist(), ids.tolist()):
        assert sid == hash_key(value) % workers
        assert sid == shard_of(value, workers)


def test_object_path_agrees_with_int_path_on_integers():
    values = [0, 7, 123, -5, 2**50]
    int_col = np.array(values, dtype=np.int64)
    obj_col = np.empty(len(values), dtype=object)
    obj_col[:] = values
    assert shard_ids(int_col, 4).tolist() == shard_ids(obj_col, 4).tolist()


def test_object_path_handles_unhashable_key_types():
    # floats/None are outside hash_key's domain; repr-fallback must not
    # raise and must be deterministic
    col = np.empty(4, dtype=object)
    col[:] = [1.5, None, ("a", 2), "text"]
    first = shard_ids(col, 3).tolist()
    assert first == shard_ids(col, 3).tolist()
    assert all(0 <= sid < 3 for sid in first)


def test_partition_order_groups_and_is_stable():
    column = np.array([10, 20, 10, 30, 20, 10], dtype=np.int64)
    workers = 3
    row_order, bounds = partition_order(column, workers)
    assert len(bounds) == workers + 1
    assert bounds[0] == 0 and bounds[-1] == len(column)
    ids = shard_ids(column, workers)
    for shard in range(workers):
        rows = row_order[bounds[shard]:bounds[shard + 1]]
        # every row in the slice routes to this shard...
        assert all(ids[r] == shard for r in rows.tolist())
        # ...and rows keep relation order within the shard (stable sort)
        assert rows.tolist() == sorted(rows.tolist())
    assert sorted(row_order.tolist()) == list(range(len(column)))


def test_build_sharded_columns_partitions_rows_exactly_once():
    rows = [(i % 7, i) for i in range(50)]
    relation = Relation("R", ("a", "b"), rows)
    columns = build_sharded_columns(relation, 0, 4)
    try:
        assert sum(columns.lengths) == len(relation)
        assert columns.partition_position == 0
    finally:
        columns.close()


def test_build_sharded_columns_replicates_by_aliasing():
    rows = [(i, i + 1) for i in range(20)]
    relation = Relation("R", ("a", "b"), rows)
    columns = build_sharded_columns(relation, None, 3)
    try:
        assert columns.lengths == (20, 20, 20)
        # all shards alias the same handle row — one segment set
        assert columns.handles_for(0) == columns.handles_for(2)
    finally:
        columns.close()
