"""Shared-memory transport tests: roundtrip fidelity and leak-freedom.

Every exported segment must come back bit-identical through
:func:`attach_array`, and every ownership path — explicit ``close()``,
garbage collection of the owner, the session cache evicting a
:class:`ShardedColumns` — must leave ``/dev/shm`` with no
``repro_shm_*`` entries.
"""

import gc
import glob
import pickle

import numpy as np

from repro.parallel import (
    SEGMENT_PREFIX,
    attach_array,
    build_sharded_columns,
    export_array,
)
from repro.storage.relation import Relation


def shm_entries() -> list[str]:
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")


def test_int64_roundtrip_is_zero_copy_shm():
    array = np.array([1, -2, 3, 2**60], dtype=np.int64)
    handle, segment = export_array(array)
    try:
        assert handle.kind == "shm"
        attached, shm = attach_array(handle)
        assert attached.dtype == np.int64
        assert attached.tolist() == array.tolist()
        assert not attached.flags.writeable
        shm.close()
    finally:
        segment.close()
    assert segment.released


def test_object_column_rides_inline():
    array = np.empty(3, dtype=object)
    array[:] = ["x", ("y", 1), None]
    handle, segment = export_array(array)
    assert segment is None
    assert handle.kind == "inline"
    attached, shm = attach_array(handle)
    assert shm is None
    assert attached.tolist() == array.tolist()


def test_empty_column_rides_inline():
    handle, segment = export_array(np.array([], dtype=np.int64))
    assert segment is None
    attached, _ = attach_array(handle)
    assert attached.dtype == np.int64 and len(attached) == 0


def test_handles_pickle_roundtrip():
    array = np.arange(10, dtype=np.int64)
    handle, segment = export_array(array)
    try:
        clone = pickle.loads(pickle.dumps(handle))
        assert clone == handle
        assert clone.signature() == handle.signature()
        attached, shm = attach_array(clone)
        assert attached.tolist() == array.tolist()
        shm.close()
    finally:
        segment.close()


def test_close_releases_dev_shm_entry():
    before = set(shm_entries())
    handle, segment = export_array(np.arange(100, dtype=np.int64))
    assert f"/dev/shm/{handle.name}" in set(shm_entries()) - before
    segment.close()
    segment.close()  # idempotent
    assert handle.name not in {e.rsplit("/", 1)[-1] for e in shm_entries()}


def test_gc_finalizer_releases_unclosed_segments():
    before = set(shm_entries())
    relation = Relation("R", ("a", "b"), [(i % 5, i) for i in range(200)])
    columns = build_sharded_columns(relation, 0, 3)
    assert set(shm_entries()) - before
    del columns  # no close(): the weakref finalizers must fire
    gc.collect()
    assert set(shm_entries()) == before


def test_sharded_columns_close_is_idempotent():
    relation = Relation("R", ("a", "b"), [(i, i) for i in range(50)])
    columns = build_sharded_columns(relation, None, 2)
    assert columns.memory_usage() > 0
    columns.close()
    columns.close()
    assert not [e for e in shm_entries() if "repro_shm_" in e
                and any(h.name and h.name in e
                        for h in columns.handles_for(0))]
