"""Shard-equivalence property tests: ``parallel=K`` vs single-process.

The sharded multiprocess path must be observationally identical to the
single-process engine — same counts, same materialized rows — for every
join driver, both Generic Join engines, and both batch-capable indexes,
on uniform and Zipf-skewed inputs.  Degenerate splits (more shards than
distinct keys, empty relations, one shard owning >90% of the rows) must
degrade to correct answers, never wrong ones.
"""

import random

import pytest

from repro.data.zipf import ZipfGenerator
from repro.joins import join
from repro.planner.query import parse_query
from repro.storage.relation import Relation

TRIANGLE = parse_query("E1=E(a,b), E2=E(b,c), E3=E(c,a)")
BOWTIE = parse_query(
    "E1=E(a,b), E2=E(b,c), E3=E(c,a), E4=E(a,d), E5=E(d,e), E6=E(e,a)")
CHAIN3 = parse_query("E1=E(a,b), E2=E(b,c), E3=E(c,d)")

ALGORITHMS = ("generic", "binary", "hashtrie", "leapfrog", "recursive")


def random_edges(count: int, domain: int, seed: int) -> Relation:
    rng = random.Random(seed)
    rows = {(rng.randrange(domain), rng.randrange(domain))
            for _ in range(count)}
    return Relation("E", ("src", "dst"), rows)


def zipf_edges(count: int, domain: int, alpha: float, seed: int) -> Relation:
    src = ZipfGenerator(domain, alpha=alpha, seed=seed).sample(count)
    dst = ZipfGenerator(domain, alpha=alpha, seed=seed + 1).sample(count)
    rows = set(zip(src.tolist(), dst.tolist()))
    return Relation("E", ("src", "dst"), rows)


def self_join_relations(query, edges: Relation) -> dict:
    return {atom.alias: edges for atom in query.atoms}


def assert_sharded_agrees(query, relations, workers=2, **kwargs):
    single = join(query, relations, materialize=True, **kwargs)
    sharded = join(query, relations, materialize=True, parallel=workers,
                   **kwargs)
    assert sharded.count == single.count
    assert sorted(sharded.rows) == sorted(single.rows)
    return single, sharded


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_every_driver_agrees_sharded(algorithm):
    edges = random_edges(300, 40, seed=3)
    assert_sharded_agrees(TRIANGLE, self_join_relations(TRIANGLE, edges),
                          algorithm=algorithm)


@pytest.mark.parametrize("engine", ["tuple", "batch"])
@pytest.mark.parametrize("index", ["sonic", "sortedtrie"])
def test_generic_engines_and_indexes(engine, index):
    edges = random_edges(250, 35, seed=5)
    assert_sharded_agrees(TRIANGLE, self_join_relations(TRIANGLE, edges),
                          engine=engine, index=index)


@pytest.mark.parametrize("query", [TRIANGLE, BOWTIE, CHAIN3],
                         ids=["triangle", "bowtie", "chain3"])
@pytest.mark.parametrize("workers", [2, 3])
def test_query_shapes(query, workers):
    edges = random_edges(220, 30, seed=11)
    assert_sharded_agrees(query, self_join_relations(query, edges),
                          workers=workers, engine="batch")


@pytest.mark.parametrize("alpha", [0.6, 1.1], ids=["mild", "heavy"])
def test_zipf_skewed_inputs(alpha):
    edges = zipf_edges(350, 50, alpha=alpha, seed=7)
    assert_sharded_agrees(TRIANGLE, self_join_relations(TRIANGLE, edges))


def test_more_shards_than_distinct_keys():
    # only 3 distinct leading values: most of the 8 shards are empty and
    # must be skipped, not executed against garbage
    rows = [(a, b) for a in range(3) for b in range(3)]
    edges = Relation("E", ("src", "dst"), rows)
    single, sharded = assert_sharded_agrees(
        TRIANGLE, self_join_relations(TRIANGLE, edges), workers=8)
    assert sharded.count == single.count


def test_empty_relation():
    empty = Relation("E", ("src", "dst"), [])
    result = join(TRIANGLE, self_join_relations(TRIANGLE, empty), parallel=4)
    assert result.count == 0


def test_heavy_skew_single_hot_shard():
    # >90% of rows share one leading value: one shard does nearly all
    # the work, the rest are near-empty — counts must still agree
    rng = random.Random(13)
    rows = {(0, dst) for dst in range(600)}
    rows |= {(rng.randrange(1, 40), rng.randrange(200)) for _ in range(40)}
    rows |= {(b, 0) for b in range(50)}  # close some triangles through 0
    edges = Relation("E", ("src", "dst"), rows)
    hot = sum(1 for r in edges.rows if r[0] == 0)
    assert hot / len(edges) > 0.85
    assert_sharded_agrees(TRIANGLE, self_join_relations(TRIANGLE, edges),
                          workers=4)


def test_non_self_join():
    rng = random.Random(5)
    r = Relation("R", ("a", "b"),
                 {(rng.randrange(25), rng.randrange(25)) for _ in range(120)})
    s = Relation("S", ("b", "c"),
                 {(rng.randrange(25), rng.randrange(25)) for _ in range(120)})
    t = Relation("T", ("c", "a"),
                 {(rng.randrange(25), rng.randrange(25)) for _ in range(120)})
    query = parse_query("R(a,b), S(b,c), T(c,a)")
    assert_sharded_agrees(query, {"R": r, "S": s, "T": t})


def test_parallel_one_is_a_valid_degenerate_fleet():
    edges = random_edges(150, 25, seed=2)
    assert_sharded_agrees(TRIANGLE, self_join_relations(TRIANGLE, edges),
                          workers=1)


def test_profile_counters_cover_shards():
    edges = random_edges(200, 30, seed=9)
    result = join(TRIANGLE, self_join_relations(TRIANGLE, edges),
                  parallel=3, profile=True)
    counters = result.profile.counters
    assert counters["parallel.executions"] == 1
    assert counters["parallel.shards"] + counters["parallel.shards_skipped"] == 3
