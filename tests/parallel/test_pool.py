"""Worker-pool and failure-path tests.

A worker that raises must surface as :class:`~repro.errors.ExecutionError`
carrying the worker-side traceback; a dead worker must not hang the
parent; bad configuration fails fast at plan time, not in a child
process.
"""

import pytest

from repro.errors import ConfigurationError, ExecutionError
from repro.joins import join
from repro.parallel import WorkerPool, resolve_workers, start_method
from repro.planner.query import parse_query
from repro.storage.relation import Relation

TRIANGLE = parse_query("E1=E(a,b), E2=E(b,c), E3=E(c,a)")


def test_resolve_workers_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers(None) == 0
    assert resolve_workers(3) == 3
    monkeypatch.setenv("REPRO_WORKERS", "2")
    assert resolve_workers(None) == 2
    assert resolve_workers(4) == 4  # explicit beats env
    assert resolve_workers(0) == 0  # explicit zero disables


def test_resolve_workers_rejects_negative():
    with pytest.raises(ConfigurationError):
        resolve_workers(-1)


def test_resolve_workers_rejects_bad_env(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "many")
    with pytest.raises(ValueError, match="REPRO_WORKERS"):
        resolve_workers(None)


def test_start_method_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_MP_START", "spawn")
    assert start_method() == "spawn"


def test_env_workers_drives_join(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "2")
    edges = Relation("E", ("src", "dst"), [(0, 1), (1, 2), (2, 0)])
    relations = {"E1": edges, "E2": edges, "E3": edges}
    result = join(TRIANGLE, relations, profile=True)
    assert result.count == 3
    assert result.profile.counters["parallel.executions"] == 1


def test_worker_task_error_propagates_with_traceback():
    with WorkerPool(2) as pool:
        # a task the worker cannot bind: unknown relation alias
        bad_task = {
            "query": "E1=E(a,b)",
            "algorithm": "generic",
            "index": "sonic",
            "engine": "tuple",
            "order": None,
            "atom_order": None,
            "dynamic_seed": True,
            "index_kwargs": {},
            "relations": {},
            "shard": 0,
            "signature": ("bad", 0),
            "materialize": False,
            "with_counters": False,
        }
        with pytest.raises(ExecutionError) as excinfo:
            pool.run([bad_task])
    assert "E1" in str(excinfo.value)


def test_dead_worker_raises_not_hangs():
    pool = WorkerPool(1)
    try:
        worker = pool._processes[0]
        worker.terminate()
        worker.join(5)
        with pytest.raises(ExecutionError):
            pool.run([{"shard": 0}], timeout=10)
    finally:
        pool.close()


def test_pool_close_is_idempotent_and_reaps_children():
    pool = WorkerPool(2)
    assert pool.alive()
    pool.close()
    pool.close()
    assert not pool.alive()
    assert not any(p.is_alive() for p in pool._processes)
