"""Distributed observability: sharded profiles, merged traces, env flags.

Three contracts from the distributed-obs layer:

* **Counter conservation** — for every join driver, the per-shard
  ``join.emitted`` counters collected over the result pipes must sum to
  the single-process count (and, where the driver exposes levels, the
  per-level survivor counts must sum level-for-level).  Sharding may
  move work between processes but must never invent or lose tuples.
* **Merged trace** — ``join(..., parallel=K, profile=True, trace_out=…)``
  writes one Chrome ``trace_event`` document whose parent spans and
  per-worker spans sit on distinct real-pid rows, labelled for Perfetto.
* **Worker env flags** — a worker honors inherited ``REPRO_PROFILE`` /
  ``REPRO_TRACE_OUT`` even when the parent did not request counters
  (the regression: worker-side obs used to be pinned off unless the
  task asked).
"""

import json
import random

import pytest

pytest.importorskip("numpy")

from repro.engine.pipeline import bind, plan, prepare
from repro.joins import join
from repro.obs.profile import ShardedJoinProfile, validate_profile
from repro.parallel.worker import run_shard_task
from repro.planner.query import parse_query
from repro.storage.relation import Relation

TRIANGLE = parse_query("E1=E(a,b), E2=E(b,c), E3=E(c,a)")

#: every driver, plus both Generic Join engines
DRIVERS = [
    ("generic", "tuple"),
    ("generic", "batch"),
    ("binary", None),
    ("hashtrie", None),
    ("leapfrog", None),
    ("recursive", None),
]
DRIVER_IDS = ["generic-tuple", "generic-batch", "binary", "hashtrie",
              "leapfrog", "recursive"]


@pytest.fixture(scope="module")
def edges():
    rng = random.Random(3)
    rows = {(rng.randrange(40), rng.randrange(40)) for _ in range(300)}
    return Relation("E", ("src", "dst"), rows)


@pytest.fixture(scope="module")
def relations(edges):
    return {"E1": edges, "E2": edges, "E3": edges}


@pytest.fixture(scope="module")
def truth(edges):
    """Brute-force triangle count (ground truth for emitted totals)."""
    edge_set = set(tuple(row) for row in edges)
    return sum(1 for a, b in edge_set
               for c in {d for s, d in edge_set if s == b}
               if (c, a) in edge_set)


def driver_kwargs(algorithm, engine):
    kwargs = {"algorithm": algorithm}
    if engine is not None:
        kwargs["engine"] = engine
    return kwargs


def executed_shards(profile):
    return [entry for entry in profile.shards if not entry.get("skipped")]


# ----------------------------------------------------------------------
# counter conservation: sum over shards == single process
# ----------------------------------------------------------------------
class TestCounterConservation:
    @pytest.mark.parametrize("algorithm,engine", DRIVERS, ids=DRIVER_IDS)
    def test_emitted_sums_to_single_process(self, relations, truth,
                                            algorithm, engine):
        kwargs = driver_kwargs(algorithm, engine)
        single = join(TRIANGLE, relations, profile=True, **kwargs)
        sharded = join(TRIANGLE, relations, profile=True, parallel=2,
                       **kwargs)
        assert single.count == truth
        assert sharded.count == truth
        profile = sharded.profile
        assert isinstance(profile, ShardedJoinProfile)
        shards = executed_shards(profile)
        assert shards, "both shards empty on a 300-edge input"
        assert sum(s["count"] for s in shards) == truth
        assert sum(s["counters"]["join.emitted"] for s in shards) == truth
        # parent-side parity with the single-process profile
        assert profile.counters["join.emitted"] == truth
        assert profile.result_count == single.profile.result_count

    @pytest.mark.parametrize(
        "algorithm,engine",
        [d for d in DRIVERS if d[0] not in ("recursive", "binary")],
        ids=[i for i in DRIVER_IDS if i not in ("recursive", "binary")])
    def test_survivors_sum_level_for_level(self, relations, algorithm,
                                           engine):
        kwargs = driver_kwargs(algorithm, engine)
        single = join(TRIANGLE, relations, profile=True, **kwargs)
        sharded = join(TRIANGLE, relations, profile=True, parallel=2,
                       **kwargs)
        expected = [level.survivors for level in single.profile.levels]
        merged = [level.survivors for level in sharded.profile.levels]
        assert merged == expected
        # and the merged levels really are the shard sums, not a re-run
        shards = executed_shards(sharded.profile)
        for position, survivors in enumerate(expected):
            total = sum(entry["levels"][position]["survivors"]
                        for entry in shards
                        if position < len(entry["levels"]))
            assert total == survivors

    def test_binary_final_stage_is_conserved(self, relations, truth):
        # binary replicates the non-partitioned relation into every
        # shard, so *scan/build* stage survivors legitimately inflate
        # (each shard counts its own copy); only the final stage — the
        # emitted tuples — must be conserved exactly
        single = join(TRIANGLE, relations, profile=True, algorithm="binary")
        sharded = join(TRIANGLE, relations, profile=True, parallel=2,
                       algorithm="binary")
        assert sharded.profile.levels[-1].survivors == truth
        for merged, alone in zip(sharded.profile.levels,
                                 single.profile.levels):
            assert merged.survivors >= alone.survivors

    def test_sharded_profile_validates(self, relations):
        result = join(TRIANGLE, relations, profile=True, parallel=2)
        payload = result.profile.as_dict()
        assert payload["schema_version"] == 3
        assert payload["sharding"]["workers"] == 2
        validate_profile(payload)

    def test_render_names_the_straggler(self, relations):
        result = join(TRIANGLE, relations, profile=True, parallel=2)
        text = result.profile.render()
        assert "sharding: 2 workers" in text
        assert "straggler" in text


# ----------------------------------------------------------------------
# merged Chrome trace: one document, K worker pid rows
# ----------------------------------------------------------------------
class TestMergedTrace:
    @pytest.fixture(scope="class")
    def trace_doc(self, relations, tmp_path_factory):
        out = tmp_path_factory.mktemp("trace") / "merged.json"
        result = join(TRIANGLE, relations, profile=True, parallel=2,
                      trace_out=str(out))
        return result, json.loads(out.read_text())

    def test_document_schema(self, trace_doc):
        _, doc = trace_doc
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        for event in doc["traceEvents"]:
            assert event["ph"] in ("X", "M")
            assert isinstance(event["pid"], int)
            if event["ph"] == "X":
                assert event["ts"] >= 0
                assert event["dur"] >= 0

    def test_exactly_k_worker_rows_with_distinct_pids(self, trace_doc):
        result, doc = trace_doc
        profile = result.profile
        names = [event["args"]["name"] for event in doc["traceEvents"]
                 if event["ph"] == "M" and event["name"] == "process_name"]
        worker_rows = [name for name in names if name.startswith("worker")]
        assert len(worker_rows) == len(executed_shards(profile)) == 2
        pids = {event["pid"] for event in doc["traceEvents"]}
        assert len(pids) == 3  # parent + 2 workers
        assert profile.parent_pid in pids

    def test_parent_and_worker_spans_on_their_own_rows(self, trace_doc):
        result, doc = trace_doc
        parent_pid = result.profile.parent_pid
        spans_by_pid = {}
        for event in doc["traceEvents"]:
            if event["ph"] == "X":
                spans_by_pid.setdefault(event["pid"], set()).add(event["name"])
        parent_spans = spans_by_pid[parent_pid]
        assert {"partition_shards", "shard_fanout",
                "merge_shards"} <= parent_spans
        worker_pids = set(spans_by_pid) - {parent_pid}
        assert len(worker_pids) == 2
        for pid in worker_pids:
            assert {"build_index", "probe"} <= spans_by_pid[pid]

    def test_per_shard_trace_files_sit_next_to_merged(self, relations,
                                                      tmp_path, monkeypatch):
        # the env route: every worker inherits REPRO_TRACE_OUT and must
        # suffix it per shard instead of clobbering the merged document
        out = tmp_path / "trace.json"
        monkeypatch.setenv("REPRO_TRACE_OUT", str(out))
        result = join(TRIANGLE, relations, profile=True, parallel=2)
        assert result.profile is not None
        merged = json.loads(out.read_text())
        assert {e["pid"] for e in merged["traceEvents"]
                if e["ph"] == "X"} == {
            result.profile.parent_pid,
            *(s["pid"] for s in executed_shards(result.profile))}
        for entry in executed_shards(result.profile):
            shard_doc = tmp_path / f"trace.shard{entry['shard']}.json"
            assert shard_doc.exists()
            json.loads(shard_doc.read_text())


# ----------------------------------------------------------------------
# worker-side env flags (the silently-disabled-obs regression)
# ----------------------------------------------------------------------
def sharded_prepared(relations, workers=2):
    bound = bind(TRIANGLE, relations)
    join_plan = plan(bound, parallel=workers)
    return prepare(bound, join_plan, cache=None)


def first_nonempty_task(prepared, with_counters=False):
    runner = prepared._runner
    for shard in range(runner.plan.sharding.workers):
        task = runner._shard_task(shard, False, with_counters)
        if task is not None:
            return task
    raise AssertionError("every shard empty")


class TestWorkerEnvFlags:
    def test_obs_off_by_default(self, relations, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        monkeypatch.delenv("REPRO_TRACE_OUT", raising=False)
        with sharded_prepared(relations) as prepared:
            response = run_shard_task(first_nonempty_task(prepared))
        assert response["ok"]
        assert response["counters"] is None
        assert "profile" not in response
        assert "spans" not in response

    def test_inherited_profile_flag_enables_obs(self, relations, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        monkeypatch.delenv("REPRO_TRACE_OUT", raising=False)
        with sharded_prepared(relations) as prepared:
            response = run_shard_task(first_nonempty_task(prepared))
        assert response["ok"]
        assert response["counters"]["join.emitted"] == response["count"]
        assert response["profile"] is not None
        assert response["profile"]["counters"]["join.emitted"] \
            == response["count"]
        assert response["pid"] > 0
        assert response["spans"], "profiled worker returned no spans"
        clock = response["clock"]
        assert clock["responded_ns"] >= clock["received_ns"]
        # no TraceContext travelled (task built by hand): stamp degrades
        assert clock["issued_ns"] is None

    def test_inherited_trace_out_writes_per_shard_file(self, relations,
                                                       tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        monkeypatch.setenv("REPRO_TRACE_OUT", str(tmp_path / "trace.json"))
        with sharded_prepared(relations) as prepared:
            task = first_nonempty_task(prepared)
            response = run_shard_task(task)
        assert response["ok"]
        assert response["counters"] is not None  # trace flag implies obs
        shard_doc = tmp_path / f"trace.shard{task['shard']}.json"
        assert shard_doc.exists()
        doc = json.loads(shard_doc.read_text())
        assert any(event.get("name") == "probe"
                   for event in doc["traceEvents"])

    def test_task_request_still_wins_without_env(self, relations,
                                                 monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        monkeypatch.delenv("REPRO_TRACE_OUT", raising=False)
        with sharded_prepared(relations) as prepared:
            response = run_shard_task(
                first_nonempty_task(prepared, with_counters=True))
        assert response["counters"] is not None
        assert response["profile"] is not None
