"""SortedTrie and the LFTJ TrieIterator."""

import pytest

from conftest import make_rows, matching
from repro.errors import QueryError
from repro.indexes import SortedTrie


def build(rows, arity):
    trie = SortedTrie(arity)
    trie.build(rows)
    return trie


class TestSortedTrie:
    def test_rows_sorted_and_distinct(self):
        rows = make_rows(2, 200, domain=50, seed=141)
        trie = build(rows + rows[:50], 2)
        assert trie.rows == rows
        assert len(trie) == len(rows)

    def test_incremental_resort(self):
        trie = SortedTrie(2)
        trie.insert((5, 5))
        assert trie.contains((5, 5))
        trie.insert((1, 1))
        assert trie.rows == [(1, 1), (5, 5)]

    def test_prefix_range_counting_logarithmic_interface(self):
        rows = make_rows(3, 300, domain=12, seed=142)
        trie = build(rows, 3)
        for row in rows[::13]:
            for length in (1, 2, 3):
                prefix = row[:length]
                assert trie.count_prefix(prefix) == len(matching(rows, prefix))


class TestTrieIterator:
    def test_open_key_next_walks_distinct_values(self):
        rows = [(1, 10), (1, 20), (2, 10), (3, 30)]
        cursor = build(rows, 2).iterator()
        cursor.open()
        seen = []
        while not cursor.at_end():
            seen.append(cursor.key())
            cursor.next()
        assert seen == [1, 2, 3]

    def test_nested_descent(self):
        rows = [(1, 10), (1, 20), (2, 30)]
        cursor = build(rows, 2).iterator()
        cursor.open()              # depth 0, at value 1
        assert cursor.key() == 1
        cursor.open()              # depth 1 under 1
        values = []
        while not cursor.at_end():
            values.append(cursor.key())
            cursor.next()
        assert values == [10, 20]
        cursor.up()
        cursor.next()              # to value 2
        assert cursor.key() == 2
        cursor.open()
        assert cursor.key() == 30

    def test_seek_forward(self):
        rows = [(i, 0) for i in range(0, 100, 5)]
        cursor = build(rows, 2).iterator()
        cursor.open()
        cursor.seek(42)
        assert cursor.key() == 45
        cursor.seek(45)
        assert cursor.key() == 45  # seek is >= semantics
        cursor.seek(96)
        assert cursor.at_end()

    def test_seek_within_group(self):
        rows = [(1, 5), (1, 9), (1, 14), (2, 1)]
        cursor = build(rows, 2).iterator()
        cursor.open()
        cursor.open()  # values under 1
        cursor.seek(8)
        assert cursor.key() == 9
        cursor.seek(100)
        assert cursor.at_end()

    def test_open_past_last_component_raises(self):
        cursor = build([(1, 2)], 2).iterator()
        cursor.open()
        cursor.open()
        with pytest.raises(QueryError):
            cursor.open()

    def test_up_above_root_raises(self):
        cursor = build([(1, 2)], 2).iterator()
        with pytest.raises(QueryError):
            cursor.up()

    def test_key_at_end_raises(self):
        cursor = build([(1, 2)], 2).iterator()
        cursor.open()
        cursor.next()
        assert cursor.at_end()
        with pytest.raises(QueryError):
            cursor.key()
