"""Robin Hood map specifics: PSL invariant, backward-shift deletion."""

from conftest import make_rows
from repro.indexes import RobinHoodMap, RobinHoodTupleIndex


class TestMapBasics:
    def test_put_get(self):
        table = RobinHoodMap()
        table.put("a", 1)
        table.put("b", 2)
        assert table["a"] == 1
        assert table.get("b") == 2
        assert table.get("c") is None

    def test_overwrite(self):
        table = RobinHoodMap()
        table.put("k", 1)
        table.put("k", 2)
        assert table["k"] == 2
        assert len(table) == 1

    def test_setdefault(self):
        table = RobinHoodMap()
        assert table.setdefault("x", 10) == 10
        assert table.setdefault("x", 20) == 10

    def test_growth(self):
        table = RobinHoodMap(initial_capacity=8)
        for i in range(1000):
            table.put(i, i * 2)
        assert len(table) == 1000
        assert table[123] == 246
        assert table.capacity >= 1024

    def test_items_keys_values(self):
        table = RobinHoodMap()
        for i in range(20):
            table.put(i, -i)
        assert sorted(table.keys()) == list(range(20))
        assert sorted(table.values()) == sorted(-i for i in range(20))
        assert dict(table.items()) == {i: -i for i in range(20)}


class TestRobinHoodInvariant:
    def test_psl_stays_short_at_high_load(self):
        table = RobinHoodMap(initial_capacity=8)
        for i in range(10000):
            table.put(i, i)
        # robin hood keeps the maximum displacement tight; with 0.8 load
        # and displacement balancing it stays in the tens, not hundreds
        assert table.max_psl() < 30


class TestDeletion:
    def test_backward_shift_preserves_lookups(self):
        table = RobinHoodMap(initial_capacity=8)
        for i in range(200):
            table.put(i, i)
        for i in range(0, 200, 3):
            assert table.delete(i)
        for i in range(200):
            expected = i % 3 != 0
            assert (table.get(i) is not None) == expected

    def test_delete_absent(self):
        table = RobinHoodMap()
        assert not table.delete("nope")

    def test_no_tombstone_growth(self):
        table = RobinHoodMap(initial_capacity=64)
        for round_ in range(50):
            table.put(("k", round_), round_)
            table.delete(("k", round_))
        assert len(table) == 0
        # backward shifting leaves no tombstones: the table never grew
        assert table.capacity == 64


class TestTupleIndex:
    def test_wraps_map(self):
        rows = make_rows(3, 150, domain=60, seed=74)
        index = RobinHoodTupleIndex(3)
        index.build(rows)
        assert len(index) == len(rows)
        for row in rows[::11]:
            assert index.contains(row)
