"""PrefixCursor contract tests across all cursor implementations.

Every prefix-capable index yields a cursor (native or fallback); all of
them must satisfy the same contract:

* ``try_descend``/``ascend`` navigate the prefix hierarchy and are exact
  at the final depth (inner depths may be optimistic, never pessimistic —
  a genuine child is never rejected);
* ``child_values`` covers every genuine child without duplicates;
* ``count`` is a positive advisory size for non-empty nodes;
* cursors stay valid while descend/ascend cycles interleave with an
  ongoing ``child_values`` iteration (the Generic Join's access pattern).
"""

import pytest

from conftest import make_rows
from repro.bench import make_sized_index
from repro.indexes.base import FallbackCursor

CURSOR_INDEXES = ("sonic", "btree", "art", "hattrie", "hiermap",
                  "hashtrie", "sortedtrie")
NATIVE = {"sonic", "hiermap", "hashtrie", "sortedtrie"}


def build(name, rows, arity=3):
    index = make_sized_index(name, arity, max(len(rows), 1))
    index.build(rows)
    return index


@pytest.fixture(scope="module")
def rows():
    return make_rows(3, 400, domain=12, seed=91)


@pytest.mark.parametrize("name", CURSOR_INDEXES)
class TestCursorContract:
    def test_native_vs_fallback_choice(self, name, rows):
        cursor = build(name, rows).cursor()
        if name in NATIVE:
            assert not isinstance(cursor, FallbackCursor)
        else:
            assert isinstance(cursor, FallbackCursor)

    def test_full_descend_of_stored_tuples(self, name, rows):
        index = build(name, rows)
        cursor = index.cursor()
        for row in rows[::37]:
            for position, value in enumerate(row):
                assert cursor.try_descend(value), (name, row, position)
                assert cursor.depth == position + 1
            for _ in row:
                cursor.ascend()
            assert cursor.depth == 0

    def test_final_depth_is_exact(self, name, rows):
        index = build(name, rows)
        cursor = index.cursor()
        present = set(rows)
        row = rows[0]
        assert cursor.try_descend(row[0])
        assert cursor.try_descend(row[1])
        for final in range(14):
            expected = (row[0], row[1], final) in present
            got = cursor.try_descend(final)
            if got:
                cursor.ascend()
            assert got == expected, (name, final)

    def test_child_values_cover_truth(self, name, rows):
        index = build(name, rows)
        cursor = index.cursor()
        truth0 = {r[0] for r in rows}
        got0 = list(cursor.child_values())
        assert truth0 <= set(got0)
        assert len(got0) == len(set(got0))
        anchor = rows[0]
        cursor.try_descend(anchor[0])
        truth1 = {r[1] for r in rows if r[0] == anchor[0]}
        got1 = list(cursor.child_values())
        assert truth1 <= set(got1), name
        assert len(got1) == len(set(got1))

    def test_count_positive_and_advisory(self, name, rows):
        index = build(name, rows)
        cursor = index.cursor()
        root_count = cursor.count()
        if name == "hashtrie":
            # Umbra's rule: count is the current-level table width, not a
            # subtree size (see HashTrieCursor.count)
            assert root_count == len({r[0] for r in rows})
        else:
            assert root_count >= len(rows) * 0.99
        anchor = rows[0]
        cursor.try_descend(anchor[0])
        assert cursor.count() > 0

    def test_missing_value_rejected_and_state_unchanged(self, name, rows):
        index = build(name, rows)
        cursor = index.cursor()
        assert not cursor.try_descend(424242)
        assert cursor.depth == 0
        assert cursor.try_descend(rows[0][0])

    def test_interleaved_descend_during_child_iteration(self, name, rows):
        """The Generic Join's pattern: descend/ascend inside the child walk."""
        index = build(name, rows)
        cursor = index.cursor()
        seen = []
        for value in cursor.child_values():
            assert cursor.try_descend(value)
            inner = list(cursor.child_values())
            assert inner, (name, value)
            cursor.ascend()
            seen.append(value)
        assert {r[0] for r in rows} <= set(seen)


class TestGenericJoinMatchesAcrossCursorKinds:
    def test_native_and_fallback_agree(self, rows):
        from repro.joins import join
        from repro.storage import Relation

        left = Relation("L", ("a", "b", "c"), rows)
        right = Relation("R", ("c", "d"),
                         {(r[2], r[0]) for r in rows[: len(rows) // 2]})
        counts = set()
        for index in ("sonic", "btree", "hiermap"):
            counts.add(join("L(a,b,c), R(c,d)", {"L": left, "R": right},
                            index=index).count)
        assert len(counts) == 1
