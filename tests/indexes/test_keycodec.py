"""Order-preserving byte codec tests."""

import pytest

from repro.errors import SchemaError
from repro.indexes.keycodec import decode_tuple, encode_component, encode_tuple


class TestRoundTrip:
    @pytest.mark.parametrize("row", [
        (0,), (1, 2, 3), (-5, 5), (2**62, -(2**62)),
        ("hello",), ("", "a"), ("nul\x00inside", "tail"),
        (1, "mixed", 2), ("ünïcödé",),
    ])
    def test_encode_decode(self, row):
        assert decode_tuple(encode_tuple(row)) == row

    def test_int_out_of_range(self):
        with pytest.raises(SchemaError):
            encode_component(2**63)
        with pytest.raises(SchemaError):
            encode_component(-(2**63) - 1)

    def test_unsupported_type(self):
        with pytest.raises(SchemaError):
            encode_component(1.5)


class TestOrderPreservation:
    def test_integer_order(self):
        values = [-(2**62), -100, -1, 0, 1, 99, 2**62]
        encoded = [encode_tuple((v,)) for v in values]
        assert encoded == sorted(encoded)

    def test_string_order(self):
        values = ["", "a", "aa", "ab", "b", "ba"]
        encoded = [encode_tuple((v,)) for v in values]
        assert encoded == sorted(encoded)

    def test_tuple_order(self):
        rows = sorted([(1, "b"), (1, "a"), (0, "z"), (2, ""), (1, "ab")])
        encoded = [encode_tuple(r) for r in rows]
        assert encoded == sorted(encoded)

    def test_embedded_nul_ordering(self):
        low = encode_tuple(("a\x00b",))
        high = encode_tuple(("a\x01",))
        assert (low < high) == (("a\x00b",) < ("a\x01",))


class TestPrefixAlignment:
    def test_component_prefix_is_byte_prefix(self):
        row = (7, "mid", 9)
        full = encode_tuple(row)
        for length in range(4):
            assert full.startswith(encode_tuple(row[:length]))

    def test_no_key_is_strict_prefix_of_another(self):
        # self-delimiting components: distinct same-arity tuples never
        # byte-prefix each other (ART/HAT-trie leaf-split relies on this)
        rows = [("a", "b"), ("ab", ""), ("a", "bc"), ("", "ab")]
        encoded = [encode_tuple(r) for r in rows]
        for i, left in enumerate(encoded):
            for j, right in enumerate(encoded):
                if i != j:
                    assert not right.startswith(left)
