"""ART structural tests: node adaptation, path compression."""

from conftest import make_rows
from repro.indexes import AdaptiveRadixTree


class TestNodeAdaptation:
    def test_node_kinds_grow_with_fanout(self):
        tree = AdaptiveRadixTree(2)
        # keys differing in the first encoded byte after the tag are hard
        # to arrange; differing first *component* bytes give wide fanout
        for i in range(300):
            tree.insert((i * 1000003 % (1 << 40), i))
        histogram = tree.node_histogram()
        assert sum(histogram.values()) > 0
        # with 300 keys the root region must have outgrown Node4
        assert histogram[16] + histogram[48] + histogram[256] > 0

    def test_small_tree_uses_node4(self):
        tree = AdaptiveRadixTree(2)
        for i in range(3):
            tree.insert((i, i))
        histogram = tree.node_histogram()
        assert histogram[48] == 0
        assert histogram[256] == 0

    def test_dense_byte_fanout_reaches_node256(self):
        tree = AdaptiveRadixTree(1)
        for i in range(256):
            tree.insert((i,))
        histogram = tree.node_histogram()
        assert histogram[256] >= 1


class TestPathCompression:
    def test_shared_long_prefixes(self):
        # keys share 7 of 8 encoded payload bytes: path compression keeps
        # the tree shallow and lookups correct
        base = 0x1122334455667700
        tree = AdaptiveRadixTree(1)
        for i in range(200):
            tree.insert((base + i,))
        for i in range(200):
            assert tree.contains((base + i,))
        assert not tree.contains((base + 500,))

    def test_prefix_split_on_divergent_insert(self):
        tree = AdaptiveRadixTree(1)
        tree.insert((0x1111111111111111,))
        tree.insert((0x1111111111111122,))
        tree.insert((0x2222222222222222,))  # splits the compressed root path
        for key in (0x1111111111111111, 0x1111111111111122, 0x2222222222222222):
            assert tree.contains((key,))


class TestOrderedEnumeration:
    def test_prefix_lookup_in_key_order(self):
        tree = AdaptiveRadixTree(2)
        rows = make_rows(2, 300, domain=40, seed=85)
        tree.build(rows)
        out = list(tree.prefix_lookup(()))
        assert out == sorted(out), "ART DFS must yield byte-ordered keys"

    def test_negative_integers_order_correctly(self):
        tree = AdaptiveRadixTree(1)
        values = [-5, -1, 0, 3, 100, -100]
        for value in values:
            tree.insert((value,))
        assert [row[0] for row in tree.prefix_lookup(())] == sorted(values)

    def test_mixed_arity_strings(self):
        tree = AdaptiveRadixTree(2)
        rows = [("a", "x"), ("a", "y"), ("ab", "z"), ("b", "w")]
        tree.build(rows)
        assert sorted(tree.prefix_lookup(("a",))) == [("a", "x"), ("a", "y")]
        assert list(tree.prefix_lookup(("ab",))) == [("ab", "z")]
