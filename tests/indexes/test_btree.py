"""B+tree structural tests: splits, invariants, range scans."""

import pytest

from conftest import make_rows, matching
from repro.errors import ConfigurationError
from repro.indexes import BPlusTree


class TestStructure:
    def test_minimum_fanout(self):
        with pytest.raises(ConfigurationError):
            BPlusTree(2, fanout=3)

    def test_root_splits_increase_height(self):
        tree = BPlusTree(2, fanout=4)
        assert tree.height == 1
        for i in range(50):
            tree.insert((i, i))
        assert tree.height >= 3

    def test_invariants_after_random_build(self):
        tree = BPlusTree(3, fanout=8)
        rows = make_rows(3, 800, domain=40, seed=81)
        # interleave to exercise mid-node splits
        tree.build(rows[::2])
        tree.build(rows[1::2])
        tree.check_invariants()
        assert sorted(tree) == rows

    def test_invariants_with_small_fanout(self):
        tree = BPlusTree(2, fanout=4)
        rows = make_rows(2, 300, domain=1000, seed=82)
        tree.build(rows)
        tree.check_invariants()

    def test_sorted_iteration(self):
        tree = BPlusTree(2, fanout=16)
        rows = make_rows(2, 400, domain=500, seed=83)
        tree.build(reversed(rows))
        assert list(tree) == rows


class TestRangeScan:
    def test_prefix_scan_crosses_leaves(self):
        tree = BPlusTree(2, fanout=4)  # tiny leaves force multi-leaf scans
        rows = [(1, i) for i in range(60)] + [(2, i) for i in range(10)]
        tree.build(rows)
        assert list(tree.prefix_lookup((1,))) == [(1, i) for i in range(60)]
        assert list(tree.prefix_lookup((2,))) == [(2, i) for i in range(10)]

    def test_scan_terminates_at_prefix_boundary(self):
        tree = BPlusTree(2, fanout=4)
        rows = make_rows(2, 200, domain=25, seed=84)
        tree.build(rows)
        for row in rows[::17]:
            assert list(tree.prefix_lookup(row[:1])) == matching(rows, row[:1])

    def test_empty_tree_scans(self):
        tree = BPlusTree(3)
        assert list(tree.prefix_lookup(())) == []
        assert tree.count_prefix((1,)) == 0
