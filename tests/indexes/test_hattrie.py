"""HAT-trie structural tests: bursting, bucket distribution."""

import pytest

from conftest import make_rows
from repro.errors import ConfigurationError
from repro.indexes import HatTrie


class TestBursting:
    def test_small_set_stays_one_bucket(self):
        trie = HatTrie(2, burst_threshold=64)
        for i in range(10):
            trie.insert((i, i))
        assert trie.bucket_count() == 1
        assert trie.trie_depth() == 0

    def test_burst_creates_trie_levels(self):
        trie = HatTrie(2, burst_threshold=8)
        rows = make_rows(2, 400, domain=1000, seed=91)
        trie.build(rows)
        assert trie.bucket_count() > 1
        assert trie.trie_depth() >= 1
        assert sorted(trie.prefix_lookup(())) == rows

    def test_burst_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            HatTrie(2, burst_threshold=1)

    def test_deep_bursts_with_shared_prefixes(self):
        # long shared prefixes force repeated bursting down the key bytes
        trie = HatTrie(1, burst_threshold=4)
        base = 0x7000000000000000
        values = [base + i for i in range(64)]
        for value in values:
            trie.insert((value,))
        assert trie.trie_depth() >= 4
        for value in values:
            assert trie.contains((value,))


class TestTerminalRows:
    def test_key_ending_at_inner_node(self):
        # a short string that is a byte-prefix path of longer ones must
        # survive bursting as a terminal row
        trie = HatTrie(1, burst_threshold=2)
        words = ["a", "ab", "abc", "abcd", "abcde"]
        for word in words:
            trie.insert((word,))
        for word in words:
            assert trie.contains((word,))
        assert sorted(r[0] for r in trie.prefix_lookup(())) == sorted(words)


class TestPrefixSemantics:
    def test_component_prefix_not_string_prefix(self):
        # prefix lookup is per tuple component: ("ab",) must not match
        # ("abc", ...) rows
        trie = HatTrie(2, burst_threshold=4)
        trie.insert(("ab", "x"))
        trie.insert(("abc", "y"))
        assert list(trie.prefix_lookup(("ab",))) == [("ab", "x")]
        assert trie.count_prefix(("abc",)) == 1
