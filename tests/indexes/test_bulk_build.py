"""Columnar ``build_bulk``: structure identity and join equivalence.

The bulk path's contract is strong: for Sonic, the structure it produces
must be **byte-identical** to sequential ``insert()`` of the same
deduplicated rows in canonical (sorted) order — every level array equal,
slot for slot — and for every index the join results through the bulk
path must match the per-tuple reference exactly, across all join drivers
and an object-dtype (string-keyed) relation.
"""

import random

import numpy as np
import pytest

from repro import join
from repro.core import SonicConfig, SonicIndex
from repro.core.adapter import bulk_build_enabled, set_bulk_build
from repro.indexes.base import bulk_columns, sorted_unique_rows
from repro.indexes.sorted_trie import SortedTrie
from repro.storage import Relation

ALGORITHMS = ("generic", "binary", "hashtrie", "leapfrog", "recursive")


def columns_of(rows, arity):
    return [np.asarray([row[i] for row in rows], dtype=np.int64)
            if rows and isinstance(rows[0][i], int)
            else _object_column([row[i] for row in rows])
            for i in range(arity)]


def _object_column(values):
    array = np.empty(len(values), dtype=object)
    array[:] = values
    return array


def level_state(index):
    """Every mutable field of every Sonic level, as plain lists."""
    out = []
    for level in index._levels:
        out.append({
            "keys": list(level.keys),
            "rows": None if level.rows is None else list(level.rows),
            "prefix_count": list(level.prefix_count),
            "next_bucket": (None if level.next_bucket is None
                            else list(level.next_bucket)),
            "patch_bits": (None if level.patch_bits is None
                           else list(level.patch_bits)),
            "patch_keys": (None if level.patch_keys is None
                           else list(level.patch_keys)),
            "bucket_owner": (None if level.bucket_owner is None
                             else list(level.bucket_owner)),
            "bucket_free": list(level.bucket_free),
            "alloc_frontier": level.alloc_frontier,
            "used_slots": level.used_slots,
            "spilled": level.spilled,
            "shared": level.shared,
        })
    return out


def random_rows(arity, count, domain, seed, duplicates=0):
    rng = random.Random(seed)
    rows = [tuple(rng.randrange(domain) for _ in range(arity))
            for _ in range(count)]
    return rows + rows[:duplicates]


class TestSonicStructureIdentity:
    @pytest.mark.parametrize("arity,count,domain", [
        (2, 5000, 120),   # heavy groups: long shared-prefix runs
        (2, 5000, 50000), # sparse: mostly singleton groups
        (3, 4000, 60),
        (4, 3000, 25),
    ])
    def test_bulk_equals_sorted_sequential_insert(self, arity, count, domain):
        rows = random_rows(arity, count, domain, seed=arity * 17,
                           duplicates=count // 10)
        columns = columns_of(rows, arity)
        config = SonicConfig.for_tuples(len(rows))
        bulk = SonicIndex(arity, config)
        bulk.build_bulk(columns)
        reference = SonicIndex(arity, config)
        for row in sorted_unique_rows(bulk_columns(arity, columns)):
            reference.insert(row)
        assert len(bulk) == len(reference) == len(set(rows))
        assert level_state(bulk) == level_state(reference)

    def test_string_keys_identical(self):
        rng = random.Random(3)
        rows = [(f"u{rng.randrange(40)}", rng.randrange(40))
                for _ in range(2000)]
        columns = [np.asarray([r[0] for r in rows]),
                   np.asarray([r[1] for r in rows], dtype=np.int64)]
        config = SonicConfig.for_tuples(len(rows))
        bulk = SonicIndex(2, config)
        bulk.build_bulk(columns)
        reference = SonicIndex(2, config)
        for row in sorted_unique_rows(bulk_columns(2, columns)):
            reference.insert(row)
        assert level_state(bulk) == level_state(reference)

    def test_prefix_operations_after_bulk(self):
        rows = random_rows(3, 2000, 40, seed=9)
        index = SonicIndex(3, SonicConfig.for_tuples(len(rows)))
        index.build_bulk(columns_of(rows, 3))
        distinct = set(rows)
        for row in list(distinct)[:200]:
            assert index.contains(row)
            assert index.count_prefix(row[:1]) == sum(
                1 for r in distinct if r[0] == row[0])
            assert set(index.prefix_lookup(row[:2])) == {
                r for r in distinct if r[:2] == row[:2]}

    def test_empty_and_single(self):
        empty = SonicIndex(2, SonicConfig.for_tuples(16))
        empty.build_bulk([np.empty(0, dtype=np.int64)] * 2)
        assert len(empty) == 0
        one = SonicIndex(2, SonicConfig.for_tuples(16))
        one.build_bulk([np.asarray([7]), np.asarray([9])])
        assert len(one) == 1 and one.contains((7, 9))


class TestBulkFallbacks:
    def test_non_empty_index_falls_back(self):
        rows = random_rows(2, 500, 60, seed=2)
        index = SonicIndex(2, SonicConfig.for_tuples(len(rows) + 1))
        index.insert((999_999, 999_999))
        index.build_bulk(columns_of(rows, 2))
        assert len(index) == len(set(rows)) + 1
        assert index.contains((999_999, 999_999))
        assert all(index.contains(row) for row in set(rows))

    def test_tracer_falls_back_to_traced_inserts(self):
        class CountingTracer:
            def __init__(self):
                self.records = 0

            def record(self, level, region, slot, size):
                self.records += 1

        rows = random_rows(2, 200, 40, seed=5)
        tracer = CountingTracer()
        index = SonicIndex(2, SonicConfig.for_tuples(len(rows)),
                           tracer=tracer)
        index.build_bulk(columns_of(rows, 2))
        assert len(index) == len(set(rows))
        assert tracer.records > 0, "bulk path must not silence the tracer"

    def test_unsortable_values_fall_back(self):
        mixed = _object_column([1, "x", 2, "y"])
        index = SonicIndex(2, SonicConfig.for_tuples(8))
        index.build_bulk([mixed, np.arange(4)])
        assert len(index) == 4
        assert index.contains(("x", 1))

    def test_ragged_columns_rejected(self):
        from repro.errors import SchemaError
        index = SonicIndex(2, SonicConfig.for_tuples(8))
        with pytest.raises(SchemaError):
            index.build_bulk([np.arange(3), np.arange(4)])
        with pytest.raises(SchemaError):
            index.build_bulk([np.arange(3)])


class TestSortedTrieBulk:
    def test_bulk_equals_per_row_build(self):
        rows = random_rows(3, 3000, 30, seed=11, duplicates=300)
        bulk = SortedTrie(3)
        bulk.build_bulk(columns_of(rows, 3))
        reference = SortedTrie(3)
        reference.build(rows)
        assert bulk.rows == reference.rows
        assert len(bulk) == len(reference)

    def test_bulk_on_non_empty_merges(self):
        trie = SortedTrie(2)
        trie.insert((1, 2))
        trie.build_bulk([np.asarray([1, 3]), np.asarray([2, 4])])
        assert trie.rows == [(1, 2), (3, 4)]


class TestJoinEquivalence:
    """Bulk-on vs bulk-off joins agree across every driver."""

    @staticmethod
    def _triangle_source(seed, domain=25, count=160):
        rng = random.Random(seed)
        edges = Relation("E", ("s", "d"),
                         {(rng.randrange(domain), rng.randrange(domain))
                          for _ in range(count)})
        return {"E1": edges, "E2": edges, "E3": edges}

    @staticmethod
    def _run_both(query, source, **kwargs):
        previous = set_bulk_build(False)
        try:
            reference = join(query, source, materialize=True, **kwargs)
            set_bulk_build(True)
            bulk = join(query, source, materialize=True, **kwargs)
        finally:
            set_bulk_build(previous)
        assert bulk.count == reference.count
        assert sorted(bulk.rows) == sorted(reference.rows)
        return bulk

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_triangle_all_drivers(self, algorithm):
        query = "E1=E(a,b), E2=E(b,c), E3=E(c,a)"
        result = self._run_both(query, self._triangle_source(seed=21),
                                algorithm=algorithm)
        assert result.count > 0

    @pytest.mark.parametrize("index", ("sonic", "sortedtrie"))
    def test_generic_join_per_index(self, index):
        query = "E1=E(a,b), E2=E(b,c), E3=E(c,a)"
        self._run_both(query, self._triangle_source(seed=22), index=index)

    def test_object_dtype_relation(self):
        rng = random.Random(33)
        names = [f"n{i}" for i in range(18)]
        edges = Relation("E", ("s", "d"),
                         {(rng.choice(names), rng.choice(names))
                          for _ in range(150)})
        source = {"E1": edges, "E2": edges, "E3": edges}
        query = "E1=E(a,b), E2=E(b,c), E3=E(c,a)"
        for algorithm in ("generic", "leapfrog"):
            self._run_both(query, source, algorithm=algorithm)

    def test_toggle_restores(self):
        assert bulk_build_enabled()
        previous = set_bulk_build(False)
        assert previous is True
        assert not bulk_build_enabled()
        set_bulk_build(previous)
        assert bulk_build_enabled()
