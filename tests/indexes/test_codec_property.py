"""Property-based tests for the order-preserving key codec and bitvectors."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexes import BitVector
from repro.indexes.keycodec import decode_tuple, encode_tuple

_components = st.one_of(
    st.integers(-(2**62), 2**62),
    st.text(max_size=12),
)
_tuples = st.lists(_components, min_size=1, max_size=4).map(tuple)


@settings(max_examples=150, deadline=None)
@given(row=_tuples)
def test_roundtrip(row):
    assert decode_tuple(encode_tuple(row)) == row


@settings(max_examples=150, deadline=None)
@given(left=_tuples, right=_tuples)
def test_order_preservation(left, right):
    # comparable only when component types align position-wise
    for a, b in zip(left, right):
        if type(a) is not type(b):
            return
    if len(left) != len(right):
        # different arities: only prefix-consistent comparisons are defined
        return
    assert (encode_tuple(left) < encode_tuple(right)) == (left < right)


@settings(max_examples=100, deadline=None)
@given(row=_tuples, length=st.integers(0, 4))
def test_prefix_alignment(row, length):
    prefix = row[:min(length, len(row))]
    assert encode_tuple(row).startswith(encode_tuple(prefix))


@settings(max_examples=100, deadline=None)
@given(bits=st.lists(st.booleans(), max_size=300))
def test_bitvector_rank_select_inverse(bits):
    vector = BitVector.from_bits(bits)
    assert vector.ones == sum(bits)
    running = 0
    for position, bit in enumerate(bits):
        assert vector.rank1(position) == running
        if bit:
            running += 1
            assert vector.select1(running) == position
