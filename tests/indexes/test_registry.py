"""Index registry tests."""

import pytest

from repro.errors import ConfigurationError
from repro.indexes import (
    SwissTableSet,
    ensure_registered,
    make_index,
    prefix_capable_indexes,
    register_index,
    registered_indexes,
)


class TestRegistry:
    def test_builtins_present(self):
        names = registered_indexes()
        for expected in ("sonic", "hashset", "robinhood", "btree", "art",
                         "hattrie", "hiermap", "hashtrie", "surf",
                         "sortedtrie"):
            assert expected in names

    def test_make_index(self):
        index = make_index("hashset", 3)
        assert isinstance(index, SwissTableSet)
        assert index.arity == 3

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_index("nope", 2)

    def test_double_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_index("hashset", SwissTableSet)

    def test_replace_allowed(self):
        register_index("hashset", SwissTableSet, replace=True)
        assert isinstance(make_index("hashset", 2), SwissTableSet)

    def test_prefix_capable_subset(self):
        capable = prefix_capable_indexes()
        assert "sonic" in capable
        assert "btree" in capable
        assert "hashset" not in capable
        assert "surf" not in capable

    def test_ensure_registered(self):
        ensure_registered(["sonic", "btree"])
        with pytest.raises(ConfigurationError):
            ensure_registered(["sonic", "missing-index"])
