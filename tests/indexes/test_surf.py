"""SuRF: filter semantics (no false negatives), succinctness, counts."""

import pytest

from conftest import make_rows
from repro.errors import ConfigurationError
from repro.indexes import SuccinctRangeFilter


class TestFilterSemantics:
    def test_no_false_negatives(self):
        rows = make_rows(3, 400, domain=50, seed=131)
        surf = SuccinctRangeFilter(3, suffix_mode="hash")
        surf.build(rows)
        for row in rows:
            assert surf.contains(row), "SuRF must never reject a stored key"

    def test_false_positive_rate_bounded_with_hash_suffix(self):
        rows = make_rows(3, 500, domain=40, seed=132)
        present = set(rows)
        surf = SuccinctRangeFilter(3, suffix_mode="hash", suffix_bytes=2)
        surf.build(rows)
        probes = make_rows(3, 400, domain=60, seed=133)
        false_positives = sum(
            1 for probe in probes
            if probe not in present and surf.contains(probe)
        )
        misses = sum(1 for probe in probes if probe not in present)
        assert misses > 0
        # 16-bit suffixes: expect well under 5% false positives
        assert false_positives / misses < 0.05

    def test_real_suffix_mode(self):
        rows = make_rows(2, 200, domain=500, seed=134)
        surf = SuccinctRangeFilter(2, suffix_mode="real", suffix_bytes=4)
        surf.build(rows)
        for row in rows[::7]:
            assert surf.contains(row)

    def test_none_suffix_mode_is_pure_prefix_filter(self):
        surf = SuccinctRangeFilter(2, suffix_mode="none")
        surf.build([(1, 2), (3, 4)])
        assert surf.contains((1, 2))

    def test_invalid_suffix_mode(self):
        with pytest.raises(ConfigurationError):
            SuccinctRangeFilter(2, suffix_mode="bogus")

    def test_empty_filter(self):
        surf = SuccinctRangeFilter(2)
        surf.build([])
        assert not surf.contains((1, 2))
        assert surf.approx_count_prefix((1,)) == 0


class TestStaticRebuild:
    def test_insert_after_freeze_rebuilds(self):
        surf = SuccinctRangeFilter(2)
        surf.build([(1, 2)])
        assert surf.contains((1, 2))
        surf.insert((3, 4))
        assert surf.contains((3, 4))
        assert surf.contains((1, 2))
        assert len(surf) == 2

    def test_duplicate_staged_inserts_collapse(self):
        surf = SuccinctRangeFilter(2)
        surf.insert((5, 6))
        surf.insert((5, 6))
        assert surf.contains((5, 6))
        assert len(surf) == 1


class TestCountsAndSpace:
    def test_approx_count_is_lower_bound(self):
        rows = make_rows(3, 400, domain=12, seed=135)
        surf = SuccinctRangeFilter(3)
        surf.build(rows)
        for row in rows[::23]:
            for length in (1, 2):
                prefix = row[:length]
                truth = sum(1 for r in rows if r[:length] == prefix)
                approx = surf.approx_count_prefix(prefix)
                assert 1 <= approx <= truth

    def test_missing_prefix_counts_zero(self):
        rows = make_rows(3, 100, domain=20, seed=136)
        surf = SuccinctRangeFilter(3)
        surf.build(rows)
        assert surf.approx_count_prefix((99999,)) == 0

    def test_succinct_vs_flat_storage(self):
        rows = make_rows(3, 1000, domain=60, seed=137)
        surf = SuccinctRangeFilter(3, suffix_mode="hash", suffix_bytes=1)
        surf.build(rows)
        flat_bytes = len(rows) * 3 * 8
        assert surf.memory_usage() < flat_bytes, "SuRF must beat flat storage"

    def test_leaf_count_is_key_count_for_distinct_keys(self):
        rows = make_rows(2, 300, domain=5000, seed=138)
        surf = SuccinctRangeFilter(2)
        surf.build(rows)
        assert surf.leaf_count == len(rows)

    def test_prefix_lookup_unsupported(self):
        surf = SuccinctRangeFilter(2)
        surf.build([(1, 2)])
        assert surf.SUPPORTS_PREFIX is False
