"""PrefixCursor / TrieIterator edge cases the typestate rules reason about.

RA401/RA402 encode assumptions about the runtime protocol: a failed
``try_descend`` leaves the depth unchanged, an exhausted ``child_values``
walk does not poison the cursor, and a ``seek`` past the last key parks
the iterator ``at_end`` without corrupting the levels above.  These
tests pin those assumptions against the live implementations (one
native-cursor index, one fallback-cursor index, one hash-trie), so the
static rules and the runtime can never silently diverge.
"""

import pytest

from conftest import make_rows
from repro.bench import make_sized_index
from repro.indexes.sorted_trie import SortedTrie

CURSOR_INDEXES = ("sonic", "btree", "hashtrie")


def build(name, rows, arity=3):
    index = make_sized_index(name, arity, max(len(rows), 1))
    index.build(rows)
    return index


@pytest.fixture(scope="module")
def rows():
    return make_rows(3, 300, domain=10, seed=97)


@pytest.mark.parametrize("name", CURSOR_INDEXES)
class TestCursorEdgeCases:
    def test_empty_index_cursor(self, name):
        cursor = make_sized_index(name, 3, 1).cursor()
        assert list(cursor.child_values()) == []
        assert not cursor.try_descend(0)
        assert cursor.depth == 0

    def test_empty_prefix_enumerates_all_roots(self, name, rows):
        cursor = build(name, rows).cursor()
        got = list(cursor.child_values())
        assert set(got) >= {r[0] for r in rows}
        assert cursor.depth == 0  # enumeration does not move the cursor

    def test_failed_descend_leaves_depth_unchanged(self, name, rows):
        cursor = build(name, rows).cursor()
        missing = max(r[0] for r in rows) + 1000
        assert not cursor.try_descend(missing)
        assert cursor.depth == 0
        # the cursor is still usable after the miss
        assert cursor.try_descend(rows[0][0])
        assert cursor.depth == 1
        cursor.ascend()
        assert cursor.depth == 0

    def test_exhausted_child_walk_is_reusable(self, name, rows):
        cursor = build(name, rows).cursor()
        first = list(cursor.child_values())
        again = list(cursor.child_values())
        assert sorted(first) == sorted(again)
        # and a descend/ascend cycle still balances afterwards
        anchor = rows[0]
        for position, value in enumerate(anchor):
            assert cursor.try_descend(value)
            assert cursor.depth == position + 1
        for _ in anchor:
            cursor.ascend()
        assert cursor.depth == 0

    def test_count_positive_while_descended(self, name, rows):
        cursor = build(name, rows).cursor()
        anchor = rows[0]
        assert cursor.try_descend(anchor[0])
        assert cursor.count() >= 1
        cursor.ascend()


class TestTrieIteratorSeekPastEnd:
    def _iterator(self, rows):
        trie = SortedTrie(2)
        for row in rows:
            trie.insert(row)
        return trie.iterator()

    def test_seek_past_last_key_parks_at_end(self):
        it = self._iterator([(1, 10), (3, 30), (5, 50)])
        it.open()
        it.seek(99)  # beyond the last first-component
        assert it.at_end()
        it.up()  # the level above survives the overshoot

    def test_seek_past_end_then_reuse_above(self):
        it = self._iterator([(1, 10), (1, 20), (3, 30)])
        it.open()
        assert it.key() == 1
        it.open()       # into the second component of key 1
        it.seek(1000)   # exhaust the child level
        assert it.at_end()
        it.up()
        assert it.key() == 1  # parent level still positioned
        it.next()
        assert it.key() == 3
        it.up()

    def test_seek_to_exact_key_is_not_end(self):
        it = self._iterator([(1, 10), (3, 30), (5, 50)])
        it.open()
        it.seek(5)
        assert not it.at_end()
        assert it.key() == 5
        it.next()
        assert it.at_end()
        it.up()
