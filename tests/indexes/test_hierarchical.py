"""Hierarchical hash map: the §3.1 straw-man and its measurable drawbacks."""

from conftest import make_rows, matching
from repro.indexes import HierarchicalHashMap


class TestStructure:
    def test_table_count_grows_with_distinct_prefixes(self):
        index = HierarchicalHashMap(3)
        rows = make_rows(3, 300, domain=30, seed=101)
        index.build(rows)
        distinct_l1 = len({row[0] for row in rows})
        distinct_l2 = len({row[:2] for row in rows})
        # root + one table per distinct length-1 prefix + per length-2
        assert index.table_count() == 1 + distinct_l1 + distinct_l2

    def test_exponential_table_drawback_visible(self):
        # the §3.1 critique: table count explodes with column count
        rows3 = make_rows(3, 200, domain=12, seed=102)
        rows5 = [row + row[:2] for row in rows3]
        shallow = HierarchicalHashMap(3)
        shallow.build(rows3)
        deep = HierarchicalHashMap(5)
        deep.build(rows5)
        assert deep.table_count() > shallow.table_count()

    def test_arity_one(self):
        index = HierarchicalHashMap(1)
        index.build([(i,) for i in range(50)])
        assert len(index) == 50
        assert index.contains((7,))
        assert index.count_prefix(()) == 50
        assert index.table_count() == 1


class TestPrefixCounters:
    def test_counts_maintained_per_node(self):
        rows = make_rows(4, 400, domain=10, seed=103)
        index = HierarchicalHashMap(4)
        index.build(rows)
        for row in rows[::19]:
            for length in (1, 2, 3):
                prefix = row[:length]
                assert index.count_prefix(prefix) == len(matching(rows, prefix))

    def test_duplicates_not_double_counted(self):
        index = HierarchicalHashMap(3)
        index.insert((1, 2, 3))
        index.insert((1, 2, 3))
        index.insert((1, 2, 4))
        assert index.count_prefix((1,)) == 2
        assert index.count_prefix((1, 2)) == 2
