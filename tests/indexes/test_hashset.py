"""SwissTable hash set specifics: growth, tombstones, load factor."""

from conftest import make_rows
from repro.indexes import SwissTableSet


class TestGrowth:
    def test_grows_past_initial_capacity(self):
        index = SwissTableSet(2, initial_capacity=16)
        rows = make_rows(2, 200, domain=1000, seed=71)
        index.build(rows)
        assert len(index) == len(rows)
        assert index.capacity >= 256
        for row in rows[::9]:
            assert index.contains(row)

    def test_load_factor_bounded(self):
        index = SwissTableSet(2, initial_capacity=16)
        for i in range(500):
            index.insert((i, i))
        assert index.load_factor <= 0.875

    def test_capacity_is_power_of_two(self):
        index = SwissTableSet(2, initial_capacity=100)
        assert index.capacity & (index.capacity - 1) == 0


class TestRemoval:
    def test_remove_present(self):
        index = SwissTableSet(2)
        index.insert((1, 2))
        assert index.remove((1, 2))
        assert not index.contains((1, 2))
        assert len(index) == 0

    def test_remove_absent(self):
        index = SwissTableSet(2)
        assert not index.remove((1, 2))

    def test_probe_chain_survives_tombstones(self):
        # insert colliding-ish keys, delete some, others must stay findable
        index = SwissTableSet(2, initial_capacity=32)
        rows = make_rows(2, 20, domain=100, seed=72)
        index.build(rows)
        removed = rows[::2]
        kept = rows[1::2]
        for row in removed:
            assert index.remove(row)
        for row in kept:
            assert index.contains(row)
        for row in removed:
            assert not index.contains(row)

    def test_reinsert_after_remove(self):
        index = SwissTableSet(2)
        index.insert((5, 6))
        index.remove((5, 6))
        index.insert((5, 6))
        assert index.contains((5, 6))
        assert len(index) == 1


class TestIteration:
    def test_iter_yields_all(self):
        rows = make_rows(2, 80, domain=500, seed=73)
        index = SwissTableSet(2)
        index.build(rows)
        assert sorted(index) == rows
