"""Cross-index contract tests.

Every structure in the registry must satisfy the same observable contract
(the paper's "level playing field", §4.1): set-semantics membership after
arbitrary inserts, exact prefix enumeration/counting where supported, and
agreement with the other structures.  SuRF is the one sanctioned
exception: it is a *filter* (one-sided membership), tested separately.
"""

import pytest

from conftest import make_rows, matching
from repro.bench import make_sized_index
from repro.errors import SchemaError, UnsupportedOperationError
from repro.indexes import registered_indexes

ALL_INDEXES = registered_indexes()
EXACT_INDEXES = [n for n in ALL_INDEXES if n != "surf"]
PREFIX_INDEXES = [n for n in EXACT_INDEXES
                  if make_sized_index(n, 2, 4).SUPPORTS_PREFIX]
POINT_ONLY = [n for n in ALL_INDEXES
              if not make_sized_index(n, 2, 4).SUPPORTS_PREFIX]


def build(name, rows, arity):
    index = make_sized_index(name, arity, max(len(rows), 1))
    index.build(rows)
    return index


@pytest.mark.parametrize("name", EXACT_INDEXES)
class TestMembershipContract:
    def test_empty(self, name):
        index = make_sized_index(name, 3, 1)
        assert len(index) == 0
        assert not index.contains((1, 2, 3))

    def test_insert_then_contains(self, name):
        rows = make_rows(3, 250, domain=30, seed=61)
        index = build(name, rows, 3)
        assert len(index) == len(rows)
        for row in rows[::7]:
            assert index.contains(row)

    def test_misses(self, name):
        rows = make_rows(3, 250, domain=30, seed=61)
        present = set(rows)
        index = build(name, rows, 3)
        probes = make_rows(3, 120, domain=35, seed=62)
        for probe in probes:
            assert index.contains(probe) == (probe in present)

    def test_duplicates_are_set_semantics(self, name):
        rows = make_rows(3, 100, domain=20, seed=63)
        index = make_sized_index(name, 3, len(rows))
        index.build(rows)
        index.build(rows)  # insert everything twice
        assert len(index) == len(rows)

    def test_wrong_arity_rejected(self, name):
        index = make_sized_index(name, 3, 8)
        with pytest.raises(SchemaError):
            index.insert((1, 2))

    def test_string_tuples(self, name):
        rows = [("ab", "cd"), ("ab", "ce"), ("xy", "zz")]
        index = make_sized_index(name, 2, len(rows))
        index.build(rows)
        assert index.contains(("ab", "ce"))
        assert not index.contains(("ab", "cf"))

    def test_memory_usage_reported(self, name):
        rows = make_rows(3, 100, domain=25, seed=64)
        index = build(name, rows, 3)
        assert index.memory_usage() > 0


@pytest.mark.parametrize("name", PREFIX_INDEXES)
class TestPrefixContract:
    @pytest.mark.parametrize("length", [0, 1, 2, 3])
    def test_prefix_lookup_exact(self, name, length):
        rows = make_rows(4, 300, domain=15, seed=65)
        index = build(name, rows, 4)
        for row in rows[::31]:
            prefix = row[:length]
            assert sorted(index.prefix_lookup(prefix)) == matching(rows, prefix)

    def test_count_prefix_matches_enumeration(self, name):
        rows = make_rows(4, 300, domain=15, seed=65)
        index = build(name, rows, 4)
        for row in rows[::23]:
            for length in (1, 2, 3):
                prefix = row[:length]
                assert index.count_prefix(prefix) == len(matching(rows, prefix))

    def test_missing_prefix(self, name):
        rows = make_rows(4, 150, domain=15, seed=66)
        index = build(name, rows, 4)
        assert list(index.prefix_lookup((99999,))) == []
        assert index.count_prefix((99999,)) == 0

    def test_has_prefix(self, name):
        rows = make_rows(4, 150, domain=15, seed=66)
        index = build(name, rows, 4)
        assert index.has_prefix(rows[0][:2])
        assert not index.has_prefix((99999,))

    def test_iter_next_values_cover_and_distinct(self, name):
        rows = make_rows(4, 300, domain=12, seed=67)
        index = build(name, rows, 4)
        for row in rows[::41]:
            for length in (0, 1, 2, 3):
                prefix = row[:length]
                got = list(index.iter_next_values(prefix))
                truth = {r[length] for r in rows if r[:length] == prefix}
                assert truth <= set(got), (name, prefix)
                assert len(got) == len(set(got)), (name, prefix)

    def test_prefix_too_long_rejected(self, name):
        index = make_sized_index(name, 3, 4)
        with pytest.raises(SchemaError):
            list(index.prefix_lookup((1, 2, 3, 4)))


@pytest.mark.parametrize("name", POINT_ONLY)
class TestPointOnlyIndexes:
    def test_prefix_operations_raise(self, name):
        index = make_sized_index(name, 3, 8)
        index.insert((1, 2, 3))
        with pytest.raises(UnsupportedOperationError):
            list(index.prefix_lookup((1,)))
        with pytest.raises(UnsupportedOperationError):
            index.count_prefix((1,))

    def test_supports_prefix_flag(self, name):
        assert make_sized_index(name, 2, 4).SUPPORTS_PREFIX is False


class TestCrossIndexAgreement:
    def test_all_exact_indexes_agree(self):
        rows = make_rows(4, 400, domain=14, seed=68)
        built = {name: build(name, rows, 4) for name in EXACT_INDEXES}
        reference = sorted(rows)
        for name, index in built.items():
            if index.SUPPORTS_PREFIX:
                assert sorted(index.prefix_lookup(())) == reference, name
        probe_rows = make_rows(4, 60, domain=16, seed=69)
        present = set(rows)
        for probe in probe_rows:
            answers = {name: index.contains(probe) for name, index in built.items()}
            assert set(answers.values()) == {probe in present}, (probe, answers)
