"""Umbra hash trie: lazy expansion, singleton pruning, instrumentation."""

from conftest import make_rows, matching
from repro.indexes import HashTrie


class TestLazyExpansion:
    def test_build_is_first_level_only(self):
        rows = make_rows(3, 200, domain=20, seed=111)
        trie = HashTrie(3, lazy=True)
        trie.build(rows)
        assert trie.expanded_levels() == 0
        assert trie.expansions == 0

    def test_probe_triggers_expansion(self):
        rows = make_rows(3, 200, domain=10, seed=112)  # dense: long chains
        trie = HashTrie(3, lazy=True)
        trie.build(rows)
        prefix = rows[0][:2]
        result = sorted(trie.prefix_lookup(prefix))
        assert result == matching(rows, prefix)
        assert trie.expansions > 0
        assert trie.redistributed_tuples > 0

    def test_expansion_is_incremental(self):
        rows = make_rows(4, 300, domain=8, seed=113)
        trie = HashTrie(4, lazy=True)
        trie.build(rows)
        list(trie.prefix_lookup(rows[0][:2]))
        after_one_path = trie.expansions
        list(trie.prefix_lookup(rows[-1][:2]))
        assert trie.expansions >= after_one_path

    def test_eager_mode_expands_at_build(self):
        rows = make_rows(3, 150, domain=10, seed=114)
        trie = HashTrie(3, lazy=False)
        trie.build(rows)
        assert trie.expanded_levels() >= 1
        before = trie.expansions
        list(trie.prefix_lookup(rows[0][:2]))
        assert trie.expansions == before  # probes trigger nothing new


class TestSingletonPruning:
    def test_singletons_never_expand(self):
        # unique first components: every chain is a singleton
        rows = [(i, i * 2, i * 3) for i in range(100)]
        trie = HashTrie(3, lazy=True, singleton_pruning=True)
        trie.build(rows)
        for row in rows[::9]:
            assert sorted(trie.prefix_lookup(row[:2])) == [row]
        assert trie.expansions == 0

    def test_pruning_disabled_expands_singletons(self):
        rows = [(i, i * 2, i * 3) for i in range(100)]
        trie = HashTrie(3, lazy=True, singleton_pruning=False)
        trie.build(rows)
        for row in rows[::9]:
            list(trie.prefix_lookup(row[:2]))
        assert trie.expansions > 0

    def test_pruned_chains_filter_correctly(self):
        trie = HashTrie(3, singleton_pruning=True)
        trie.insert((1, 2, 3))
        # prefix (1, 9) shares the first component only: the pruned chain
        # must not produce a false match
        assert list(trie.prefix_lookup((1, 9))) == []
        assert trie.count_prefix((1, 9)) == 0
        assert trie.count_prefix((1, 2)) == 1


class TestPostExpansionInserts:
    def test_insert_after_expansion(self):
        rows = make_rows(3, 120, domain=8, seed=115)
        trie = HashTrie(3, lazy=True)
        trie.build(rows)
        list(trie.prefix_lookup(rows[0][:1]))  # force some expansion
        new_row = (rows[0][0], 777, 888)
        trie.insert(new_row)
        assert trie.contains(new_row)
        assert new_row in set(trie.prefix_lookup((rows[0][0],)))
