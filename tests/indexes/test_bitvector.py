"""Rank/select bitvector tests (SuRF's substrate)."""

import random

import pytest

from repro.indexes import BitVector, BitVectorBuilder


def reference_rank1(bits, position):
    return sum(bits[:position])


def reference_select1(bits, k):
    seen = 0
    for index, bit in enumerate(bits):
        if bit:
            seen += 1
            if seen == k:
                return index
    raise IndexError


class TestRank:
    def test_rank_against_reference(self):
        rng = random.Random(121)
        bits = [rng.random() < 0.3 for _ in range(1000)]
        vector = BitVector.from_bits(bits)
        for position in range(0, 1001, 7):
            assert vector.rank1(position) == reference_rank1(bits, position)
            assert vector.rank0(position) == position - reference_rank1(bits, position)

    def test_rank_at_bounds(self):
        vector = BitVector.from_bits([True, False, True])
        assert vector.rank1(0) == 0
        assert vector.rank1(3) == 2
        assert vector.rank1(100) == 2  # clamped
        assert vector.rank1(-5) == 0

    def test_word_boundary_ranks(self):
        bits = [True] * 64 + [False] * 64 + [True] * 10
        vector = BitVector.from_bits(bits)
        assert vector.rank1(64) == 64
        assert vector.rank1(65) == 64
        assert vector.rank1(128) == 64
        assert vector.rank1(138) == 74


class TestSelect:
    def test_select_against_reference(self):
        rng = random.Random(122)
        bits = [rng.random() < 0.4 for _ in range(800)]
        vector = BitVector.from_bits(bits)
        ones = sum(bits)
        for k in range(1, ones + 1, 5):
            assert vector.select1(k) == reference_select1(bits, k)

    def test_select_rank_inverse(self):
        rng = random.Random(123)
        bits = [rng.random() < 0.5 for _ in range(500)]
        vector = BitVector.from_bits(bits)
        for k in range(1, vector.ones + 1, 3):
            position = vector.select1(k)
            assert vector.rank1(position + 1) == k
            assert bits[position]

    def test_select_out_of_range(self):
        vector = BitVector.from_bits([True, False])
        with pytest.raises(IndexError):
            vector.select1(2)
        with pytest.raises(IndexError):
            vector.select1(0)

    def test_select0(self):
        bits = [True, False, False, True, False]
        vector = BitVector.from_bits(bits)
        assert vector.select0(1) == 1
        assert vector.select0(2) == 2
        assert vector.select0(3) == 4
        with pytest.raises(IndexError):
            vector.select0(4)


class TestBuilder:
    def test_append_and_index(self):
        builder = BitVectorBuilder()
        pattern = [True, False] * 100
        builder.extend(pattern)
        assert len(builder) == 200
        vector = builder.freeze()
        assert len(vector) == 200
        for index, bit in enumerate(pattern):
            assert vector[index] == bit

    def test_empty_vector(self):
        vector = BitVectorBuilder().freeze()
        assert len(vector) == 0
        assert vector.ones == 0
        assert vector.rank1(0) == 0

    def test_index_out_of_range(self):
        vector = BitVector.from_bits([True])
        with pytest.raises(IndexError):
            vector[1]

    def test_memory_usage(self):
        vector = BitVector.from_bits([True] * 1000)
        assert vector.memory_usage() > 0
