"""BatchCursor protocol tests across native kernels and the fallback shim.

Each batch cursor is checked against its index's exact prefix interface:
``candidates`` must equal the sorted distinct next-component values at the
final depth (payload-exact), ``probe_many`` must agree with ``has_prefix``
value-by-value, and random out-of-order prefix sequences must not confuse
the internal descent-stack sync.
"""

import random

import numpy as np
import pytest

from repro.indexes import batch_capable_indexes, make_index
from repro.indexes.base import (
    EMPTY_VALUES,
    FallbackBatchCursor,
    membership_mask,
    sorted_value_array,
    value_array,
)

#: native kernels plus one fallback-shim structure, all arity 3
CURSOR_INDEXES = ("sonic", "sortedtrie", "hashtrie", "btree")


def build_index(name: str, rows):
    index = make_index(name, 3)
    for row in rows:
        index.insert(row)
    return index


def random_rows(count: int, domain: int, seed: int) -> list[tuple]:
    rng = random.Random(seed)
    return sorted({(rng.randrange(domain), rng.randrange(domain),
                    rng.randrange(domain)) for _ in range(count)})


@pytest.fixture(params=CURSOR_INDEXES)
def indexed(request):
    rows = random_rows(200, 8, seed=3)
    return request.param, build_index(request.param, rows), rows


def expected_children(rows, prefix):
    depth = len(prefix)
    return sorted({row[depth] for row in rows if row[:depth] == prefix})


class TestCandidates:
    def test_root_candidates_cover_first_components(self, indexed):
        name, index, rows = indexed
        cursor = index.batch_cursor()
        got = set(cursor.candidates(()).tolist())
        assert got >= set(expected_children(rows, ()))

    def test_final_depth_exact(self, indexed):
        name, index, rows = indexed
        cursor = index.batch_cursor()
        for prefix in sorted({row[:2] for row in rows}):
            got = cursor.candidates(prefix).tolist()
            assert got == expected_children(rows, prefix), (name, prefix)

    def test_missing_prefix_empty(self, indexed):
        name, index, rows = indexed
        cursor = index.batch_cursor()
        assert cursor.candidates((999, 999)).size == 0

    def test_candidates_sorted_and_distinct(self, indexed):
        name, index, rows = indexed
        cursor = index.batch_cursor()
        for prefix in [(), (rows[0][0],), rows[0][:2]]:
            values = cursor.candidates(prefix).tolist()
            assert values == sorted(set(values)), (name, prefix)


class TestProbeMany:
    def test_agrees_with_has_prefix_at_final_depth(self, indexed):
        name, index, rows = indexed
        cursor = index.batch_cursor()
        probe_values = value_array(list(range(10)))
        for prefix in sorted({row[:2] for row in rows})[:20]:
            mask = cursor.probe_many(prefix, probe_values)
            expected = [index.has_prefix(prefix + (v,)) for v in range(10)]
            assert mask.tolist() == expected, (name, prefix)

    def test_empty_values_vector(self, indexed):
        name, index, rows = indexed
        cursor = index.batch_cursor()
        mask = cursor.probe_many((), EMPTY_VALUES)
        assert mask.size == 0


class TestSync:
    def test_out_of_order_prefix_sequence(self, indexed):
        """Random prefix jumps (backtracks, sibling switches, re-visits)
        must all answer exactly — the sync/memo layer cannot depend on
        depth-first access order."""
        name, index, rows = indexed
        cursor = index.batch_cursor()
        rng = random.Random(17)
        prefixes = sorted({row[:2] for row in rows} | {row[:1] for row in rows})
        for _ in range(200):
            prefix = prefixes[rng.randrange(len(prefixes))]
            got = cursor.candidates(prefix).tolist()
            expected = expected_children(rows, prefix)
            if len(prefix) == 2:
                assert got == expected, (name, prefix)
            else:
                assert set(got) >= set(expected), (name, prefix)

    def test_count_is_positive_on_stored_prefixes(self, indexed):
        name, index, rows = indexed
        cursor = index.batch_cursor()
        for prefix in sorted({row[:1] for row in rows})[:5]:
            assert cursor.count(prefix) > 0
        assert cursor.count((999,)) == 0


class TestRegistryCapabilities:
    def test_batch_capable_indexes_list_native_kernels(self):
        capable = set(batch_capable_indexes())
        assert {"sonic", "sortedtrie", "hashtrie"} <= capable
        assert "btree" not in capable

    def test_fallback_shim_serves_non_native_indexes(self):
        index = build_index("btree", [(1, 2, 3), (1, 2, 4)])
        cursor = index.batch_cursor()
        assert isinstance(cursor, FallbackBatchCursor)
        assert cursor.candidates((1, 2)).tolist() == [3, 4]


class TestArrayHelpers:
    def test_membership_mask_basic(self):
        children = np.array([2, 4, 6, 8], dtype=np.int64)
        values = np.array([1, 2, 5, 8, 9], dtype=np.int64)
        assert membership_mask(children, values).tolist() == [
            False, True, False, True, False]

    def test_membership_mask_empty_children(self):
        values = np.array([1, 2], dtype=np.int64)
        assert membership_mask(EMPTY_VALUES, values).tolist() == [False, False]

    def test_membership_mask_mixed_dtypes(self):
        children = np.array([1, 2, 3], dtype=np.int64)
        values = np.empty(2, dtype=object)
        values[:] = [2, "x"]
        assert membership_mask(children, values).tolist() == [True, False]

    def test_value_array_strings(self):
        array = value_array(["b", "a"])
        assert array.dtype.kind in ("U", "O")
        assert sorted_value_array(["b", "a"]).tolist() == ["a", "b"]

    def test_value_array_mixed_falls_back_to_object(self):
        array = value_array([1, "x"])
        assert array.dtype == object
        assert array.tolist() == [1, "x"]
