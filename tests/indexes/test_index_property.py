"""Property-based cross-index tests: every exact index equals the set model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import make_sized_index

_rows = st.lists(
    st.tuples(st.integers(0, 10), st.integers(0, 10), st.integers(0, 10)),
    min_size=0, max_size=80,
)

_PREFIX_NAMES = ("sonic", "btree", "art", "hattrie", "hiermap",
                 "hashtrie", "sortedtrie")
_POINT_NAMES = ("hashset", "robinhood")


def _build(name, rows):
    index = make_sized_index(name, 3, max(len(rows), 1))
    index.build(rows)
    return index


@settings(max_examples=25, deadline=None)
@given(rows=_rows)
def test_prefix_indexes_match_model(rows):
    model = set(rows)
    anchor = sorted(model)[0] if model else (0, 0, 0)
    for name in _PREFIX_NAMES:
        index = _build(name, rows)
        assert len(index) == len(model), name
        assert sorted(index.prefix_lookup(())) == sorted(model), name
        for length in (1, 2, 3):
            prefix = anchor[:length]
            truth = sorted(r for r in model if r[:length] == prefix)
            assert sorted(index.prefix_lookup(prefix)) == truth, name
            assert index.count_prefix(prefix) == len(truth), name


@settings(max_examples=25, deadline=None)
@given(rows=_rows, probe=st.tuples(st.integers(0, 10), st.integers(0, 10),
                                   st.integers(0, 10)))
def test_point_indexes_match_model(rows, probe):
    model = set(rows)
    for name in _POINT_NAMES:
        index = _build(name, rows)
        assert len(index) == len(model), name
        assert index.contains(probe) == (probe in model), name


@settings(max_examples=25, deadline=None)
@given(rows=_rows)
def test_surf_is_a_sound_filter(rows):
    index = _build("surf", rows)
    for row in set(rows):
        assert index.contains(row)
