"""Span tracer: nesting, deterministic clocks, and the Chrome export."""

import json

from repro.obs.trace import NULL_TRACER, NullTracer, Tracer


def fake_clock(ticks):
    """A clock returning successive values from ``ticks`` (nanoseconds)."""
    it = iter(ticks)
    return lambda: next(it)


class TestSpans:
    def test_nested_spans_record_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        spans = tracer.as_dicts()
        assert [(s["name"], s["depth"]) for s in spans] == [
            ("outer", 0), ("inner", 1)]

    def test_deterministic_clock_durations(self):
        # origin=0; outer runs 100..500 ns, inner 200..300 ns
        tracer = Tracer(clock=fake_clock([0, 100, 200, 300, 500]))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.as_dicts()
        assert (outer["ts_us"], outer["dur_us"]) == (0.1, 0.4)
        assert (inner["ts_us"], inner["dur_us"]) == (0.2, 0.1)

    def test_args_attached_verbatim(self):
        tracer = Tracer()
        with tracer.span("probe", algorithm="generic_join", engine="tuple"):
            pass
        (span,) = tracer.as_dicts()
        assert span["args"] == {"algorithm": "generic_join", "engine": "tuple"}

    def test_add_span_records_premeasured_interval(self):
        tracer = Tracer(clock=fake_clock([0]))
        tracer.add_span("build_index", 1000, 2500, alias="E1")
        (span,) = tracer.as_dicts()
        assert span["name"] == "build_index"
        assert span["dur_us"] == 2.5
        assert span["args"] == {"alias": "E1"}

    def test_spans_sorted_by_start(self):
        tracer = Tracer(clock=fake_clock([0]))
        tracer.add_span("late", 5000, 10)
        tracer.add_span("early", 1000, 10)
        assert [s["name"] for s in tracer.as_dicts()] == ["early", "late"]


class TestChromeExport:
    def test_trace_event_document_shape(self):
        tracer = Tracer(clock=fake_clock([0, 100, 500]))
        with tracer.span("probe", rows=3):
            pass
        doc = tracer.to_chrome()
        assert doc["displayTimeUnit"] == "ms"
        (event,) = doc["traceEvents"]
        assert event["ph"] == "X"
        assert event["cat"] == "repro"
        assert event["pid"] == 1 and event["tid"] == 1
        assert event["ts"] == 0.1 and event["dur"] == 0.4
        assert event["args"] == {"rows": 3}

    def test_write_chrome_is_valid_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("probe"):
            pass
        path = tracer.write_chrome(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert doc["traceEvents"][0]["name"] == "probe"


class TestNullTracer:
    def test_disabled_flags(self):
        assert Tracer.enabled is True
        assert NullTracer.enabled is False

    def test_null_span_is_shared_and_records_nothing(self):
        first = NULL_TRACER.span("a", x=1)
        second = NULL_TRACER.span("b")
        assert first is second  # one shared no-op handle, zero allocations
        with first:
            pass
        NULL_TRACER.add_span("c", 0, 10)
        assert NULL_TRACER.as_dicts() == []
        assert NULL_TRACER.to_chrome()["traceEvents"] == []
