"""Flight-recorder unit tests: ring semantics and crash attachment."""

import os

import pytest

from repro.errors import ExecutionError
from repro.obs.flightrec import FLIGHT_RECORDER, FlightRecorder


class TestRing:
    def test_records_in_order_with_pid_and_fields(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record("pool.start", workers=2)
        recorder.record("task.send", "shard", shard=0)
        events = recorder.events()
        assert [e["category"] for e in events] == ["pool.start", "task.send"]
        assert events[0]["pid"] == os.getpid()
        assert events[0]["fields"] == {"workers": 2}
        assert events[1]["message"] == "shard"
        assert events[1]["ts_ns"] >= events[0]["ts_ns"]
        assert len(recorder) == 2
        assert recorder.dropped == 0

    def test_ring_wraps_oldest_first(self):
        recorder = FlightRecorder(capacity=4)
        for n in range(6):
            recorder.record("tick", n=n)
        assert len(recorder) == 4
        assert recorder.dropped == 2
        assert [e["fields"]["n"] for e in recorder.events()] == [2, 3, 4, 5]

    def test_clear_resets_everything(self):
        recorder = FlightRecorder(capacity=2)
        recorder.record("tick")
        recorder.record("tick")
        recorder.record("tick")
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.dropped == 0
        assert recorder.events() == []

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_enabled_is_a_class_flag(self):
        # loop call sites branch on this (RA601 discipline); it must be
        # a plain attribute, not a property doing work
        assert FlightRecorder.enabled is True
        assert FLIGHT_RECORDER.enabled is True


class TestDumpText:
    def test_empty_dump(self):
        assert FlightRecorder().dump_text() == "(flight recorder empty)"

    def test_lines_are_relative_ms_oldest_first(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record("pool.start", workers=3)
        recorder.record("task.send", shard=1)
        lines = recorder.dump_text().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("+")
        assert "pool.start" in lines[0] and "workers=3" in lines[0]
        assert "task.send" in lines[1] and "shard=1" in lines[1]

    def test_wrap_header_and_limit(self):
        recorder = FlightRecorder(capacity=3)
        for n in range(5):
            recorder.record("tick", n=n)
        dump = recorder.dump_text()
        assert dump.splitlines()[0] == "(... 2 earlier events overwritten)"
        limited = recorder.dump_text(limit=1)
        assert "n=4" in limited
        assert "n=3" not in limited


class TestCrashAttachment:
    def test_execution_error_carries_flight_log(self):
        from repro.parallel import WorkerPool

        bad_task = {
            "query": "E1=E(a,b)",
            "algorithm": "generic",
            "index": "sonic",
            "engine": "tuple",
            "order": None,
            "atom_order": None,
            "dynamic_seed": True,
            "index_kwargs": {},
            "relations": {},
            "shard": 0,
            "signature": ("bad", 0),
            "materialize": False,
            "with_counters": False,
        }
        with WorkerPool(1) as pool:
            with pytest.raises(ExecutionError) as excinfo:
                pool.run([bad_task])
        flight_log = excinfo.value.flight_log
        assert isinstance(flight_log, str)
        assert "pool.error" in flight_log
        assert "task.send" in flight_log

    def test_default_attribute_is_none(self):
        assert ExecutionError("boom").flight_log is None
