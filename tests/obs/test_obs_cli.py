"""The ``python -m repro.obs`` CLI: demos, exports, and error paths."""

import json

import pytest

pytest.importorskip("numpy")

from repro.obs.cli import main
from repro.obs.profile import validate_profile


class TestDemoRuns:
    def test_triangle_demo_prints_report(self, capsys):
        assert main(["--demo", "triangle"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("EXPLAIN ANALYZE")
        assert "counters:" in out

    def test_exports_validate(self, tmp_path, capsys):
        json_out = tmp_path / "profile.json"
        trace_out = tmp_path / "trace.json"
        assert main(["--demo", "triangle", "--quiet",
                     "--json", str(json_out),
                     "--trace", str(trace_out)]) == 0
        assert capsys.readouterr().out == ""

        payload = json.loads(json_out.read_text())
        validate_profile(payload)
        assert payload["algorithm"] == "generic_join"

        doc = json.loads(trace_out.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["traceEvents"], "trace must carry at least one span"
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "ts", "dur", "pid", "tid", "cat"}

    def test_explain_renders_the_stage_tree(self, capsys):
        assert main(["--demo", "triangle", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "algorithm=unified" in out
        assert "stage tree:" in out
        assert "stage root:" in out

    def test_explain_keeps_an_explicit_algorithm(self, capsys):
        assert main(["--demo", "triangle", "--explain",
                     "--algorithm", "generic"]) == 0
        out = capsys.readouterr().out
        assert "algorithm=generic_join" in out
        assert "stage tree:" not in out

    def test_explain_json_carries_stages(self, tmp_path):
        json_out = tmp_path / "profile.json"
        assert main(["--demo", "triangle", "--explain", "--quiet",
                     "--json", str(json_out)]) == 0
        payload = json.loads(json_out.read_text())
        validate_profile(payload)
        assert payload["stages"]
        assert payload["stages"][0]["label"] == "root"

    def test_engine_flag_reaches_the_profile(self, tmp_path):
        json_out = tmp_path / "profile.json"
        assert main(["--demo", "triangle", "--quiet", "--engine", "batch",
                     "--json", str(json_out)]) == 0
        payload = json.loads(json_out.read_text())
        assert payload["engine"] == "batch"


class TestQueryFlags:
    def test_query_with_csv_relations(self, tmp_path, capsys):
        csv = tmp_path / "edges.csv"
        csv.write_text("src,dst\n0,1\n1,2\n2,0\n")
        binding = f"E1={csv}"
        assert main(["--query", "E1=E(a,b), E2=E(b,c), E3=E(c,a)",
                     "--relation", binding,
                     "--relation", f"E2={csv}",
                     "--relation", f"E3={csv}"]) == 0
        assert "results=3" in capsys.readouterr().out

    def test_spec_file(self, tmp_path, capsys):
        csv = tmp_path / "edges.csv"
        csv.write_text("src,dst\n0,1\n1,2\n2,0\n")
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "query": "E1=E(a,b), E2=E(b,c), E3=E(c,a)",
            "relations": {"E1": str(csv), "E2": str(csv), "E3": str(csv)},
            "algorithm": "leapfrog",
        }))
        assert main(["--spec", str(spec), "--quiet"]) == 0


class TestErrorPaths:
    def test_no_workload_is_usage_error(self, capsys):
        assert main([]) == 2
        assert "exactly one of" in capsys.readouterr().err

    def test_two_workloads_is_usage_error(self, tmp_path):
        assert main(["--demo", "triangle", "--query", "E1=E(a,b)"]) == 2

    def test_query_without_relations(self):
        with pytest.raises(SystemExit):
            main(["--query", "E1=E(a,b)"])
