"""Prometheus text exposition: Metrics.to_prometheus_text + the registry."""

from repro.obs.metrics import METRICS_REGISTRY, Metrics, MetricsRegistry


def sample_metrics():
    metrics = Metrics()
    metrics.inc("join.emitted", 42)
    metrics.inc("probe.lookups", 7)
    metrics.observe("batch.width", 3.0)
    metrics.observe("batch.width", 5.0)
    return metrics


class TestExpositionText:
    def test_counters_render_with_type_lines(self):
        text = sample_metrics().to_prometheus_text()
        assert "# TYPE repro_join_emitted counter" in text
        assert "repro_join_emitted 42" in text
        assert "repro_probe_lookups 7" in text
        assert text.endswith("\n")

    def test_histograms_expand_to_summary_series(self):
        lines = sample_metrics().to_prometheus_text().splitlines()
        assert "# TYPE repro_batch_width summary" in lines
        assert "repro_batch_width_count 2" in lines
        assert "repro_batch_width_sum 8.0" in lines
        assert "repro_batch_width_min 3.0" in lines
        assert "repro_batch_width_max 5.0" in lines

    def test_empty_registry_renders_empty(self):
        assert Metrics().to_prometheus_text() == ""

    def test_name_sanitization(self):
        metrics = Metrics()
        metrics.inc("shard-0.build/ns", 1)
        metrics.inc("0weird", 2)
        text = metrics.to_prometheus_text()
        assert "repro_shard_0_build_ns 1" in text
        # a sanitized name must never start with a digit
        assert "repro__0weird 2" in text
        assert "_0weird 2" in metrics.to_prometheus_text(prefix="")

    def test_labels_attach_to_every_sample_and_escape(self):
        metrics = Metrics()
        metrics.inc("join.emitted", 1)
        metrics.observe("batch.width", 2.0)
        text = metrics.to_prometheus_text(
            labels={"source": 'a"b\\c', "shard": "0"})
        expected = '{shard="0",source="a\\"b\\\\c"}'
        assert f"repro_join_emitted{expected} 1" in text
        assert f"repro_batch_width_count{expected} 1" in text


class TestRegistry:
    def test_register_scrape_with_source_labels(self):
        registry = MetricsRegistry()
        session = registry.register("session")
        session.inc("join.emitted", 3)
        pool = Metrics()
        pool.inc("parallel.shards", 2)
        registry.register("pool", pool)
        text = registry.scrape()
        assert 'repro_join_emitted{source="session"} 3' in text
        assert 'repro_parallel_shards{source="pool"} 2' in text

    def test_reregister_replaces_unregister_drops(self):
        registry = MetricsRegistry()
        first = registry.register("pool")
        first.inc("x", 1)
        second = registry.register("pool")
        assert registry.sources()["pool"] is second
        assert "x 1" not in registry.scrape(prefix="")
        registry.unregister("pool")
        registry.unregister("pool")  # idempotent
        assert registry.sources() == {}
        assert registry.scrape() == ""

    def test_snapshot_folds_all_sources(self):
        registry = MetricsRegistry()
        registry.register("a").inc("join.emitted", 3)
        source_b = registry.register("b")
        source_b.inc("join.emitted", 4)
        source_b.observe("batch.width", 1.5)
        merged = registry.snapshot()
        assert merged.get("join.emitted") == 7
        assert merged.histograms()["batch.width"]["count"] == 1

    def test_process_wide_default_exists(self):
        assert isinstance(METRICS_REGISTRY, MetricsRegistry)
        name = "test.exposition.tmp"
        source = METRICS_REGISTRY.register(name)
        try:
            source.inc("alive", 1)
            assert f'repro_alive{{source="{name}"}} 1' in \
                METRICS_REGISTRY.scrape()
        finally:
            METRICS_REGISTRY.unregister(name)
