"""Unit tests for the cross-process trace plumbing.

Calibration math, span rebasing, the wire form of a
:class:`TraceContext`, the shard-statistics helpers, and the
``sharding`` arm of the profile schema validator.
"""

import pytest

from repro.obs.distributed import (
    TraceContext,
    calibrate_clock_offset,
    rebase_spans,
)
from repro.obs.profile import (
    ProfileSchemaError,
    shard_distribution,
    straggler_ratio,
    validate_profile,
)


class TestTraceContext:
    def test_create_and_wire_roundtrip(self):
        context = TraceContext.create(parent_span="shard_fanout")
        assert len(context.trace_id) == 16
        int(context.trace_id, 16)  # hex
        assert context.issued_ns > 0
        wire = context.to_wire()
        assert wire == {"trace_id": context.trace_id,
                        "parent_span": "shard_fanout",
                        "issued_ns": context.issued_ns}
        assert TraceContext.from_wire(wire) == context

    def test_from_wire_tolerates_missing(self):
        assert TraceContext.from_wire(None) is None
        assert TraceContext.from_wire({}) is None

    def test_each_context_gets_its_own_id(self):
        ids = {TraceContext.create().trace_id for _ in range(8)}
        assert len(ids) == 8


class TestCalibration:
    def test_aligned_clocks_symmetric_transport(self):
        # parent sends at 0, worker receives at 10 (10ns transit), works
        # until 20, parent collects at 30: same clock, offset 0
        assert calibrate_clock_offset(0, 10, 20, 30) == 0

    def test_worker_clock_ahead_is_negative_offset(self):
        # worker clock runs 1000ns ahead of the parent's; transit 10ns
        # each way: offset recovers parent - worker = -1000 exactly
        assert calibrate_clock_offset(0, 1010, 1020, 30) == -1000

    def test_worker_clock_behind_is_positive_offset(self):
        assert calibrate_clock_offset(5000, 4010, 4020, 5030) == 1000

    def test_any_missing_stamp_degrades_to_zero(self):
        assert calibrate_clock_offset(None, 10, 20, 30) == 0
        assert calibrate_clock_offset(0, None, 20, 30) == 0
        assert calibrate_clock_offset(0, 10, None, 30) == 0
        assert calibrate_clock_offset(0, 10, 20, None) == 0


class TestRebaseSpans:
    def test_rebase_onto_parent_origin(self):
        raw = [("probe", 5_000, 2_000, 1, {"rows": 3})]
        spans = rebase_spans(raw, offset_ns=-1_000, origin_ns=1_000)
        assert spans == [{"name": "probe", "ts_us": 3.0, "dur_us": 2.0,
                          "depth": 1, "args": {"rows": 3}}]

    def test_preserves_order_and_copies_args(self):
        args = {"k": 1}
        raw = [("a", 0, 10, 0, args), ("b", 100, 10, 1, args)]
        spans = rebase_spans(raw, offset_ns=0, origin_ns=0)
        assert [s["name"] for s in spans] == ["a", "b"]
        spans[0]["args"]["k"] = 2
        assert args["k"] == 1


class TestShardStats:
    def test_distribution(self):
        assert shard_distribution([3.0, 1.0, 2.0]) == {
            "min": 1.0, "median": 2.0, "max": 3.0, "total": 6.0}
        assert shard_distribution([]) == {
            "min": 0, "median": 0, "max": 0, "total": 0}

    def test_straggler_ratio(self):
        assert straggler_ratio([1.0, 1.0, 4.0]) == 4.0
        assert straggler_ratio([2.0, 2.0]) == 1.0
        assert straggler_ratio([]) == 1.0
        assert straggler_ratio([0.0, 0.0]) == 1.0  # zero median guard


class TestShardingSchema:
    @pytest.fixture()
    def payload(self):
        # minimal-but-real: produced by an actual tiny sharded run
        from repro.joins import join
        from repro.planner.query import parse_query
        from repro.storage.relation import Relation

        edges = Relation("E", ("src", "dst"),
                         [(a, (a + 1) % 5) for a in range(5)] + [(1, 0)])
        query = parse_query("E1=E(a,b), E2=E(b,c), E3=E(c,a)")
        result = join(query, {"E1": edges, "E2": edges, "E3": edges},
                      profile=True, parallel=2)
        return result.profile.as_dict()

    def test_real_payload_validates(self, payload):
        validate_profile(payload)

    @pytest.mark.parametrize("mutate,match", [
        (lambda s: s.update(workers=0), "workers"),
        (lambda s: s.update(shards=[]), "shards"),
        (lambda s: s.update(attribute=7), "attribute"),
        (lambda s: s["shards"][0].pop("count"), "count"),
        (lambda s: s["balance"].update(straggler_ratio=0.5),
         "straggler_ratio"),
    ])
    def test_tampered_sharding_is_rejected(self, payload, mutate, match):
        mutate(payload["sharding"])
        with pytest.raises(ProfileSchemaError, match=match):
            validate_profile(payload)

    def test_sharding_is_optional(self, payload):
        payload.pop("sharding")
        validate_profile(payload)
