"""Counter accuracy: profile counters must match brute-force ground truth.

The pinned workload is the Fig 1 triangle query over a seeded random
graph.  For the Generic Join order ``(a, b, c)`` the per-level survivor
counts have a closed-form brute force:

* level ``a`` — values appearing as a source (``E1`` prefix) *and* as a
  destination (``E3 = E(c, a)`` is trie-keyed ``(a, c)``, so its first
  key column is the edge destination);
* level ``b`` — edges ``(a, b)`` whose ``a`` survived level 0 and whose
  ``b`` is some edge's source (``E2`` prefix);
* level ``c`` — completed triangles: ``(b, c)`` and ``(c, a)`` both
  edges.

Both Generic Join engines must report these counts *exactly*, agree with
each other candidate-for-candidate, and the emitted-tuple counter must
equal the brute-force triangle count.
"""

import pytest

pytest.importorskip("numpy")

from repro.data.graphs import random_edge_relation
from repro.joins.executor import join
from repro.obs.observer import JoinObserver
from repro.obs.profile import validate_profile
from repro.planner.query import parse_query

QUERY = parse_query("E1=E(a,b), E2=E(b,c), E3=E(c,a)")


@pytest.fixture(scope="module")
def edges():
    return random_edge_relation(100, 500, seed=13)


@pytest.fixture(scope="module")
def truth(edges):
    """Brute-force (survivors per level, triangle count)."""
    edge_set = set(tuple(row) for row in edges)
    sources = {s for s, _ in edge_set}
    dests = {d for _, d in edge_set}
    a_surv = sources & dests
    b_surv = [(a, b) for a, b in edge_set if a in a_surv and b in sources]
    triangles = [
        (a, b, c)
        for a, b in b_surv
        for c in {d for s, d in edge_set if s == b}
        if (c, a) in edge_set
    ]
    return {
        "survivors": [len(a_surv), len(b_surv), len(triangles)],
        "count": len(triangles),
    }


def profiled(edges, **options):
    result = join(QUERY, {"E1": edges, "E2": edges, "E3": edges},
                  profile=True, **options)
    assert result.profile is not None
    return result


class TestGroundTruth:
    @pytest.mark.parametrize("engine", ["tuple", "batch"])
    def test_survivors_match_brute_force(self, edges, truth, engine):
        result = profiled(edges, algorithm="generic", engine=engine)
        profile = result.profile
        assert [lv.survivors for lv in profile.levels] == truth["survivors"]
        assert result.count == truth["count"]
        assert profile.result_count == truth["count"]

    @pytest.mark.parametrize("engine", ["tuple", "batch"])
    def test_emitted_counter_matches_brute_force(self, edges, truth, engine):
        profile = profiled(edges, algorithm="generic", engine=engine).profile
        assert profile.counters["join.emitted"] == truth["count"]
        # the last level's survivors ARE the emitted tuples
        assert profile.levels[-1].survivors == truth["count"]

    def test_hashtrie_survivors_match_brute_force(self, edges, truth):
        profile = profiled(edges, algorithm="hashtrie").profile
        assert [lv.survivors for lv in profile.levels] == truth["survivors"]

    def test_leapfrog_emits_the_truth(self, edges, truth):
        result = profiled(edges, algorithm="leapfrog")
        assert result.count == truth["count"]
        assert result.profile.levels[-1].survivors == truth["count"]

    def test_binary_final_stage_matches_truth(self, edges, truth):
        result = profiled(edges, algorithm="binary")
        assert result.count == truth["count"]
        assert result.profile.levels[-1].survivors == truth["count"]


class TestEngineConsistency:
    def test_tuple_and_batch_report_identical_levels(self, edges):
        tuple_levels = profiled(edges, algorithm="generic",
                                engine="tuple").profile.levels
        batch_levels = profiled(edges, algorithm="generic",
                                engine="batch").profile.levels
        assert [(lv.label, lv.candidates, lv.survivors)
                for lv in tuple_levels] == \
            [(lv.label, lv.candidates, lv.survivors) for lv in batch_levels]

    def test_rollup_counters_agree_across_engines(self, edges):
        for engine in ("tuple", "batch"):
            profile = profiled(edges, algorithm="generic",
                               engine=engine).profile
            assert profile.counters["level.survivors"] == sum(
                lv.survivors for lv in profile.levels)
            assert profile.counters["level.candidates"] == sum(
                lv.candidates for lv in profile.levels)


class TestProfileShape:
    @pytest.mark.parametrize("options", [
        {"algorithm": "generic", "engine": "tuple"},
        {"algorithm": "generic", "engine": "batch"},
        {"algorithm": "binary"},
        {"algorithm": "hashtrie"},
        {"algorithm": "leapfrog"},
        {"algorithm": "auto"},
    ])
    def test_every_algorithm_validates(self, edges, options):
        profile = profiled(edges, **options).profile
        validate_profile(profile.as_dict())

    def test_optimizer_estimated_vs_actual(self, edges, truth):
        profile = profiled(edges, algorithm="generic").profile
        opt = profile.optimizer
        assert opt is not None
        assert opt["estimated"]["agm_bound"] > 0
        assert opt["actual"]["results"] == truth["count"]
        assert opt["actual"]["peak_level_cardinality"] == max(
            lv.survivors for lv in profile.levels)

    def test_build_breakdown_covers_every_atom(self, edges):
        profile = profiled(edges, algorithm="generic").profile
        assert set(profile.build_breakdown) == {"E1", "E2", "E3"}
        assert profile.counters["build.indexes"] == 3

    def test_render_mentions_every_level(self, edges):
        text = profiled(edges, algorithm="generic").profile.render()
        assert text.startswith("EXPLAIN ANALYZE")
        for label in ("a", "b", "c"):
            assert f"└─ {label}:" in text

    def test_chrome_trace_has_probe_span(self, edges):
        doc = profiled(edges, algorithm="generic").profile.to_chrome_trace()
        names = {event["name"] for event in doc["traceEvents"]}
        assert "probe" in names
        assert "build_index" in names


class TestDisabledPath:
    def test_unprofiled_run_has_no_profile(self, edges):
        result = join(QUERY, {"E1": edges, "E2": edges, "E3": edges})
        assert result.profile is None

    def test_disabled_observer_is_identical_to_absent(self, edges, truth):
        result = join(QUERY, {"E1": edges, "E2": edges, "E3": edges},
                      obs=JoinObserver.disabled())
        assert result.profile is None
        assert result.count == truth["count"]
