"""Metrics registry: counters, histograms, merge, and the null object."""

from repro.obs.metrics import Metrics, NULL_METRICS, NullMetrics


class TestCounters:
    def test_inc_creates_and_accumulates(self):
        m = Metrics()
        m.inc("probe.lookups")
        m.inc("probe.lookups", 4)
        assert m.get("probe.lookups") == 5

    def test_get_untouched_is_zero(self):
        assert Metrics().get("never") == 0

    def test_as_dict_sorts_counters(self):
        m = Metrics()
        m.inc("b.second")
        m.inc("a.first")
        assert list(m.as_dict()["counters"]) == ["a.first", "b.second"]


class TestHistograms:
    def test_observe_tracks_count_total_min_max_mean(self):
        m = Metrics()
        for value in (4, 1, 7):
            m.observe("batch.candidates_size", value)
        h = m.histograms()["batch.candidates_size"]
        assert h == {"count": 3, "total": 12, "min": 1, "max": 7, "mean": 4.0}

    def test_single_observation(self):
        m = Metrics()
        m.observe("x", 9)
        h = m.histograms()["x"]
        assert (h["count"], h["min"], h["max"], h["mean"]) == (1, 9, 9, 9.0)


class TestMerge:
    def test_merge_folds_counters_and_histograms(self):
        a, b = Metrics(), Metrics()
        a.inc("shared", 2)
        a.observe("sizes", 10)
        b.inc("shared", 3)
        b.inc("only_b")
        b.observe("sizes", 2)
        a.merge(b)
        assert a.get("shared") == 5
        assert a.get("only_b") == 1
        h = a.histograms()["sizes"]
        assert (h["count"], h["total"], h["min"], h["max"]) == (2, 12, 2, 10)


class TestNullMetrics:
    def test_enabled_flags(self):
        assert Metrics.enabled is True
        assert NullMetrics.enabled is False
        assert NULL_METRICS.enabled is False

    def test_null_records_nothing(self):
        NULL_METRICS.inc("anything", 100)
        NULL_METRICS.observe("anything", 100)
        assert NULL_METRICS.get("anything") == 0
        assert NULL_METRICS.counters == {}
        assert NULL_METRICS.histograms() == {}

    def test_null_shares_the_metrics_surface(self):
        # consumers never test for None: both classes answer the same calls
        assert NULL_METRICS.as_dict() == {"counters": {}, "histograms": {}}
