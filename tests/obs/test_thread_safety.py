"""Concurrent Metrics and Tracer: exact totals, per-thread span nesting."""

from __future__ import annotations

import threading

from repro.obs.metrics import Metrics
from repro.obs.trace import Tracer

THREADS = 8
JOIN_TIMEOUT = 60.0


def run_threads(worker, count=THREADS):
    barrier = threading.Barrier(count)
    errors: list = []

    def wrapped(tid):
        try:
            barrier.wait(timeout=JOIN_TIMEOUT)
            worker(tid)
        except Exception as exc:
            errors.append((tid, repr(exc)))

    threads = [threading.Thread(target=wrapped, args=(tid,), daemon=True)
               for tid in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=JOIN_TIMEOUT)
    assert not any(t.is_alive() for t in threads)
    assert errors == []


class TestMetricsUnderConcurrency:
    def test_concurrent_inc_totals_exact(self):
        # the read-modify-write on a dict slot is not atomic; without
        # the internal lock this loses increments
        metrics = Metrics()
        per_thread = 5000

        def worker(tid):
            for _ in range(per_thread):
                metrics.inc("shared")
                metrics.inc(f"mine.{tid}", 2)

        run_threads(worker)
        assert metrics.get("shared") == THREADS * per_thread
        for tid in range(THREADS):
            assert metrics.get(f"mine.{tid}") == 2 * per_thread

    def test_concurrent_observe_histogram_exact(self):
        metrics = Metrics()
        per_thread = 2000

        def worker(tid):
            for i in range(per_thread):
                metrics.observe("lat", tid * per_thread + i)

        run_threads(worker)
        hist = metrics.histograms()["lat"]
        total_obs = THREADS * per_thread
        assert hist["count"] == total_obs
        assert hist["min"] == 0
        assert hist["max"] == total_obs - 1
        assert hist["total"] == total_obs * (total_obs - 1) // 2

    def test_concurrent_merge_into_shared_registry(self):
        shared = Metrics()

        def worker(tid):
            local = Metrics()
            for _ in range(1000):
                local.inc("runs")
                local.observe("v", tid)
            shared.merge(local)

        run_threads(worker)
        assert shared.get("runs") == THREADS * 1000
        assert shared.histograms()["v"]["count"] == THREADS * 1000

    def test_merge_does_not_self_deadlock_cross(self):
        a, b = Metrics(), Metrics()
        a.inc("x")
        b.inc("x")

        def worker(tid):
            for _ in range(300):
                if tid % 2:
                    a.merge(b)
                else:
                    b.merge(a)

        run_threads(worker, count=4)  # finishing at all is the assertion


class TestTracerUnderConcurrency:
    def test_span_stack_is_thread_local(self):
        # depths must reflect each thread's own nesting, not a shared
        # stack torn by interleaved enters/exits
        tracer = Tracer()
        per_thread = 200

        def worker(tid):
            for i in range(per_thread):
                with tracer.span(f"outer.{tid}", i=i):
                    with tracer.span(f"inner.{tid}", i=i):
                        pass

        run_threads(worker)
        spans = tracer.as_dicts()
        assert len(spans) == THREADS * per_thread * 2
        for span in spans:
            expected_depth = 0 if span["name"].startswith("outer.") else 1
            assert span["depth"] == expected_depth, span

    def test_no_spans_lost_under_concurrent_append(self):
        tracer = Tracer()
        per_thread = 1000

        def worker(tid):
            for i in range(per_thread):
                tracer.add_span(f"t{tid}", i, 1)

        run_threads(worker)
        spans = tracer.as_dicts()
        assert len(spans) == THREADS * per_thread
        by_thread = {}
        for span in spans:
            by_thread[span["name"]] = by_thread.get(span["name"], 0) + 1
        assert by_thread == {f"t{tid}": per_thread
                             for tid in range(THREADS)}

    def test_exception_unwinds_this_threads_stack_only(self):
        tracer = Tracer()

        def worker(tid):
            for _ in range(100):
                try:
                    with tracer.span("risky"):
                        raise ValueError("boom")
                except ValueError:
                    pass
                with tracer.span("after"):
                    pass

        run_threads(worker)
        assert all(span["depth"] == 0 for span in tracer.as_dicts())
