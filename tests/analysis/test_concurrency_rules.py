"""RA7xx concurrency rules: detection, suppression, and fixture coverage."""

from pathlib import Path

import pytest

from repro.analysis import analyze_paths, analyze_source

FIXTURES = Path(__file__).parent / "fixtures" / "concurrency"

ANY_PATH = "src/repro/anywhere.py"


def rules_at(source, path=ANY_PATH):
    return {f.rule for f in analyze_source(source, path)}


def ra7_at(source, path=ANY_PATH):
    return {r for r in rules_at(source, path) if r.startswith("RA7")}


class TestSharedStateDetection:
    def test_module_registry_write_flagged(self):
        findings = analyze_source(
            "_CACHE = {}\n"
            "def put(k, v):\n"
            "    _CACHE[k] = v\n",
            ANY_PATH,
        )
        assert [(f.rule, f.line) for f in findings
                if f.rule == "RA701"] == [("RA701", 3)]

    def test_lock_guarded_global_write_is_clean(self):
        assert "RA701" not in rules_at(
            "import threading\n"
            "_CACHE = {}\n"
            "_LOCK = threading.Lock()\n"
            "def put(k, v):\n"
            "    with _LOCK:\n"
            "        _CACHE[k] = v\n"
        )

    def test_local_shadow_not_flagged(self):
        assert "RA701" not in rules_at(
            "_CACHE = {}\n"
            "def scratch(k, v):\n"
            "    _CACHE = {}\n"   # local rebind shadows the global
            "    _CACHE[k] = v\n"
            "    return _CACHE\n"
        )

    def test_class_body_container_flagged(self):
        assert "RA702" in ra7_at(
            "class C:\n"
            "    shared = []\n"
            "    def add(self, x):\n"
            "        self.shared.append(x)\n"
        )

    def test_init_rebind_is_clean(self):
        assert "RA702" not in rules_at(
            "class C:\n"
            "    shared = []\n"
            "    def __init__(self):\n"
            "        self.shared = []\n"  # per-instance rebind
            "    def add(self, x):\n"
            "        self.shared.append(x)\n"
        )


class TestLockDiscipline:
    ANNOTATED = (
        "import threading\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._items = []  # repro: shared[lock=_lock]\n"
    )

    def test_explicit_violation_is_error(self):
        findings = analyze_source(
            self.ANNOTATED +
            "    def add(self, x):\n"
            "        self._items.append(x)\n",
            ANY_PATH,
        )
        ra703 = [f for f in findings if f.rule == "RA703"]
        assert len(ra703) == 1
        assert str(ra703[0].severity) == "error"

    def test_guarded_write_is_clean(self):
        assert "RA703" not in rules_at(
            self.ANNOTATED +
            "    def add(self, x):\n"
            "        with self._lock:\n"
            "            self._items.append(x)\n"
        )

    def test_inferred_designation_is_warning(self):
        findings = analyze_source(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._items = []\n"
            "    def add(self, x):\n"
            "        with self._lock:\n"
            "            self._items.append(x)\n"
            "    def sneak(self, x):\n"
            "        self._items.append(x)\n",
            ANY_PATH,
        )
        ra703 = [f for f in findings if f.rule == "RA703"]
        assert [(f.line, str(f.severity)) for f in ra703] == [
            (10, "warning")]

    def test_borrows_annotation_satisfies_ra703(self):
        assert "RA703" not in rules_at(
            self.ANNOTATED +
            "    def _flush(self):  # repro: borrows-lock[_lock]\n"
            "        self._items.clear()\n"
        )

    def test_acquire_without_release_flagged(self):
        assert "RA704" in ra7_at(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def leak(self):\n"
            "        self._lock.acquire()\n"
        )

    def test_release_in_finally_is_clean(self):
        assert "RA704" not in rules_at(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def safe(self, work):\n"
            "        self._lock.acquire()\n"
            "        try:\n"
            "            work()\n"
            "        finally:\n"
            "            self._lock.release()\n"
        )

    def test_opposite_nesting_orders_flagged(self):
        assert "RA705" in ra7_at(
            "import threading\n"
            "a = threading.Lock()\n"
            "b = threading.Lock()\n"
            "def f(w):\n"
            "    with a:\n"
            "        with b:\n"
            "            w()\n"
            "def g(w):\n"
            "    with b:\n"
            "        with a:\n"
            "            w()\n"
        )

    def test_consistent_order_is_clean(self):
        assert "RA705" not in rules_at(
            "import threading\n"
            "a = threading.Lock()\n"
            "b = threading.Lock()\n"
            "def f(w):\n"
            "    with a:\n"
            "        with b:\n"
            "            w()\n"
            "def g(w):\n"
            "    with a:\n"
            "        with b:\n"
            "            w()\n"
        )


class TestEntryPointsAndBorrows:
    def test_unsafe_public_method_flagged(self):
        assert "RA706" in ra7_at(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._d = {}  # repro: shared[lock=_lock]\n"
            "    def put(self, k, v):\n"
            "        self._d[k] = v  # repro: noqa[RA703]\n"
        )

    def test_unannotated_class_not_classified(self):
        # RA706 is opt-in via the shared[] annotation; a bare class
        # stays out of scope (RA702 handles the egregious cases)
        assert "RA706" not in rules_at(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._d = {}\n"
            "    def put(self, k, v):\n"
            "        self._d[k] = v\n"
        )

    def test_borrowed_call_without_lock_is_error(self):
        findings = analyze_source(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._d = {}  # repro: shared[lock=_lock]\n"
            "    def _wipe(self):  # repro: borrows-lock[_lock]\n"
            "        self._d.clear()\n"
            "    def reset(self):\n"
            "        self._wipe()\n",
            ANY_PATH,
        )
        ra707 = [f for f in findings if f.rule == "RA707"]
        assert len(ra707) == 1
        assert str(ra707[0].severity) == "error"
        assert ra707[0].line == 9

    def test_borrowed_call_under_lock_is_clean(self):
        assert "RA707" not in rules_at(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._d = {}  # repro: shared[lock=_lock]\n"
            "    def _wipe(self):  # repro: borrows-lock[_lock]\n"
            "        self._d.clear()\n"
            "    def reset(self):\n"
            "        with self._lock:\n"
            "            self._wipe()\n"
        )


class TestCheckThenAct:
    RACY = (
        "_d = {}\n"
        "def f(k, build):\n"
        "    if k not in _d:\n"
        "        _d[k] = build(k)  # repro: noqa[RA701]\n"
        "    return _d[k]\n"
    )

    def test_race_flagged_only_under_threading(self):
        assert "RA708" in ra7_at("import threading\n" + self.RACY)
        # same shape without threading anywhere in the module: silent
        assert "RA708" not in rules_at(self.RACY)

    def test_held_lock_is_clean(self):
        assert "RA708" not in rules_at(
            "import threading\n"
            "_d = {}\n"
            "_lock = threading.Lock()\n"
            "def f(k, build):\n"
            "    with _lock:\n"
            "        if k not in _d:\n"
            "            _d[k] = build(k)\n"
            "        return _d[k]\n"
        )

    def test_different_keys_not_confused(self):
        assert "RA708" not in rules_at(
            "import threading\n"
            "_d = {}\n"
            "def f(k, j):\n"
            "    if k in _d:\n"
            "        return _d[j]\n"   # different key: no check-then-act
            "    return None\n"
        )


class TestSuppressionAndFixtures:
    def test_noqa_silences_concurrency_rule(self):
        assert ra7_at(
            "_CACHE = {}\n"
            "def put(k, v):\n"
            "    _CACHE[k] = v  # repro: noqa[RA701] -- tested memo\n"
        ) == set()

    EXPECTED = {
        "bad_global_registry.py": {"RA701"},
        "bad_class_state.py": {"RA702"},
        "bad_unguarded_write.py": {"RA703"},
        "bad_acquire_release.py": {"RA704"},
        "bad_lock_order.py": {"RA705"},
        "bad_entrypoint.py": {"RA706"},
        "bad_borrowed_lock.py": {"RA707"},
        "bad_check_then_act.py": {"RA708"},
    }

    @pytest.mark.parametrize("relative,expected", sorted(EXPECTED.items()))
    def test_planted_fixture_caught(self, relative, expected):
        findings = analyze_paths([FIXTURES / relative])
        assert expected <= {f.rule for f in findings}

    def test_concurrency_fixture_tree_fails_as_a_whole(self):
        findings = analyze_paths([FIXTURES])
        got = {f.rule for f in findings}
        assert {f"RA70{i}" for i in range(1, 9)} <= got

    def test_clean_counterexample_stays_clean(self):
        findings = analyze_paths([FIXTURES / "clean_guarded.py"])
        assert [f.rule for f in findings] == []


class TestRegistryCrossCheck:
    """Every registered RA7xx rule must have a fixture that fires it."""

    def test_every_ra7_rule_has_a_firing_fixture(self):
        from repro.analysis.rules import rule_catalog

        registered = {entry["code"] for entry in rule_catalog()
                      if entry["code"].startswith("RA7")}
        assert registered, "RA7xx rules failed to register"
        covered = set().union(
            *TestSuppressionAndFixtures.EXPECTED.values())
        assert registered == covered

    def test_fixture_table_matches_directory(self):
        on_disk = {p.name for p in FIXTURES.glob("bad_*.py")}
        assert on_disk == set(TestSuppressionAndFixtures.EXPECTED)
