"""RA4xx/RA5xx dataflow rules: detection, refinement, and no-false-positives."""

from pathlib import Path

import pytest

from repro.analysis import analyze_paths, analyze_source

FIXTURES = Path(__file__).parent / "fixtures"

JOIN_PATH = "src/repro/joins/fake.py"  # inside the RA5xx hot-path scope


def rules_at(source, path=JOIN_PATH):
    return {f.rule for f in analyze_source(source, path)}


class TestTypestateDetection:
    def test_use_before_open_is_error(self):
        findings = analyze_source(
            "def f(trie):\n"
            "    it = trie.iterator()\n"
            "    it.next()\n",
            JOIN_PATH,
        )
        assert [(f.rule, str(f.severity)) for f in findings] == [
            ("RA401", "error")]

    def test_may_advance_after_end_is_warning(self):
        findings = analyze_source(
            "def f(trie):\n"
            "    it = trie.iterator()\n"
            "    it.open()\n"
            "    it.next()\n"   # fine: freshly opened
            "    it.next()\n",  # may already be at_end
            JOIN_PATH,
        )
        ra401 = [f for f in findings if f.rule == "RA401"]
        assert len(ra401) == 1
        assert str(ra401[0].severity) == "warning"
        assert ra401[0].line == 5

    def test_guarded_loop_is_clean(self):
        assert rules_at(
            "def f(trie):\n"
            "    it = trie.iterator()\n"
            "    it.open()\n"
            "    while not it.at_end():\n"
            "        use(it.key())\n"
            "        it.next()\n"
            "    it.up()\n"
        ) == set()

    def test_branchy_ascend_imbalance(self):
        findings = analyze_source(
            "def f(index, v):\n"
            "    c = index.cursor()\n"
            "    if c.try_descend(v):\n"
            "        c.ascend()\n"
            "    c.ascend()\n",
            JOIN_PATH,
        )
        assert {(f.rule, f.line) for f in findings} == {("RA402", 5)}

    def test_refined_descend_is_clean(self):
        assert rules_at(
            "def f(index, v):\n"
            "    c = index.cursor()\n"
            "    if c.try_descend(v):\n"
            "        use(c.count())\n"
            "        c.ascend()\n"
        ) == set()

    def test_supports_prefix_guard_refines(self):
        assert rules_at(
            "from repro.indexes import make_index\n"
            "def f(rows, key):\n"
            "    idx = make_index('hashset', 2)\n"
            "    if idx.SUPPORTS_PREFIX:\n"
            "        return idx.prefix_lookup(key)\n"
            "    return None\n"
        ) == set()

    def test_point_index_prefix_is_error(self):
        findings = analyze_source(
            "from repro.indexes import make_index\n"
            "def f(key):\n"
            "    idx = make_index('robinhood', 2)\n"
            "    return idx.prefix_lookup(key)\n",
            JOIN_PATH,
        )
        assert [(f.rule, str(f.severity)) for f in findings] == [
            ("RA403", "error")]

    def test_mutation_after_adapter_handoff(self):
        findings = analyze_source(
            "from repro.core.adapter import IndexAdapter\n"
            "from repro.indexes import make_index\n"
            "def f(rel, order, row):\n"
            "    idx = make_index('sortedtrie', 2)\n"
            "    adapter = IndexAdapter(rel, idx, order)\n"
            "    idx.insert(row)\n"
            "    return adapter\n",
            JOIN_PATH,
        )
        assert {(f.rule, f.line) for f in findings} == {("RA404", 6)}

    def test_insert_before_handoff_is_clean(self):
        # hashtrie: no vectorized build_bulk, so the per-tuple build loop
        # is also outside RA806's scope — typestate is the only family
        # with anything to say, and pre-handoff inserts are fine
        assert rules_at(
            "from repro.core.adapter import IndexAdapter\n"
            "from repro.indexes import make_index\n"
            "def f(rel, order, rows):\n"
            "    idx = make_index('hashtrie', 2)\n"
            "    for row in rows:\n"
            "        idx.insert(row)\n"
            "    return IndexAdapter(rel, idx, order)\n",
            "src/repro/other.py",  # outside RA5xx scope: typestate only
        ) == set()

    def test_alias_assignment_drops_tracking(self):
        # `b = a` de-synchronises the names; neither is reported after
        assert rules_at(
            "def f(trie):\n"
            "    a = trie.iterator()\n"
            "    b = a\n"
            "    b.next()\n",
            "src/repro/other.py",
        ) == set()

    def test_escape_to_unknown_call_drops_tracking(self):
        assert rules_at(
            "def f(trie):\n"
            "    it = trie.iterator()\n"
            "    helper(it)\n"
            "    it.next()\n",  # helper may have opened it
            "src/repro/other.py",
        ) == set()


class TestHotLoopDetection:
    def test_innermost_loop_only(self):
        findings = analyze_source(
            "def f(rows):\n"
            "    acc = []\n"            # outer scope: not hot
            "    for row in rows:\n"
            "        for cell in row:\n"
            "            tmp = [cell]\n"  # innermost: hot
            "            acc.append(tmp)\n"
            "    return acc\n",
            JOIN_PATH,
        )
        ra501 = [f for f in findings if f.rule == "RA501"]
        assert [f.line for f in ra501] == [5]

    def test_recursive_function_body_is_hot(self):
        findings = analyze_source(
            "def walk(node):\n"
            "    children = [c for c in node.children]\n"
            "    for child in children:\n"
            "        walk(child)\n",
            JOIN_PATH,
        )
        assert any(f.rule == "RA501" and f.line == 2 for f in findings)

    def test_scope_excludes_non_hot_paths(self):
        source = (
            "def f(rows):\n"
            "    out = []\n"
            "    for row in rows:\n"
            "        out.append(sorted(row))\n"
            "    return out\n"
        )
        assert "RA502" in rules_at(source, "src/repro/joins/x.py")
        assert "RA502" in rules_at(source, "src/repro/indexes/x.py")
        assert "RA502" not in rules_at(source, "src/repro/planner/x.py")

    def test_dead_store_and_use_before_def(self):
        findings = analyze_source(
            "def f(rows):\n"
            "    scratch = len(rows)\n"  # RA503: never read
            "    total = total + 1\n"    # RA504: unbound read
            "    return total\n",
            "src/repro/anywhere.py",
        )
        assert {(f.rule, f.line) for f in findings} == {
            ("RA503", 2), ("RA504", 3)}

    def test_underscore_stores_not_reported(self):
        assert rules_at(
            "def f(pairs):\n"
            "    total = 0\n"
            "    for value in pairs:\n"
            "        total += value\n"
            "    _ignored = audit(total)\n"
            "    return total\n",
            "src/repro/anywhere.py",
        ) == set()

    def test_maybe_bound_is_not_reported(self):
        # only *definite* use-before-def is RA504; MAYBE stays silent
        assert rules_at(
            "def f(flag):\n"
            "    if flag:\n"
            "        v = 1\n"
            "    return v\n",
            "src/repro/anywhere.py",
        ) == set()


class TestUnguardedObsDetection:
    def test_unguarded_metrics_call_flagged(self):
        findings = analyze_source(
            "def f(rows, metrics):\n"
            "    for row in rows:\n"
            "        metrics.inc('probe')\n"
            "        use(row)\n",
            JOIN_PATH,
        )
        assert [(f.rule, f.line) for f in findings
                if f.rule == "RA601"] == [("RA601", 3)]

    def test_enabled_guard_is_clean(self):
        assert "RA601" not in rules_at(
            "def f(rows, metrics):\n"
            "    for row in rows:\n"
            "        if metrics.enabled:\n"
            "            metrics.inc('probe')\n"
            "        use(row)\n"
        )

    def test_hoisted_flag_is_clean(self):
        assert "RA601" not in rules_at(
            "def f(rows, obs):\n"
            "    obs_enabled = obs.enabled\n"
            "    for row in rows:\n"
            "        if obs_enabled:\n"
            "            obs.metrics.observe('row', row)\n"
            "        use(row)\n"
        )

    def test_else_branch_keeps_outer_guard_state(self):
        findings = analyze_source(
            "def f(rows, metrics):\n"
            "    for row in rows:\n"
            "        if metrics.enabled:\n"
            "            metrics.inc('on')\n"
            "        else:\n"
            "            metrics.inc('off')\n",
            JOIN_PATH,
        )
        assert [f.line for f in findings if f.rule == "RA601"] == [6]

    def test_local_accumulation_is_clean(self):
        assert "RA601" not in rules_at(
            "def f(rows, metrics):\n"
            "    count = 0\n"
            "    for row in rows:\n"
            "        count += 1\n"
            "    metrics.inc('rows', count)\n"
        )

    def test_unguarded_tracer_span_flagged(self):
        findings = analyze_source(
            "def f(rows, tracer):\n"
            "    for row in rows:\n"
            "        with tracer.span('probe'):\n"
            "            use(row)\n",
            JOIN_PATH,
        )
        assert any(f.rule == "RA601" and f.line == 3 for f in findings)

    def test_outer_loop_not_innermost_is_exempt(self):
        # only innermost loops are hot; the outer per-relation loop may
        # pay an obs call per iteration
        assert "RA601" not in rules_at(
            "def f(groups, metrics):\n"
            "    for group in groups:\n"
            "        metrics.inc('group')\n"
            "        for row in group:\n"
            "            use(row)\n"
        )

    def test_scope_excludes_non_hot_paths(self):
        source = (
            "def f(rows, metrics):\n"
            "    for row in rows:\n"
            "        metrics.inc('probe')\n"
        )
        assert "RA601" in rules_at(source, "src/repro/joins/x.py")
        assert "RA601" in rules_at(source, "src/repro/indexes/x.py")
        assert "RA601" in rules_at(source, "src/repro/parallel/x.py")
        assert "RA601" not in rules_at(source, "src/repro/planner/x.py")

    def test_parallel_scope_is_obs_only(self):
        # RA501/RA502 stay scoped to joins/indexes: the fan-out layer
        # allocates per shard, not per binding
        source = (
            "def f(rows):\n"
            "    out = []\n"
            "    for row in rows:\n"
            "        out.append(sorted(row))\n"
            "    return out\n"
        )
        assert "RA502" not in rules_at(source, "src/repro/parallel/x.py")

    def test_flight_recorder_receivers_flagged(self):
        source = (
            "def f(tasks, recorder):\n"
            "    for task in tasks:\n"
            "        recorder.record('task.send', shard=task)\n"
        )
        assert "RA601" in rules_at(source, "src/repro/parallel/x.py")

    def test_exposition_call_flagged(self):
        source = (
            "def f(shards, registry):\n"
            "    out = []\n"
            "    for shard in shards:\n"
            "        out.append(registry.to_prometheus_text())\n"
            "    return out\n"
        )
        assert "RA601" in rules_at(source, "src/repro/parallel/x.py")

    def test_guarded_flight_recorder_clean(self):
        assert "RA601" not in rules_at(
            "def f(tasks, recorder):\n"
            "    for task in tasks:\n"
            "        if recorder.enabled:\n"
            "            recorder.record('task.send', shard=task)\n",
            "src/repro/parallel/x.py",
        )


class TestSuppressionAndFixtures:
    def test_noqa_silences_dataflow_rule(self):
        source = (
            "def f(trie):\n"
            "    it = trie.iterator()\n"
            "    it.next()  # repro: noqa[RA401]\n"
        )
        assert rules_at(source, "src/repro/other.py") == set()

    EXPECTED = {
        "bad_cursor.py": {"RA401"},
        "bad_depth.py": {"RA402"},
        "bad_prefix_flow.py": {"RA403"},
        "bad_freeze.py": {"RA404"},
        "joins/bad_hot_alloc.py": {"RA501"},
        "joins/bad_linear.py": {"RA501", "RA502"},
        "joins/bad_obs_unguarded.py": {"RA601"},
        "parallel/bad_flightrec_unguarded.py": {"RA601"},
        "bad_dead_store.py": {"RA503"},
        "bad_use_before_def.py": {"RA504"},
    }

    @pytest.mark.parametrize("relative,expected",
                             sorted(EXPECTED.items()))
    def test_planted_fixture_caught(self, relative, expected):
        findings = analyze_paths([FIXTURES / "dataflow" / relative])
        assert expected <= {f.rule for f in findings}

    def test_dataflow_fixture_tree_fails_as_a_whole(self):
        findings = analyze_paths([FIXTURES / "dataflow"])
        got = {f.rule for f in findings}
        assert {"RA401", "RA402", "RA403", "RA404",
                "RA501", "RA502", "RA503", "RA504", "RA601"} <= got

    def test_clean_counterexample_stays_clean(self):
        assert analyze_paths([FIXTURES / "clean"]) == []


class TestStaticKnowledgeMatchesRegistry:
    """The rule tables must track the live registry, not a stale copy."""

    def test_point_only_names_match_supports_prefix(self):
        pytest.importorskip("numpy")
        from repro.analysis.dataflow.typestate import (
            INDEX_CLASSES,
            POINT_ONLY_CLASSES,
            POINT_ONLY_NAMES,
        )
        from repro.bench import make_sized_index
        from repro.indexes import registered_indexes

        live_point_only = set()
        live_classes = set()
        for name in registered_indexes():
            index = make_sized_index(name, 2, 4)
            live_classes.add(type(index).__name__)
            if not index.SUPPORTS_PREFIX:
                live_point_only.add(name)
        assert live_point_only == set(POINT_ONLY_NAMES)
        assert live_classes == set(INDEX_CLASSES)
        assert {type(make_sized_index(n, 2, 4)).__name__
                for n in POINT_ONLY_NAMES} == set(POINT_ONLY_CLASSES)
