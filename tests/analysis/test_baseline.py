"""Baseline adoption/staleness semantics and the SARIF renderer."""

import json

import pytest

from repro.analysis.baseline import (
    STALE_BASELINE_RULE,
    apply_baseline,
    gates_with_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.reporters import render_sarif


def finding(path="src/m.py", line=3, rule="RA501",
            severity=Severity.WARNING, message="alloc in hot loop"):
    return Finding(path=path, line=line, column=1, rule=rule,
                   severity=severity, message=message)


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        target = tmp_path / "baseline.json"
        count = write_baseline(
            [finding(), finding(line=9),  # same key twice -> count 2
             finding(rule="RA404", severity=Severity.ERROR,
                     message="mutation after build")],
            target,
        )
        assert count == 2  # two distinct (path, rule, message) keys
        baseline = load_baseline(target)
        assert baseline[("src/m.py", "RA501", "alloc in hot loop")] == 2
        assert baseline[("src/m.py", "RA404", "mutation after build")] == 1

    def test_notes_and_parse_errors_not_adopted(self, tmp_path):
        target = tmp_path / "baseline.json"
        count = write_baseline(
            [finding(severity=Severity.NOTE),
             finding(rule="RA001", severity=Severity.ERROR,
                     message="file does not parse")],
            target,
        )
        assert count == 0

    def test_bad_format_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"version": 99}))
        with pytest.raises(ValueError):
            load_baseline(target)


class TestApply:
    def test_matched_findings_demote_to_notes(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline([finding()], target)
        applied = apply_baseline([finding()], load_baseline(target),
                                 baseline_path=str(target))
        assert len(applied) == 1
        assert applied[0].severity == Severity.NOTE
        assert applied[0].message.endswith("[baselined]")
        assert not gates_with_baseline(applied)

    def test_new_finding_gates(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline([finding()], target)
        new = finding(line=42, message="a different allocation")
        applied = apply_baseline([finding(), new], load_baseline(target),
                                 baseline_path=str(target))
        assert gates_with_baseline(applied)  # warnings gate under a baseline
        surviving = [f for f in applied if f.severity >= Severity.WARNING]
        assert [f.line for f in surviving] == [42]

    def test_multiset_semantics(self, tmp_path):
        # baseline covers ONE occurrence; a second identical one gates
        target = tmp_path / "baseline.json"
        write_baseline([finding()], target)
        applied = apply_baseline([finding(), finding(line=8)],
                                 load_baseline(target),
                                 baseline_path=str(target))
        severities = sorted(str(f.severity) for f in applied)
        assert severities == ["note", "warning"]

    def test_stale_entry_surfaces_as_ra002_note(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline([finding()], target)
        applied = apply_baseline([], load_baseline(target),
                                 baseline_path=str(target))
        assert len(applied) == 1
        stale = applied[0]
        assert stale.rule == STALE_BASELINE_RULE
        assert stale.severity == Severity.NOTE
        assert "stale baseline entry" in stale.message
        assert not gates_with_baseline(applied)  # stale never gates


class TestSarif:
    def test_valid_minimal_log(self):
        log = json.loads(render_sarif([
            finding(),
            finding(rule="RA404", severity=Severity.ERROR,
                    message="mutation after build"),
            finding(rule="RA002", severity=Severity.NOTE,
                    message="stale baseline entry"),
        ]))
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro.analysis"
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] == [
            "RA002", "RA404", "RA501"]
        levels = {r["ruleId"]: r["level"] for r in run["results"]}
        assert levels == {"RA501": "warning", "RA404": "error",
                          "RA002": "note"}
        location = run["results"][0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/m.py"
        assert location["region"]["startLine"] == 3

    def test_rule_index_consistent(self):
        log = json.loads(render_sarif([finding(), finding(rule="RA401")]))
        run = log["runs"][0]
        rules = [r["id"] for r in run["tool"]["driver"]["rules"]]
        for result in run["results"]:
            assert rules[result["ruleIndex"]] == result["ruleId"]

    def test_empty_findings_is_valid(self):
        log = json.loads(render_sarif([]))
        assert log["runs"][0]["results"] == []
