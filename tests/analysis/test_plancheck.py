"""Plan validator: attribute cover, γ permutation, AGM feasibility, schemas."""

import pytest

from repro.analysis.plancheck import check_plan, validate_plan
from repro.errors import PlanValidationError, QueryError
from repro.planner import parse_query, total_order
from repro.planner.qptree import connectivity_order
from repro.storage.relation import Relation

TRIANGLE = "E1=E(a,b), E2=E(b,c), E3=E(c,a)"


def codes(issues) -> set[str]:
    return {issue.code for issue in issues}


class TestAttributeCover:
    def test_sound_query_has_no_issues(self):
        assert validate_plan(parse_query(TRIANGLE)) == []

    def test_uncovered_required_attribute_rejected(self):
        query = parse_query(TRIANGLE)
        issues = validate_plan(query, required_attributes=("a", "b", "z"))
        assert codes(issues) == {"RA301"}
        assert "z" in issues[0].message

    def test_check_plan_raises(self):
        query = parse_query(TRIANGLE)
        with pytest.raises(PlanValidationError, match="RA301"):
            check_plan(query, required_attributes=("nope",))

    def test_plan_validation_error_is_a_query_error(self):
        assert issubclass(PlanValidationError, QueryError)


class TestTotalOrder:
    def test_derived_orders_are_valid_permutations(self):
        query = parse_query(TRIANGLE)
        assert validate_plan(query, order=total_order(query)) == []
        assert validate_plan(query, order=connectivity_order(query)) == []

    def test_missing_attribute(self):
        issues = validate_plan(parse_query(TRIANGLE), order=("a", "b"))
        assert codes(issues) == {"RA302"}

    def test_stray_attribute(self):
        issues = validate_plan(parse_query(TRIANGLE),
                               order=("a", "b", "c", "d"))
        assert codes(issues) == {"RA302"}

    def test_duplicate_attribute(self):
        issues = validate_plan(parse_query(TRIANGLE),
                               order=("a", "b", "b", "c"))
        assert codes(issues) == {"RA302"}


class TestCoverWeights:
    def test_triangle_half_weights_feasible(self):
        query = parse_query(TRIANGLE)
        weights = {"E1": 0.5, "E2": 0.5, "E3": 0.5}
        assert validate_plan(query, weights=weights) == []

    def test_undercovered_vertex(self):
        query = parse_query(TRIANGLE)
        weights = {"E1": 0.5, "E2": 0.25, "E3": 0.0}
        issues = validate_plan(query, weights=weights)
        assert codes(issues) == {"RA303"}

    def test_negative_weight(self):
        query = parse_query(TRIANGLE)
        weights = {"E1": 1.5, "E2": 1.5, "E3": -0.5}
        assert "RA303" in codes(validate_plan(query, weights=weights))

    def test_unknown_edge(self):
        query = parse_query(TRIANGLE)
        weights = {"E1": 1.0, "E2": 1.0, "E3": 1.0, "E9": 0.1}
        assert "RA303" in codes(validate_plan(query, weights=weights))

    def test_lp_solution_passes(self):
        from repro.planner import Hypergraph, fractional_cover

        query = parse_query(TRIANGLE)
        cover = fractional_cover(Hypergraph.from_query(query),
                                 {a.alias: 100 for a in query})
        assert validate_plan(query, weights=cover.weights) == []


class TestRelations:
    def test_consistent_relations_pass(self):
        query = parse_query(TRIANGLE)
        edges = Relation("E", ("src", "dst"), [(0, 1), (1, 2), (2, 0)])
        from repro.joins.executor import resolve_relations

        relations = resolve_relations(
            query, {"E1": edges, "E2": edges, "E3": edges})
        assert validate_plan(query, relations=relations) == []

    def test_missing_relation(self):
        query = parse_query(TRIANGLE)
        issues = validate_plan(query, relations={})
        assert codes(issues) == {"RA304"}
        assert len(issues) == 3

    def test_arity_mismatch(self):
        query = parse_query(TRIANGLE)
        wide = Relation("E", ("a", "b", "x"), [(0, 1, 2)])
        issues = validate_plan(query, relations={"E1": wide})
        assert "RA304" in codes(issues)

    def test_schema_attribute_mismatch(self):
        query = parse_query(TRIANGLE)
        off = Relation("E", ("p", "q"), [(0, 1)])
        issues = validate_plan(query, relations={"E1": off, "E2": off,
                                                 "E3": off})
        assert codes(issues) == {"RA304"}
