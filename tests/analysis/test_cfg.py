"""CFG builder and fixpoint solver: structure, reachability, refinement."""

import ast

from repro.analysis.dataflow.cfg import (
    KIND_ENTRY,
    KIND_EXIT,
    KIND_STMT,
    KIND_TEST,
    build_cfg,
    function_cfgs,
)
from repro.analysis.dataflow.solver import ForwardAnalysis, solve_forward


def cfg_of(source):
    tree = ast.parse(source)
    func = next(n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef))
    return build_cfg(func)


def node_kinds(cfg):
    return [node.kind for node in cfg.nodes]


class TestStructure:
    def test_straight_line(self):
        cfg = cfg_of("def f():\n    a = 1\n    b = 2\n    return b\n")
        kinds = node_kinds(cfg)
        assert kinds[cfg.entry] == KIND_ENTRY
        assert kinds[cfg.exit] == KIND_EXIT
        assert kinds.count(KIND_STMT) == 3
        # entry -> a -> b -> return -> exit, single successor each
        index = cfg.entry
        for _ in range(4):
            succ = cfg.nodes[index].succ
            assert len(succ) == 1
            index = succ[0].dst
        assert index == cfg.exit

    def test_if_has_two_guarded_edges(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        y = 1\n"
            "    else:\n"
            "        y = 2\n"
            "    return y\n"
        )
        test = next(n for n in cfg.nodes if n.kind == KIND_TEST)
        assert len(test.succ) == 2
        assert {edge.truth for edge in test.succ} == {True, False}
        assert all(edge.guard is not None for edge in test.succ)

    def test_while_loop_has_back_edge(self):
        cfg = cfg_of(
            "def f(n):\n"
            "    while n:\n"
            "        n -= 1\n"
            "    return n\n"
        )
        test = next(i for i, n in enumerate(cfg.nodes) if n.kind == KIND_TEST)
        body = next(i for i, n in enumerate(cfg.nodes)
                    if n.kind == KIND_STMT
                    and isinstance(n.stmt, ast.AugAssign))
        assert any(e.dst == test for e in cfg.nodes[body].succ)

    def test_while_true_without_break_never_reaches_following(self):
        cfg = cfg_of(
            "def f():\n"
            "    while True:\n"
            "        pass\n"
            "    x = 1\n"
        )
        after = next(i for i, n in enumerate(cfg.nodes)
                     if n.kind == KIND_STMT and isinstance(n.stmt, ast.Assign))
        assert cfg.nodes[after].pred == []  # unreachable

    def test_return_skips_rest(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        return 1\n"
            "    return 2\n"
        )
        returns = [n for n in cfg.nodes
                   if n.kind == KIND_STMT and isinstance(n.stmt, ast.Return)]
        assert len(returns) == 2
        for node in returns:
            assert [e.dst for e in node.succ] == [cfg.exit]

    def test_try_except_edges_reach_handler(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    try:\n"
            "        y = risky(x)\n"
            "    except ValueError:\n"
            "        y = 0\n"
            "    return y\n"
        )
        risky = next(i for i, n in enumerate(cfg.nodes)
                     if n.kind == KIND_STMT and isinstance(n.stmt, ast.Assign)
                     and isinstance(n.stmt.value, ast.Call))
        handler_heads = [i for i, n in enumerate(cfg.nodes)
                         if n.kind == "handler"]
        assert handler_heads
        assert any(e.dst in handler_heads for e in cfg.nodes[risky].succ)

    def test_function_cfgs_finds_nested(self):
        tree = ast.parse(
            "def outer():\n"
            "    def inner():\n"
            "        return 1\n"
            "    return inner\n"
        )
        names = [cfg.func.name for cfg in function_cfgs(tree)]
        assert sorted(names) == ["inner", "outer"]


class _SignAnalysis(ForwardAnalysis):
    """Tiny path-sensitive demo: is `x` known truthy on this edge?"""

    def initial(self):
        return "unknown"

    def transfer(self, node, state, report=None):
        return state

    def refine(self, guard, truth, state):
        if isinstance(guard, ast.Name) and guard.id == "x":
            return "truthy" if truth else "falsy"
        return state

    def join(self, left, right):
        return left if left == right else "unknown"


class TestSolver:
    def test_unreachable_nodes_get_no_state(self):
        cfg = cfg_of(
            "def f():\n"
            "    return 1\n"
            "    x = 2\n"
        )
        states = solve_forward(cfg, _SignAnalysis())
        dead = next(i for i, n in enumerate(cfg.nodes)
                    if n.kind == KIND_STMT and isinstance(n.stmt, ast.Assign))
        assert dead not in states

    def test_branch_refinement_reaches_arms(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        b = 2\n"
        )
        states = solve_forward(cfg, _SignAnalysis())
        by_target = {}
        for i, node in enumerate(cfg.nodes):
            if node.kind == KIND_STMT and isinstance(node.stmt, ast.Assign):
                by_target[node.stmt.targets[0].id] = states[i]
        assert by_target == {"a": "truthy", "b": "falsy"}

    def test_join_at_merge_point(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        )
        states = solve_forward(cfg, _SignAnalysis())
        ret = next(i for i, n in enumerate(cfg.nodes)
                   if n.kind == KIND_STMT and isinstance(n.stmt, ast.Return))
        assert states[ret] == "unknown"
