"""Contract checker: the live registry passes, broken classes are flagged."""

from collections.abc import Iterator

import pytest

from repro.analysis.contracts import check_class, check_registry
from repro.errors import UnsupportedOperationError
from repro.indexes.base import PointIndex, TupleIndex


class TestLiveRegistry:
    def test_all_registered_indexes_honor_the_contract(self):
        findings = check_registry()
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_registry_snapshot_is_a_copy(self):
        from repro.indexes.registry import registered_factories, registered_indexes

        snapshot = registered_factories()
        snapshot.clear()
        assert registered_indexes()  # live registry untouched


# ----------------------------------------------------------------------
# Deliberately broken classes (defined at module level so inspect can
# read their source — the RA203 check is AST-based).
# ----------------------------------------------------------------------
class LyingPointIndex(TupleIndex):
    """Claims no prefix support but serves (wrong) prefix answers."""

    NAME = "lying"
    SUPPORTS_PREFIX = False

    def insert(self, row: tuple) -> None:
        pass

    def contains(self, row: tuple) -> bool:
        return False

    def prefix_lookup(self, prefix: tuple) -> Iterator[tuple]:
        return iter(())  # violates RA203: should raise


class NamelessIndex(PointIndex):
    """Forgets to declare its own NAME."""

    def insert(self, row: tuple) -> None:
        pass

    def contains(self, row: tuple) -> bool:
        return False


class HollowPrefixIndex(TupleIndex):
    """Claims prefix support but inherits the raising base methods."""

    NAME = "hollow"
    SUPPORTS_PREFIX = True

    def insert(self, row: tuple) -> None:
        pass

    def contains(self, row: tuple) -> bool:
        return False


class AbstractLeftover(TupleIndex):
    """Leaves the abstract surface unimplemented."""

    NAME = "leftover"

    def insert(self, row: tuple) -> None:
        pass
    # contains() missing → still abstract


class HonestPointIndex(PointIndex):
    """A compliant point-only structure (control case)."""

    NAME = "honest"

    def insert(self, row: tuple) -> None:
        pass

    def contains(self, row: tuple) -> bool:
        return False

    def count_prefix(self, prefix: tuple) -> int:
        raise UnsupportedOperationError("honest refusal")


def codes(findings) -> set[str]:
    return {finding.rule for finding in findings}


class TestBrokenClasses:
    def test_false_prefix_flag_with_real_implementation(self):
        assert "RA203" in codes(check_class("lying", LyingPointIndex))

    def test_missing_name(self):
        assert "RA202" in codes(check_class("nameless", NamelessIndex))

    def test_name_registry_mismatch(self):
        assert "RA202" in codes(check_class("other", LyingPointIndex))

    def test_true_prefix_flag_without_implementation(self):
        found = codes(check_class("hollow", HollowPrefixIndex))
        assert "RA204" in found

    def test_unimplemented_abstract_surface(self):
        assert "RA201" in codes(check_class("leftover", AbstractLeftover))

    def test_compliant_point_index_passes(self):
        assert check_class("honest", HonestPointIndex) == []

    def test_broken_registry_mapping(self):
        findings = check_registry({"lying": LyingPointIndex})
        assert "RA203" in codes(findings)

    def test_duplicate_names_across_registry(self):
        findings = check_registry({
            "honest": HonestPointIndex,
            "alias2": HonestPointIndex,
        })
        # registered under two keys: at least one NAME/key mismatch
        assert "RA202" in codes(findings)


class TestRegistryRoundTrip:
    def test_registering_a_compliant_class_stays_clean(self):
        from repro.errors import ConfigurationError
        from repro.indexes.registry import register_index, registered_factories

        register_index("honest", HonestPointIndex)
        try:
            findings = check_registry()
            assert findings == [], "\n".join(f.render() for f in findings)
        finally:
            # restore the registry for other tests
            with pytest.raises(ConfigurationError):
                register_index("honest", HonestPointIndex)
            from repro.indexes.registry import _REGISTRY

            _REGISTRY.pop("honest", None)
        assert "honest" not in registered_factories()
