"""RA8xx numeric-kernel rules: detection, suppression, fixture coverage."""

from pathlib import Path

import pytest

from repro.analysis import analyze_paths, analyze_source

FIXTURES = Path(__file__).parent / "fixtures" / "numeric"

ANY_PATH = "src/repro/anywhere.py"
CORE_PATH = "src/repro/core/anywhere.py"


def rules_at(source, path=ANY_PATH):
    return {f.rule for f in analyze_source(source, path)}


def ra8_at(source, path=ANY_PATH):
    return {r for r in rules_at(source, path) if r.startswith("RA8")}


class TestDtypeTracking:
    def test_object_array_into_kernel_is_error(self):
        findings = analyze_source(
            "import numpy as np\n"
            "def f(values, needles):\n"
            "    keys = np.asarray(values, dtype=object)\n"
            "    return np.searchsorted(keys, needles)\n",
            ANY_PATH,
        )
        ra801 = [f for f in findings if f.rule == "RA801"]
        assert [(f.line, str(f.severity)) for f in ra801] == [(4, "error")]

    def test_int64_array_into_kernel_is_clean(self):
        assert "RA801" not in rules_at(
            "import numpy as np\n"
            "def f(values, needles):\n"
            "    keys = np.asarray(values, dtype=np.int64)\n"
            "    keys.sort()\n"
            "    return np.searchsorted(keys, needles)\n"
        )

    def test_dtype_flows_through_views_and_copies(self):
        # the object verdict survives a reshape (view) and a .copy()
        assert "RA801" in ra8_at(
            "import numpy as np\n"
            "def f(values, needles):\n"
            "    keys = np.asarray(values, dtype=object)\n"
            "    flat = keys.reshape(-1).copy()\n"
            "    return np.searchsorted(flat, needles)\n"
        )

    def test_mixing_definite_dtypes_flagged(self):
        assert "RA802" in ra8_at(
            "import numpy as np\n"
            "def f(count, labels):\n"
            "    ints = np.arange(count)\n"
            "    tags = np.asarray(labels, dtype=object)\n"
            "    return ints == tags\n"
        )

    def test_mixing_with_unknown_dtype_is_silent(self):
        # one side unknown: no definite mix, no finding
        assert "RA802" not in rules_at(
            "import numpy as np\n"
            "def f(count, other):\n"
            "    ints = np.arange(count)\n"
            "    return ints == other\n"
        )


class TestHotPathHygiene:
    def test_loop_alloc_flagged_in_core_paths(self):
        assert "RA803" in ra8_at(
            "import numpy as np\n"
            "def f(data, rounds):\n"
            "    rows = np.asarray(data)\n"
            "    out = []\n"
            "    for _ in range(rounds):\n"
            "        out.append(np.concatenate((rows, rows)))\n"
            "    return out\n",
            CORE_PATH,
        )

    def test_loop_alloc_outside_kernel_dirs_is_silent(self):
        # same shape in benchmark-setup territory: out of RA803's scope
        assert "RA803" not in rules_at(
            "import numpy as np\n"
            "def f(data, rounds):\n"
            "    rows = np.asarray(data)\n"
            "    out = []\n"
            "    for _ in range(rounds):\n"
            "        out.append(np.concatenate((rows, rows)))\n"
            "    return out\n",
            "benchmarks/setup.py",
        )

    def test_hoisted_alloc_is_clean(self):
        assert "RA803" not in rules_at(
            "import numpy as np\n"
            "def f(data, rounds):\n"
            "    rows = np.asarray(data)\n"
            "    doubled = np.concatenate((rows, rows))\n"
            "    out = []\n"
            "    for _ in range(rounds):\n"
            "        out.append(doubled)\n"
            "    return out\n",
            CORE_PATH,
        )

    def test_per_element_iteration_flagged(self):
        assert "RA804" in ra8_at(
            "import numpy as np\n"
            "def f(batch):\n"
            "    values = np.asarray(batch)\n"
            "    total = 0\n"
            "    for value in values:\n"
            "        total += value\n"
            "    return total\n"
        )

    def test_tolist_outside_hot_scope_is_clean(self):
        assert "RA804" not in rules_at(
            "import numpy as np\n"
            "def f(batch):\n"
            "    values = np.asarray(batch)\n"
            "    return values.tolist()\n"
        )


class TestKernelPreconditions:
    def test_unsorted_into_searchsorted_flagged(self):
        assert "RA805" in ra8_at(
            "import numpy as np\n"
            "def f(keys, probes):\n"
            "    haystack = np.concatenate((np.asarray(keys),\n"
            "                               np.asarray(probes)))\n"
            "    return np.searchsorted(haystack, probes)\n"
        )

    def test_sorted_into_searchsorted_is_clean(self):
        assert "RA805" not in rules_at(
            "import numpy as np\n"
            "def f(keys, probes):\n"
            "    haystack = np.sort(np.asarray(keys))\n"
            "    return np.searchsorted(haystack, probes)\n"
        )

    def test_unsorted_values_argument_is_fine(self):
        # only the *first* argument must be sorted; the probe vector
        # may arrive in any order
        assert "RA805" not in rules_at(
            "import numpy as np\n"
            "def f(keys, probes):\n"
            "    haystack = np.sort(np.asarray(keys))\n"
            "    needles = np.concatenate((np.asarray(probes),\n"
            "                              np.asarray(probes)))\n"
            "    return np.searchsorted(haystack, needles)\n"
        )


class TestBuildPathRules:
    def test_per_tuple_build_loop_flagged(self):
        assert "RA806" in ra8_at(
            "from repro.core import SonicIndex\n"
            "def f(rows):\n"
            "    index = SonicIndex(2)\n"
            "    for row in rows:\n"
            "        index.insert(row)\n"
            "    return index\n"
        )

    def test_make_index_literal_name_tracked(self):
        assert "RA806" in ra8_at(
            "from repro.indexes import make_index\n"
            "def f(rows):\n"
            "    index = make_index('sortedtrie', 2)\n"
            "    for row in rows:\n"
            "        index.insert(row)\n"
            "    return index\n"
        )

    def test_non_bulk_index_loop_is_clean(self):
        # a hash set has no vectorized build path; nothing to win
        assert "RA806" not in rules_at(
            "from repro.indexes import make_index\n"
            "def f(rows):\n"
            "    index = make_index('hashset', 2)\n"
            "    for row in rows:\n"
            "        index.insert(row)\n"
            "    return index\n"
        )

    def test_bulk_build_is_clean(self):
        assert "RA806" not in rules_at(
            "from repro.core import SonicIndex\n"
            "def f(columns):\n"
            "    index = SonicIndex(len(columns))\n"
            "    index.build_bulk(columns)\n"
            "    return index\n"
        )


class TestColumnarContract:
    def test_kernel_consumer_without_dtype_branch_is_error(self):
        findings = analyze_source(
            "import numpy as np\n"
            "def f(relation, probes):\n"
            "    column = relation.column_array('a')\n"
            "    return np.searchsorted(np.sort(column), probes)\n",
            ANY_PATH,
        )
        ra807 = [f for f in findings if f.rule == "RA807"]
        assert len(ra807) == 1
        assert str(ra807[0].severity) == "error"

    def test_dtype_branch_satisfies_contract(self):
        assert "RA807" not in rules_at(
            "import numpy as np\n"
            "def f(relation, probes):\n"
            "    column = relation.column_array('a')\n"
            "    if column.dtype == np.int64:\n"
            "        return np.searchsorted(np.sort(column), probes)\n"
            "    return sorted(column.tolist())\n"
        )

    def test_cached_verdict_accessor_satisfies_contract(self):
        assert "RA807" not in rules_at(
            "import numpy as np\n"
            "def f(relation, probes):\n"
            "    if relation.column_dtype_class('a') == 'int64':\n"
            "        column = relation.column_array('a')\n"
            "        return np.searchsorted(np.sort(column), probes)\n"
            "    return None\n"
        )

    def test_dead_materialisation_flagged(self):
        assert "RA808" in ra8_at(
            "import numpy as np\n"
            "def f(values):\n"
            "    snapshot = np.asarray(values).copy()\n"
            "    return len(snapshot)\n"
        )

    def test_materialised_array_with_real_use_is_clean(self):
        assert "RA808" not in rules_at(
            "import numpy as np\n"
            "def f(values):\n"
            "    snapshot = np.asarray(values).copy()\n"
            "    return len(snapshot), snapshot.sum()\n"
        )


class TestSuppressionAndFixtures:
    def test_noqa_silences_numeric_rule(self):
        assert ra8_at(
            "from repro.core import SonicIndex\n"
            "def f(rows):\n"
            "    index = SonicIndex(2)\n"
            "    for row in rows:\n"
            "        index.insert(row)  # repro: noqa[RA806] -- measured\n"
            "    return index\n"
        ) == set()

    EXPECTED = {
        "bad_object_kernel.py": {"RA801"},
        "bad_dtype_mix.py": {"RA802"},
        "core/bad_hot_alloc.py": {"RA803"},
        "bad_scalarised.py": {"RA804"},
        "bad_unsorted_searchsorted.py": {"RA805"},
        "bad_scalar_build.py": {"RA806"},
        "bad_columnar_contract.py": {"RA807"},
        "bad_dead_materialisation.py": {"RA808"},
    }

    @pytest.mark.parametrize("relative,expected", sorted(EXPECTED.items()))
    def test_planted_fixture_caught(self, relative, expected):
        findings = analyze_paths([FIXTURES / relative])
        assert expected <= {f.rule for f in findings}

    def test_numeric_fixture_tree_fails_as_a_whole(self):
        findings = analyze_paths([FIXTURES])
        got = {f.rule for f in findings}
        assert {f"RA80{i}" for i in range(1, 9)} <= got

    def test_clean_counterexample_stays_clean(self):
        findings = analyze_paths([FIXTURES / "clean_vectorised.py"])
        assert [f.rule for f in findings] == []


class TestRegistryCrossCheck:
    """Every registered RA8xx rule must have a fixture that fires it."""

    def test_every_ra8_rule_has_a_firing_fixture(self):
        from repro.analysis.rules import rule_catalog

        registered = {entry["code"] for entry in rule_catalog()
                      if entry["code"].startswith("RA8")}
        assert registered, "RA8xx rules failed to register"
        covered = set().union(
            *TestSuppressionAndFixtures.EXPECTED.values())
        assert registered == covered

    def test_fixture_table_matches_directory(self):
        on_disk = {p.relative_to(FIXTURES).as_posix()
                   for p in FIXTURES.rglob("bad_*.py")}
        assert on_disk == set(TestSuppressionAndFixtures.EXPECTED)
