"""The thread-safety manifest: schema, classifications, CLI gate."""

import ast
import json

import pytest

from repro.analysis.cli import main
from repro.analysis.concurrency.manifest import (
    ENTRY_TABLE,
    build_manifest,
    classify_free_function,
    classify_process_entry,
    constructor_aliases,
    failing_entries,
    validate_manifest,
)
from repro.analysis.concurrency.model import parse_module

DRIVER_RUNS = {
    "GenericJoin.run",
    "GenericJoinBatch.run",
    "HashTrieJoin.run",
    "BinaryHashJoin.run",
    "LeapfrogTrieJoin.run",
    "RecursiveJoin.run",
}

SAFE = {"reentrant", "borrows-caller-lock"}


@pytest.fixture(scope="module")
def manifest():
    return build_manifest()


class TestManifestContents:
    def test_schema_valid(self, manifest):
        assert validate_manifest(manifest) == []

    def test_round_trips_through_json(self, manifest):
        assert json.loads(json.dumps(manifest)) == manifest

    def test_every_driver_classified(self, manifest):
        by_name = {e["qualname"]: e for e in manifest["entries"]}
        for qualname in DRIVER_RUNS:
            entry = by_name[qualname]
            assert entry["model"] == "per-call"
            assert entry["classification"] in SAFE, qualname

    def test_session_and_cache_thread_safe(self, manifest):
        by_name = {e["qualname"]: e for e in manifest["entries"]}
        for qualname in ("Session.prepare", "Session.execute",
                         "IndexCache.get", "IndexCache.put",
                         "IndexCache.put_if_absent",
                         "Metrics.inc", "Tracer.add_span"):
            entry = by_name[qualname]
            assert entry["model"] == "shared"
            assert entry["classification"] == "reentrant", qualname

    def test_no_required_entry_fails(self, manifest):
        assert failing_entries(manifest) == []

    def test_worker_entries_process_clean(self, manifest):
        # the worker boundary: only shared-memory handles and frozen
        # plan decisions cross; entries capture no module state that
        # would diverge between parent and workers
        by_name = {e["qualname"]: e for e in manifest["entries"]}
        for qualname in ("worker_main", "run_shard_task"):
            entry = by_name[qualname]
            assert entry["model"] == "process"
            assert entry["classification"] == "reentrant", qualname
            assert entry["writes"] == []

    def test_no_entry_is_unknown(self, manifest):
        # "unknown" means the table references a renamed/removed symbol
        assert [e["qualname"] for e in manifest["entries"]
                if e["classification"] == "unknown"] == []

    def test_table_names_exist_in_tree(self, manifest):
        assert len(manifest["entries"]) == sum(
            len(names) for _, names, *_ in ENTRY_TABLE)


class TestManifestValidation:
    def test_rejects_non_object(self):
        assert validate_manifest([]) == ["manifest is not an object"]

    def test_rejects_wrong_schema_and_empty_entries(self):
        problems = validate_manifest({"schema_version": 99, "entries": []})
        assert any("schema_version" in p for p in problems)
        assert any("entries" in p for p in problems)

    def test_rejects_unknown_model(self):
        problems = validate_manifest({
            "schema_version": 1,
            "entries": [{"qualname": "X.y", "path": "x.py",
                         "model": "thread", "classification": "reentrant",
                         "writes": []}],
        })
        assert any("shared|per-call|process" in p for p in problems)

    def test_rejects_bad_classification(self):
        problems = validate_manifest({
            "schema_version": 1,
            "entries": [{"qualname": "X.y", "path": "x.py",
                         "model": "shared", "classification": "maybe",
                         "writes": []}],
        })
        assert any("classification" in p for p in problems)


class TestClassifiers:
    def test_free_function_parameter_mutation_unsafe(self):
        source = ("def f(shared, x):\n"
                  "    shared.append(x)\n")
        model = parse_module(ast.parse(source), source)
        classification, writes = classify_free_function(
            model.functions["f"], model)
        assert classification == "unsafe"
        assert len(writes) == 1

    def test_free_function_local_rebinds_reentrant(self):
        source = ("def f(rows):\n"
                  "    out = []\n"
                  "    for r in rows:\n"
                  "        out.append(r)\n"
                  "    return out\n")
        model = parse_module(ast.parse(source), source)
        classification, writes = classify_free_function(
            model.functions["f"], model)
        assert classification == "reentrant"
        assert writes == []

    def test_constructor_aliases_found(self):
        source = ("class D:\n"
                  "    def __init__(self, adapters, plan):\n"
                  "        self.adapters = adapters\n"
                  "        self.order = plan.order\n"     # derived, not alias
                  "        self.bindings = {}\n")
        model = parse_module(ast.parse(source), source)
        assert constructor_aliases(model.classes["D"]) == {"adapters"}

    def test_process_entry_capturing_registry_unsafe(self):
        source = ("REGISTRY = {}\n"
                  "def worker(conn):\n"
                  "    REGISTRY['pid'] = conn\n")
        model = parse_module(ast.parse(source), source)
        classification, writes, captured = classify_process_entry(
            model.functions["worker"], model)
        assert classification == "unsafe"
        assert captured == ["REGISTRY"]

    def test_process_entry_reading_mutable_global_unsafe(self):
        # even a read-only capture diverges: fork copies the registry,
        # spawn re-imports an empty one
        source = ("CACHE = {}\n"
                  "def worker(conn):\n"
                  "    return CACHE.get('x')\n")
        model = parse_module(ast.parse(source), source)
        classification, _, captured = classify_process_entry(
            model.functions["worker"], model)
        assert classification == "unsafe"
        assert captured == ["CACHE"]

    def test_process_entry_capturing_lock_unsafe(self):
        source = ("import threading\n"
                  "LOCK = threading.Lock()\n"
                  "def worker(conn):\n"
                  "    with LOCK:\n"
                  "        return conn.recv()\n")
        model = parse_module(ast.parse(source), source)
        classification, _, captured = classify_process_entry(
            model.functions["worker"], model)
        assert classification == "unsafe"
        assert captured == ["LOCK"]

    def test_process_entry_with_locals_and_constants_reentrant(self):
        source = ("LIMIT = 8\n"
                  "def worker(conn):\n"
                  "    cache = {}\n"
                  "    cache['n'] = LIMIT\n"
                  "    return cache\n")
        model = parse_module(ast.parse(source), source)
        classification, writes, captured = classify_process_entry(
            model.functions["worker"], model)
        assert classification == "reentrant"
        assert writes == [] and captured == []

    def test_percall_alias_mutation_detected(self, tmp_path):
        # a driver that corrupts the shared structure it was handed must
        # come out unsafe even though the write goes through self
        from repro.analysis.concurrency.manifest import _percall_writes

        source = ("class D:\n"
                  "    def __init__(self, adapters):\n"
                  "        self.adapters = adapters\n"
                  "        self.out = []\n"
                  "    def run(self):\n"
                  "        self.adapters.append(None)\n"
                  "        self.out.append(1)\n")
        model = parse_module(ast.parse(source), source)
        cls = model.classes["D"]
        writes = _percall_writes(cls, "run", model,
                                 constructor_aliases(cls), frozenset())
        assert [".".join(w.key) for w in writes] == ["self.adapters"]


class TestManifestCli:
    def test_cli_writes_valid_manifest(self, tmp_path, capsys):
        target = tmp_path / "manifest.json"
        assert main(["--concurrency-manifest", str(target)]) == 0
        data = json.loads(target.read_text(encoding="utf-8"))
        assert validate_manifest(data) == []
        assert failing_entries(data) == []

    def test_cli_stdout_mode(self, capsys):
        assert main(["--concurrency-manifest"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert {e["qualname"] for e in data["entries"]} >= DRIVER_RUNS
