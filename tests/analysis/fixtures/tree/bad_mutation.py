"""Fixture: planted RA103 — container mutated while iterated."""


def prune(nodes):
    for node in nodes:
        if node.dead:
            nodes.remove(node)  # planted RA103
    return nodes


def rebucket(children):
    for key, child in children.items():
        if child.overflow:
            children.update(child.split())  # planted RA103 (dict view)
