"""Fixture: planted RA102 — global / unseeded RNG calls."""

import random

import numpy as np


def sample():
    jitter = random.random()           # planted RA102: global RNG
    noise = np.random.rand(4)          # planted RA102: numpy global RNG
    rng = np.random.default_rng()      # planted RA102: unseeded generator
    return jitter, noise, rng
