"""Fixture: planted RA101 — builtin hash() inside an indexes/ directory.

Never imported; only scanned by the lint engine in tests.
"""


def bucket_of(key, capacity):
    return hash(key) % capacity  # planted RA101
