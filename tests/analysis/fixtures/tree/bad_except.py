"""Fixture: planted RA104 — bare except and swallowed contract errors."""

from repro.errors import UnsupportedOperationError


def swallow_everything(fn):
    try:
        return fn()
    except:  # planted RA104: bare except
        return None


def ignore_contract(index, prefix):
    try:
        return index.count_prefix(prefix)
    except UnsupportedOperationError:  # planted RA104: swallowed signal
        pass
