"""Fixture: planted RA105 — wall-clock measurement with time.time()."""

import time


def measure(fn):
    start = time.time()  # planted RA105
    fn()
    return time.time() - start  # planted RA105
