"""Protocol-correct counterexample: must stay free of RA4xx/RA5xx findings."""

from repro.indexes import make_index

_SMALL_PRIMES = frozenset({2, 3, 5, 7, 11})


def balanced_cursor(index, value):
    cursor = index.cursor()
    hits = 0
    if cursor.try_descend(value):
        hits = cursor.count()
        cursor.ascend()
    return hits


def guarded_iteration(trie):
    it = trie.iterator()
    it.open()
    keys = []
    while not it.at_end():
        keys.append(it.key())
        it.next()
    it.up()
    return keys


def capability_checked_probe(rows, key):
    idx = make_index("hashset", 2)
    for row in rows:
        idx.insert(row)
    if idx.SUPPORTS_PREFIX:
        return idx.prefix_lookup(key)
    return [row for row in rows if row[:len(key)] == key]


def hoisted_probe_loop(rows):
    hits = 0
    for row in rows:
        if row[0] in _SMALL_PRIMES:
            hits += 1
    return hits
