"""Clean counterexample: flight-recorder discipline in parallel/ loops.

Every per-iteration obs call sits behind the ``.enabled`` pattern (or
happens once, outside the loop), so RA601 — which scopes over
``parallel/`` paths — must stay silent here.
"""


def dispatch_loop_guards_the_recorder(tasks, recorder):
    for task in tasks:
        if recorder.enabled:
            recorder.record("task.send", shard=task)  # guarded: clean
        send(task)


def collect_loop_hoists_the_flag(results, flightrec):
    rec_enabled = flightrec.enabled
    for result in results:
        if rec_enabled:
            flightrec.record("task.collect", ok=True)  # hoisted flag: clean
        consume(result)


def record_once_per_fanout(tasks, recorder):
    sent = 0
    for task in tasks:
        sent += 1  # plain accumulation: the sanctioned pattern
        send(task)
    recorder.record("pool.dispatch", tasks=sent)  # outside the loop: clean
    return sent


def send(task):
    return task


def consume(result):
    return result
