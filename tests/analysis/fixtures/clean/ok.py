"""Fixture: a clean file — seeded RNGs, monotonic timing, suppressions.

The analyzer must produce zero findings here; the suppressed lines prove
``# repro: noqa[RULE]`` works.
"""

import random
import time

import numpy as np


def seeded_things(seed):
    rng = random.Random(seed)
    np_rng = np.random.default_rng(seed)
    return rng.randrange(10), np_rng.integers(0, 10)


def timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def deliberately_suppressed():
    stamp = time.time()  # repro: noqa[RA105] -- log timestamp, not a measurement
    jitter = random.random()  # repro: noqa
    return stamp, jitter


def safe_iteration(nodes):
    for node in list(nodes):
        if node is None:
            nodes.remove(node)
    return nodes
