"""Planted RA601: unguarded observability calls in innermost loops."""


def probe_loop_counts_every_value(values, metrics):
    hits = 0
    for value in values:
        metrics.inc("probe.values")  # RA601: unguarded obs call per value
        hits += value
    return hits


def probe_loop_traces_every_value(values, tracer):
    for value in values:
        with tracer.span("probe", value=value):  # RA601: unguarded span
            consume(value)


def guard_blesses_then_branch_only(values, metrics):
    for value in values:
        if metrics.enabled:
            metrics.observe("probe.value", value)  # guarded: not flagged
        else:
            metrics.inc("probe.skipped")  # RA601: else keeps outer state
        consume(value)


def guarded_probe_loop(values, obs):
    obs_enabled = obs.enabled
    hits = 0
    for value in values:
        if obs_enabled:
            obs.metrics.inc("probe.values")  # guarded by hoisted flag
        hits += value
    return hits


def accumulate_then_flush(values, metrics):
    count = 0
    for value in values:
        count += 1  # plain accumulation: the sanctioned pattern
    metrics.inc("probe.values", count)  # outside the loop: not flagged
    return count


def consume(value):
    return value
