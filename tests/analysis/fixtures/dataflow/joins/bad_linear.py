"""Planted RA502: known-O(n) work inside a hot region."""


def per_probe_sort(rows):
    kept = []
    for row in rows:
        ordered = sorted(row)  # RA502: copies and sorts per probe
        if ordered:
            kept.append(ordered[0])
    return kept


def linear_membership(values):
    hits = 0
    for value in values:
        if value in [2, 3, 5, 7, 11]:  # RA502: O(n) list membership
            hits += 1
    return hits
