"""Planted RA501: fresh container allocation inside a hot region."""


def probe_loop(rows, keys):
    out = []
    for row in rows:
        widened = [key for key in keys]  # RA501: per-probe allocation
        out.append((row, len(widened)))
    return out


def recursive_probe(node, depth):
    frontier = {child: depth for child in node.children}  # RA501 (recursive)
    for child in sorted_children(node):
        recursive_probe(child, depth + 1)
    return frontier


def sorted_children(node):
    return node.children
