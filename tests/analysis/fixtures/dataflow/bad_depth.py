"""Planted RA402: seek/depth discipline (popping above the root)."""


def pop_above_root(index):
    cursor = index.cursor()
    if cursor.try_descend(1):
        cursor.ascend()
    cursor.ascend()  # RA402: depth is certainly 0 on every path here
    return cursor


def unbalanced_up(trie):
    it = trie.iterator()
    it.open()
    it.up()
    it.up()  # RA402: one open(), two up()
    return it
