"""Planted RA601: unguarded flight-recorder / exposition calls in
innermost loops of the parallel fan-out layer."""


def dispatch_loop_records_every_task(tasks, recorder):
    for task in tasks:
        recorder.record("task.send", shard=task)  # RA601: unguarded record
        send(task)


def collect_loop_records_every_result(results, flightrec):
    for result in results:
        flightrec.record("task.collect", ok=True)  # RA601: unguarded record
        consume(result)


def scrape_loop_renders_per_shard(shards, registry):
    texts = []
    for shard in shards:
        texts.append(registry.to_prometheus_text())  # RA601: exposition call
    return texts


def send(task):
    return task


def consume(result):
    return result
