"""Planted RA401: TrieIterator protocol misuse (use before open / after end)."""


def use_before_open(trie):
    it = trie.iterator()
    it.next()  # RA401: next() before any open()
    return it


def read_after_exhaustion(trie):
    it = trie.iterator()
    it.open()
    while not it.at_end():
        it.next()
    return it.key()  # RA401: key() after at_end() is already true
