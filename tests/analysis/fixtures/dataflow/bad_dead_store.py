"""Planted RA503: a store whose value is never read on any path."""


def sum_rows(rows):
    total = 0
    scratch = len(rows)  # RA503: never read afterwards
    for row in rows:
        total += sum(row)
    return total
