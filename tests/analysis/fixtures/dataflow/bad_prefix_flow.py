"""Planted RA403: prefix method on a SUPPORTS_PREFIX=False index flow."""

from repro.indexes import make_index
from repro.indexes.robinhood import RobinHoodTupleIndex


def point_index_prefix_probe(rows, key):
    idx = make_index("hashset", 2)
    for row in rows:
        idx.insert(row)
    return idx.prefix_lookup(key)  # RA403: hashset is point-lookup only


def point_class_cursor(rows):
    idx = RobinHoodTupleIndex(2)
    for row in rows:
        idx.insert(row)
    return idx.cursor()  # RA403: robinhood has no prefix cursor
