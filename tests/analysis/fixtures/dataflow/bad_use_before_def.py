"""Planted RA504: locals read before any assignment (guaranteed NameError)."""


def straight_line(rows):
    total = total + len(rows)  # RA504: total unbound at first read
    return total


def one_armed(flag):
    if flag:
        value = 1
    else:
        print(value)  # RA504: value unbound on every path through else
        value = 0
    return value
