"""Planted RA404: index mutated after it was handed to the adapter."""

from repro.core.adapter import IndexAdapter
from repro.indexes import make_index


def mutate_after_build(relation, order, late_row):
    idx = make_index("sortedtrie", 2)
    adapter = IndexAdapter(relation, idx, order)
    adapter.build()
    idx.insert(late_row)  # RA404: cursors derived from idx are now stale
    return adapter
