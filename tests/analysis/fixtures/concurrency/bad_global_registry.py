"""Planted RA701: module-level mutable registry written after import."""

_REGISTRY = {}


def register(name, factory):
    _REGISTRY[name] = factory
    return factory
