"""Planted RA704: raw acquire/release with no finally protection."""

import threading


class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = []

    def push(self, item):
        self._lock.acquire()
        self.items.append(item)
        self._lock.release()
