"""Planted RA705: two locks taken in opposite orders (deadlock cycle)."""

import threading

lock_a = threading.Lock()
lock_b = threading.Lock()


def forward(work):
    with lock_a:
        with lock_b:
            work()


def backward(work):
    with lock_b:
        with lock_a:
            work()
