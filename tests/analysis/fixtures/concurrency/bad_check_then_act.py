"""Planted RA708: check-then-act dict race in a threading module."""

import threading

_cache = {}  # repro: noqa[RA701] -- keep RA708 isolated
_cache_lock = threading.Lock()


def memoize(key, build):
    if key not in _cache:
        _cache[key] = build(key)  # repro: noqa[RA701] -- keep RA708 isolated
    return _cache[key]
