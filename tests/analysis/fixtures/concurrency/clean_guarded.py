"""Clean counterexample: annotated shared state handled correctly."""

import threading


class SafeCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {}  # repro: shared[lock=_lock]

    def inc(self, name):
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + 1

    def _reset(self):  # repro: borrows-lock[_lock]
        self._counts.clear()

    def reset(self):
        with self._lock:
            self._reset()

    def snapshot(self):
        with self._lock:
            return dict(self._counts)
