"""Planted RA706: public method of an annotated class is unsafe."""

import threading


class Board:
    def __init__(self):
        self._lock = threading.Lock()
        self._scores = {}  # repro: shared[lock=_lock]

    def record(self, name, value):
        self._store(name, value)

    def _store(self, name, value):
        self._scores[name] = value  # repro: noqa[RA703] -- keep RA706 isolated
