"""Planted RA707: borrows-lock helper called without holding the lock."""

import threading


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self._data = {}  # repro: shared[lock=_lock]

    def _drop_oldest(self):  # repro: borrows-lock[_lock]
        if self._data:
            del self._data[next(iter(self._data))]

    def put(self, key, value):
        with self._lock:
            self._data[key] = value
            self._drop_oldest()

    def trim(self):
        self._drop_oldest()
