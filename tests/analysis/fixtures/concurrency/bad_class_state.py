"""Planted RA702: class-body container shared by every instance."""


class Collector:
    results = []

    def add(self, item):
        self.results.append(item)
