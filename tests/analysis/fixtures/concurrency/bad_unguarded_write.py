"""Planted RA703: annotated shared field written without its lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # repro: shared[lock=_lock]

    def bump(self):
        self._count += 1

    def value(self):
        with self._lock:
            return self._count
