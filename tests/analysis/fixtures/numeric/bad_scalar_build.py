"""Planted RA806: per-tuple insert() loop on a bulk-capable index."""

from repro.core import SonicIndex


def build(rows):
    index = SonicIndex(2)
    for row in rows:
        index.insert(row)
    return index
