"""Planted RA803: numpy allocation inside an innermost hot-path loop.

Lives under a ``core/`` directory segment on purpose — the rule is
scoped to the kernel directories via ``applies_to``.
"""

import numpy as np


def widen(data, rounds):
    rows = np.asarray(data)
    out = []
    for _ in range(rounds):
        out.append(np.concatenate((rows, rows)))
    return out
