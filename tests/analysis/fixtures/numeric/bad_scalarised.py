"""Planted RA804: per-element iteration over an array in hot scope."""

import numpy as np


def drain(batch):
    values = np.asarray(batch)
    total = 0
    for value in values:
        total += value
    return total
