"""Planted RA801: an object-dtype array reaches a searchsorted kernel."""

import numpy as np


def probe(values, needles):
    keys = np.asarray(values, dtype=object)
    return np.searchsorted(keys, needles)
