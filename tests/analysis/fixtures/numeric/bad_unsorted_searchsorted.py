"""Planted RA805: a provably unsorted array flows into searchsorted."""

import numpy as np


def lookup(keys, probes):
    haystack = np.concatenate((np.asarray(keys), np.asarray(probes)))
    return np.searchsorted(haystack, probes)
