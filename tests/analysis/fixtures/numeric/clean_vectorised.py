"""Vectorised counterexample: must stay free of RA8xx findings."""

import numpy as np

from repro.core import SonicIndex


def canonical_keys(values):
    try:
        return np.asarray(values, dtype=np.int64)
    except (TypeError, ValueError, OverflowError):
        keys = np.empty(len(values), dtype=object)
        keys[:] = values
        return keys


def bulk_build(columns):
    index = SonicIndex(len(columns))
    index.build_bulk(columns)
    return index


def rank(relation, probes):
    column = relation.column_array("a")
    if column.dtype == np.int64:
        return np.searchsorted(np.sort(column), probes)
    return sorted(column.tolist())
