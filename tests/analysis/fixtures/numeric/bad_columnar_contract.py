"""Planted RA807: a kernel consumer ignoring the int64/object split."""

import numpy as np


def stats(relation, probes):
    column = relation.column_array("a")
    return np.searchsorted(np.sort(column), probes)
