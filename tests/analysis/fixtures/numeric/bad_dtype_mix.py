"""Planted RA802: comparison across definite, different dtype classes."""

import numpy as np


def mix(count, labels):
    ints = np.arange(count)
    tags = np.asarray(labels, dtype=object)
    return ints == tags
