"""Planted RA808: an array is materialised but only its size is read."""

import numpy as np


def summary(values):
    snapshot = np.asarray(values).copy()
    return len(snapshot)
