"""Each RA1xx rule fires on its planted fixture and stays quiet on clean code."""

from pathlib import Path

from repro.analysis import analyze_file, analyze_paths, analyze_source

FIXTURES = Path(__file__).parent / "fixtures"
TREE = FIXTURES / "tree"


def rules_found(findings) -> set[str]:
    return {finding.rule for finding in findings}


class TestPlantedViolations:
    def test_ra101_builtin_hash_in_indexes_dir(self):
        findings = analyze_file(TREE / "indexes" / "bad_hashing.py")
        assert rules_found(findings) == {"RA101"}
        assert findings[0].line == 8

    def test_ra101_scoped_to_index_and_core_dirs(self):
        # the same source outside indexes//core/ must not fire
        source = (TREE / "indexes" / "bad_hashing.py").read_text()
        findings = analyze_source(source, "somewhere/else/hashing_user.py")
        assert findings == []

    def test_ra102_unseeded_random(self):
        findings = analyze_file(TREE / "bad_random.py")
        assert rules_found(findings) == {"RA102"}
        assert len(findings) == 3  # global, numpy-global, unseeded default_rng

    def test_ra103_mutation_while_iterating(self):
        findings = analyze_file(TREE / "bad_mutation.py")
        assert rules_found(findings) == {"RA103"}
        assert len(findings) == 2  # list.remove and dict-view update

    def test_ra104_bare_and_swallowed_except(self):
        findings = analyze_file(TREE / "bad_except.py")
        assert rules_found(findings) == {"RA104"}
        assert len(findings) == 2

    def test_ra105_wall_clock(self):
        findings = analyze_file(TREE / "bad_timing.py")
        assert rules_found(findings) == {"RA105"}
        assert len(findings) == 2

    def test_whole_fixture_tree_covers_every_rule(self):
        findings = analyze_paths([TREE])
        assert {"RA101", "RA102", "RA103", "RA104", "RA105"} <= rules_found(findings)


class TestCleanCode:
    def test_clean_fixture_has_no_findings(self):
        assert analyze_paths([FIXTURES / "clean"]) == []

    def test_seeded_rng_is_fine(self):
        source = "import random\nrng = random.Random(7)\n"
        assert analyze_source(source, "src/module.py") == []

    def test_seeded_default_rng_is_fine(self):
        source = "import numpy as np\nrng = np.random.default_rng(3)\n"
        assert analyze_source(source, "src/module.py") == []

    def test_iterating_a_copy_is_fine(self):
        source = (
            "def prune(nodes):\n"
            "    for node in list(nodes):\n"
            "        nodes.remove(node)\n"
        )
        assert analyze_source(source, "src/module.py") == []

    def test_perf_counter_is_fine(self):
        source = "import time\nstart = time.perf_counter()\n"
        assert analyze_source(source, "src/module.py") == []

    def test_timer_module_exempt_from_ra105(self):
        source = "import time\nstart = time.time()\n"
        assert analyze_source(source, "src/repro/bench/timer.py") == []
        assert rules_found(
            analyze_source(source, "src/repro/bench/harness.py")) == {"RA105"}

    def test_rng_method_named_random_not_confused(self):
        # rng.random() is a *seeded generator method*, not the global module
        source = (
            "import random\n"
            "rng = random.Random(1)\n"
            "value = rng.random()\n"
        )
        assert analyze_source(source, "src/module.py") == []


class TestEngineBehaviour:
    def test_syntax_error_reported_as_ra001(self):
        findings = analyze_source("def broken(:\n", "src/module.py")
        assert rules_found(findings) == {"RA001"}

    def test_findings_sorted_by_location(self):
        findings = analyze_paths([TREE])
        assert findings == sorted(findings)

    def test_rule_filter(self):
        from repro.analysis import select_rules

        only = select_rules(["RA102"])
        findings = analyze_paths([TREE], rules=only)
        assert rules_found(findings) == {"RA102"}
