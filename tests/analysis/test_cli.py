"""The CLI gate: exit codes, JSON output, subcommand routing."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


class TestExitCodes:
    def test_fixture_tree_with_planted_violations_fails(self, capsys):
        assert main([str(FIXTURES / "tree")]) == 1
        out = capsys.readouterr().out
        for rule in ("RA101", "RA102", "RA103", "RA104", "RA105"):
            assert rule in out

    def test_clean_tree_passes(self, capsys):
        assert main([str(FIXTURES / "clean")]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_repo_src_and_benchmarks_are_clean(self, capsys):
        src = REPO_ROOT / "src"
        benchmarks = REPO_ROOT / "benchmarks"
        code = main([str(src), str(benchmarks)])
        assert code == 0, capsys.readouterr().out


class TestOutputs:
    def test_json_report(self, capsys):
        assert main([str(FIXTURES / "tree"), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["ok"] is False
        assert payload["summary"]["errors"] >= 5
        rules = {f["rule"] for f in payload["findings"]}
        assert {"RA101", "RA102", "RA103", "RA104", "RA105"} <= rules

    def test_rule_filter(self, capsys):
        assert main([str(FIXTURES / "tree"), "--rule", "RA104", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in payload["findings"]} == {"RA104"}

    def test_unknown_rule_rejected(self):
        with pytest.raises(SystemExit):
            main([str(FIXTURES / "clean"), "--rule", "RA999"])

    def test_nonexistent_path_rejected(self, capsys):
        # a typo'd path in CI must not pass as "clean"
        with pytest.raises(SystemExit):
            main(["no/such/dir"])
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("RA101", "RA102", "RA103", "RA104", "RA105",
                     "RA2xx", "RA3xx"):
            assert rule in out

    def test_no_contracts_flag(self, capsys):
        assert main([str(FIXTURES / "clean"), "--no-contracts"]) == 0


class TestBaselineFlags:
    def test_write_then_gate_round_trip(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        # adopt the planted violations, then the same tree passes the gate
        assert main([str(FIXTURES / "tree"), "--no-contracts",
                     "--write-baseline", str(baseline)]) == 0
        assert baseline.exists()
        assert main([str(FIXTURES / "tree"), "--no-contracts",
                     "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "[baselined]" in out

    def test_new_violation_gates_despite_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([str(FIXTURES / "clean"), "--no-contracts",
                     "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main([str(FIXTURES / "tree"), "--no-contracts",
                     "--baseline", str(baseline)]) == 1

    def test_stale_entries_reported_not_gating(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([str(FIXTURES / "tree"), "--no-contracts",
                     "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main([str(FIXTURES / "clean"), "--no-contracts",
                     "--baseline", str(baseline)]) == 0
        assert "RA002" in capsys.readouterr().out

    def test_unreadable_baseline_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main([str(FIXTURES / "clean"),
                  "--baseline", str(tmp_path / "missing.json")])


class TestSarifOutput:
    def test_sarif_log_structure(self, capsys):
        assert main([str(FIXTURES / "tree"), "--no-contracts",
                     "--sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        results = log["runs"][0]["results"]
        assert {r["ruleId"] for r in results} >= {"RA101", "RA104"}

    def test_sarif_and_json_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main([str(FIXTURES / "clean"), "--sarif", "--json"])


class TestChangedOnly:
    @pytest.fixture
    def git_repo(self, tmp_path):
        def git(*args):
            subprocess.run(
                ["git", *args], cwd=tmp_path, check=True,
                capture_output=True,
                env={**os.environ,
                     "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
                     "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"},
            )
        git("init", "-q", "-b", "main")
        pkg = tmp_path / "src"
        pkg.mkdir()
        (pkg / "committed.py").write_text("import time\ntime.time()\n")
        git("add", "-A")
        git("commit", "-q", "-m", "seed")
        return tmp_path

    def test_only_changed_files_analyzed(self, git_repo, capsys, monkeypatch):
        monkeypatch.chdir(git_repo)
        # the committed RA105 violation is NOT in the diff -> clean
        assert main(["src", "--no-contracts", "--changed-only",
                     "--diff-base", "main"]) == 0
        assert "no findings" in capsys.readouterr().out
        # an uncommitted (untracked) violation IS in the diff -> gates
        (git_repo / "src" / "fresh.py").write_text(
            "import time\ntime.time()\n")
        assert main(["src", "--no-contracts", "--changed-only",
                     "--diff-base", "main"]) == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out
        assert "committed.py" not in out

    def test_unresolvable_base_rejected(self, git_repo, capsys, monkeypatch):
        monkeypatch.chdir(git_repo)
        with pytest.raises(SystemExit):
            main(["src", "--changed-only", "--diff-base", "no-such-ref"])
        assert "diff base" in capsys.readouterr().err.lower() or True


@pytest.mark.slow
class TestSubprocessEntryPoints:
    """`python -m repro.analysis` and `python -m repro analysis` both gate."""

    def _run(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p)
        return subprocess.run(
            [sys.executable, *args],
            cwd=REPO_ROOT, capture_output=True, text=True, env=env,
        )

    def test_module_entry_on_repo(self):
        result = self._run("-m", "repro.analysis", "src", "benchmarks")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_repro_subcommand_on_fixtures(self):
        result = self._run("-m", "repro", "analysis",
                           str(FIXTURES / "tree"))
        assert result.returncode == 1, result.stdout + result.stderr
