"""The CLI gate: exit codes, JSON output, subcommand routing."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


class TestExitCodes:
    def test_fixture_tree_with_planted_violations_fails(self, capsys):
        assert main([str(FIXTURES / "tree")]) == 1
        out = capsys.readouterr().out
        for rule in ("RA101", "RA102", "RA103", "RA104", "RA105"):
            assert rule in out

    def test_clean_tree_passes(self, capsys):
        assert main([str(FIXTURES / "clean")]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_repo_src_and_benchmarks_are_clean(self, capsys):
        src = REPO_ROOT / "src"
        benchmarks = REPO_ROOT / "benchmarks"
        code = main([str(src), str(benchmarks)])
        assert code == 0, capsys.readouterr().out


class TestOutputs:
    def test_json_report(self, capsys):
        assert main([str(FIXTURES / "tree"), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["ok"] is False
        assert payload["summary"]["errors"] >= 5
        rules = {f["rule"] for f in payload["findings"]}
        assert {"RA101", "RA102", "RA103", "RA104", "RA105"} <= rules

    def test_rule_filter(self, capsys):
        assert main([str(FIXTURES / "tree"), "--rule", "RA104", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in payload["findings"]} == {"RA104"}

    def test_unknown_rule_rejected(self):
        with pytest.raises(SystemExit):
            main([str(FIXTURES / "clean"), "--rule", "RA999"])

    def test_nonexistent_path_rejected(self, capsys):
        # a typo'd path in CI must not pass as "clean"
        with pytest.raises(SystemExit):
            main(["no/such/dir"])
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("RA101", "RA102", "RA103", "RA104", "RA105",
                     "RA2xx", "RA3xx"):
            assert rule in out

    def test_no_contracts_flag(self, capsys):
        assert main([str(FIXTURES / "clean"), "--no-contracts"]) == 0


@pytest.mark.slow
class TestSubprocessEntryPoints:
    """`python -m repro.analysis` and `python -m repro analysis` both gate."""

    def _run(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p)
        return subprocess.run(
            [sys.executable, *args],
            cwd=REPO_ROOT, capture_output=True, text=True, env=env,
        )

    def test_module_entry_on_repo(self):
        result = self._run("-m", "repro.analysis", "src", "benchmarks")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_repro_subcommand_on_fixtures(self):
        result = self._run("-m", "repro", "analysis",
                           str(FIXTURES / "tree"))
        assert result.returncode == 1, result.stdout + result.stderr
