"""Suppression syntax: # repro: noqa[RULE] and the blanket form."""

from repro.analysis import analyze_source
from repro.analysis.noqa import BLANKET, is_suppressed, line_suppressions


class TestParsing:
    def test_rule_list(self):
        table = line_suppressions("x = 1  # repro: noqa[RA101, RA105]\n")
        assert table == {1: frozenset({"RA101", "RA105"})}

    def test_blanket(self):
        table = line_suppressions("x = 1  # repro: noqa\n")
        assert table[1] is BLANKET

    def test_case_insensitive_codes(self):
        table = line_suppressions("x = 1  # repro: noqa[ra102]\n")
        assert is_suppressed(table, 1, "RA102")

    def test_unrelated_comments_ignored(self):
        assert line_suppressions("x = 1  # just a comment\n") == {}
        assert line_suppressions("x = 1  # noqa\n") == {}  # flake8 form ≠ ours

    def test_only_the_annotated_line(self):
        table = line_suppressions("x = 1  # repro: noqa[RA101]\ny = 2\n")
        assert is_suppressed(table, 1, "RA101")
        assert not is_suppressed(table, 2, "RA101")


class TestEndToEnd:
    def test_suppressed_finding_dropped(self):
        source = (
            "import time\n"
            "start = time.time()  # repro: noqa[RA105] -- timestamp only\n"
        )
        assert analyze_source(source, "src/module.py") == []

    def test_wrong_rule_does_not_suppress(self):
        source = (
            "import time\n"
            "start = time.time()  # repro: noqa[RA101]\n"
        )
        findings = analyze_source(source, "src/module.py")
        assert [f.rule for f in findings] == ["RA105"]

    def test_blanket_suppresses_everything(self):
        source = (
            "import time\n"
            "start = time.time()  # repro: noqa\n"
        )
        assert analyze_source(source, "src/module.py") == []
