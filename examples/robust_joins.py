"""Worst-case robustness: why WCOJ algorithms exist (the Fig 1 story).

Sweeps the triangle workload from uniform to maximally adversarial data
and reports runtime plus — the mechanism behind it — the number of
intermediate tuples each algorithm produced.  Also shows binary-join
*order sensitivity*: the same query with a pinned bad order explodes
where the worst-case optimal join cannot.

Run with::

    PYTHONPATH=src python examples/robust_joins.py
"""

import time

from repro import join
from repro.bench import print_table
from repro.data import adversarial_triangle_tables

QUERY = "R(a,b), S(b,c), T(c,a)"
ROWS = 350


def run(tables, **options):
    start = time.perf_counter()
    result = join(QUERY, tables, **options)
    elapsed = (time.perf_counter() - start) * 1e3
    return result, elapsed


def main() -> None:
    rows = []
    for adversity in (0.0, 0.5, 1.0):
        tables = adversarial_triangle_tables(ROWS, adversity, seed=3)
        entry = {"adversity": adversity}
        for label, options in (
            ("binary", dict(algorithm="binary")),
            ("GJ+sonic", dict(algorithm="generic", index="sonic")),
            ("hashtrie", dict(algorithm="hashtrie")),
        ):
            result, elapsed = run(tables, **options)
            entry[f"{label}_ms"] = round(elapsed, 1)
            entry[f"{label}_intermediates"] = result.metrics.intermediate_tuples
            entry["triangles"] = result.count
        rows.append(entry)
    print_table("Triangle join under increasing adversity", rows)
    print("note how the binary join's intermediates explode quadratically "
          "while the WCOJ drivers stay near the output size (the AGM bound).")

    # ------------------------------------------------------------------
    # Join-order sensitivity: the poison only matters for binary plans.
    # ------------------------------------------------------------------
    tables = adversarial_triangle_tables(ROWS, adversity=1.0, seed=3)
    order_rows = []
    for order in (["R", "S", "T"], ["S", "T", "R"], ["T", "R", "S"]):
        result, elapsed = run(tables, algorithm="binary", binary_order=order)
        order_rows.append({
            "pinned_order": "->".join(order),
            "ms": round(elapsed, 1),
            "intermediates": result.metrics.intermediate_tuples,
        })
    result, elapsed = run(tables, algorithm="generic", index="sonic")
    order_rows.append({
        "pinned_order": "(GJ+sonic, any order)",
        "ms": round(elapsed, 1),
        "intermediates": result.metrics.intermediate_tuples,
    })
    print_table("Binary join-order sensitivity on adversarial data",
                order_rows)


if __name__ == "__main__":
    main()
