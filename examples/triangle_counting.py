"""Graph analytics: cycle counting over social-network-like datasets.

The paper's Table 1 scenario — triangle counting over the SNAP datasets,
here over the synthetic stand-ins (DESIGN.md §1) — comparing every join
algorithm and GJ index.

Run with::

    PYTHONPATH=src python examples/triangle_counting.py
"""

import time

from repro import join
from repro.bench import print_table
from repro.data import DATASETS, load_snap_dataset, triangle_count_truth
from repro.planner import cycle_query

TRIANGLE = "E1=E(a,b), E2=E(b,c), E3=E(c,a)"
CONTENDERS = {
    "binary": dict(algorithm="binary"),
    "GJ+sonic": dict(algorithm="generic", index="sonic"),
    "GJ+btree": dict(algorithm="generic", index="btree"),
    "hashtrie": dict(algorithm="hashtrie"),
    "leapfrog": dict(algorithm="leapfrog"),
}


def main() -> None:
    rows = []
    for dataset in DATASETS:
        edges = load_snap_dataset(dataset, scale=0.12, seed=7)
        truth = triangle_count_truth(edges)
        source = {"E1": edges, "E2": edges, "E3": edges}
        row = {"dataset": dataset, "edges": len(edges), "triangles": truth}
        for name, options in CONTENDERS.items():
            start = time.perf_counter()
            result = join(TRIANGLE, source, **options)
            elapsed = (time.perf_counter() - start) * 1e3
            assert result.count == truth, (dataset, name)
            row[name] = f"{elapsed:.1f}ms"
        rows.append(row)
    print_table("Triangle counting across datasets (all algorithms agree)",
                rows)

    # longer cycles on the smallest dataset: the Fig 14 sweep
    edges = load_snap_dataset("facebook", scale=0.1, seed=7)
    cycle_rows = []
    for length in (3, 4):
        query = cycle_query(length)
        source = {f"E{i}": edges for i in range(1, length + 1)}
        entry = {"cycle_length": length}
        for name, options in CONTENDERS.items():
            start = time.perf_counter()
            result = join(query, source, **options)
            entry[name] = f"{(time.perf_counter()-start)*1e3:.1f}ms"
            entry["count"] = result.count
        cycle_rows.append(entry)
    print_table("Cycle counting on the Facebook stand-in", cycle_rows)


if __name__ == "__main__":
    main()
