"""Index structure explorer: the §5.5–5.10 microbenchmark study in miniature.

Builds every registered index over the same Zipfian table and compares
build time, point lookups, prefix operations and memory — then walks
through Sonic's tuning knobs (bucket size, overallocation) and its patch
statistics.

Run with::

    PYTHONPATH=src python examples/index_explorer.py
"""

import time

from repro.bench import make_sized_index, print_table
from repro.core import SonicConfig, SonicIndex
from repro.data import lookup_workload, prefix_workload, zipf_table
from repro.indexes import registered_indexes

ROWS = 3000
COLUMNS = 4


def timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return (time.perf_counter() - start) * 1e3


def main() -> None:
    table = zipf_table("demo", ROWS, COLUMNS, domain=60, alpha=0.3, seed=1)
    points = lookup_workload(table, 1000, seed=2)
    prefixes = prefix_workload(table, 500, prefix_length=2, seed=3)

    rows = []
    for name in registered_indexes():
        index = make_sized_index(name, COLUMNS, ROWS)
        build_ms = timed(lambda: index.build(table.rows))
        point_ms = timed(lambda: [index.contains(p) for p in points])
        if index.SUPPORTS_PREFIX:
            prefix_ms = timed(
                lambda: [list(index.prefix_lookup(p)) for p in prefixes])
            count_ms = timed(
                lambda: [index.count_prefix(p) for p in prefixes])
        else:
            prefix_ms = count_ms = "n/a"
        rows.append({
            "index": name,
            "build_ms": round(build_ms, 1),
            "point_ms": round(point_ms, 1),
            "prefix_ms": prefix_ms if prefix_ms == "n/a" else round(prefix_ms, 1),
            "count_ms": count_ms if count_ms == "n/a" else round(count_ms, 1),
            "memory_KB": round(index.memory_usage() / 1024, 1),
        })
    print_table(f"All indexes over {ROWS} x {COLUMNS} Zipfian tuples", rows)

    # ------------------------------------------------------------------
    # Sonic tuning: bucket size vs patching (the Fig 17 trade-off)
    # ------------------------------------------------------------------
    tuning = []
    for bucket_size in (2, 4, 8, 16, 32):
        # the paper couples bucket size with overallocation (§5.10): a
        # bigger bucket at fixed capacity would shrink the bucket *count*
        # and force allocator sharing, i.e. more patching, not less
        config = SonicConfig.for_tuples(ROWS, bucket_size=bucket_size,
                                        overallocation=max(2.0, bucket_size / 2))
        index = SonicIndex(COLUMNS, config)
        build_ms = timed(lambda: index.build(table.rows))
        stats = index.patch_stats()
        tuning.append({
            "bucket_size": bucket_size,
            "build_ms": round(build_ms, 1),
            "patched_frac": round(max(stats.values()), 3),
            "memory_KB": round(index.memory_usage() / 1024, 1),
        })
    print_table("Sonic bucket-size tuning (capacity grows with bucket)",
                tuning)

    # overallocation: memory for probe-chain length (and patch rarity)
    overalloc = []
    for factor in (1.1, 1.5, 2.0, 4.0):
        config = SonicConfig.for_tuples(ROWS, overallocation=factor)
        index = SonicIndex(COLUMNS, config)
        index.build(table.rows)
        stats = index.patch_stats()
        overalloc.append({
            "overallocation": factor,
            "memory_KB": round(index.memory_usage() / 1024, 1),
            "patched_frac": round(max(stats.values()), 3),
        })
    print_table("Sonic overallocation factor (§3.5 OF)", overalloc)


if __name__ == "__main__":
    main()
