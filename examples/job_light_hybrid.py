"""Relational workloads and the hybrid optimizer.

The paper's §5.16 lesson: on acyclic PK-FK star joins (JOB-light), binary
hash joins beat every worst-case optimal algorithm — WCOJ robustness is
not free.  Umbra's answer ([22], §6) is a *hybrid* optimizer that picks
per query; this example runs the synthetic JOB-light workload and shows
the optimizer routing stars to the binary pipeline and a cyclic query to
the Generic Join.

Run with::

    PYTHONPATH=src python examples/job_light_hybrid.py
"""

import time

from repro import join
from repro.bench import print_table
from repro.data import job_light_queries, make_imdb, random_edge_relation
from repro.planner import HybridOptimizer, Statistics
from repro.joins import resolve_relations
from repro.planner import parse_query


def main() -> None:
    catalog = make_imdb(num_titles=300, seed=5)
    print("synthetic IMDB:", {r.name: len(r) for r in catalog})

    queries = job_light_queries(catalog, seed=6, max_satellites=3)
    print(f"JOB-light-style workload: {len(queries)} queries\n")

    optimizer = HybridOptimizer()
    rows = []
    totals = {"binary": 0.0, "GJ+sonic": 0.0}
    for job in queries[:8]:
        relations = resolve_relations(job.query, job.relations)
        stats = Statistics.collect(relations.values())
        choice = optimizer.choose(job.query, stats)

        timings = {}
        counts = set()
        for label, options in (("binary", dict(algorithm="binary")),
                               ("GJ+sonic", dict(algorithm="generic",
                                                 index="sonic"))):
            start = time.perf_counter()
            result = join(job.query, job.relations, **options)
            timings[label] = (time.perf_counter() - start) * 1e3
            totals[label] += timings[label]
            counts.add(result.count)
        assert len(counts) == 1, job.name
        rows.append({
            "query": job.name,
            "results": counts.pop(),
            "binary_ms": round(timings["binary"], 2),
            "gj_sonic_ms": round(timings["GJ+sonic"], 2),
            "optimizer": choice.algorithm,
        })
    print_table("JOB-light: binary vs WCOJ (optimizer choice in last column)",
                rows)
    print(f"workload totals: binary {totals['binary']:.1f} ms, "
          f"GJ+sonic {totals['GJ+sonic']:.1f} ms")

    # and the counterexample: a cyclic query routes to WCOJ
    edges = random_edge_relation(60, 400, seed=8)
    triangle = parse_query("E1=E(a,b), E2=E(b,c), E3=E(c,a)")
    relations = resolve_relations(triangle,
                                  {"E1": edges, "E2": edges, "E3": edges})
    choice = optimizer.choose(triangle, Statistics.collect(relations.values()))
    print(f"\ntriangle query -> {choice.algorithm}: {choice.reason}")
    result = join(triangle, {"E1": edges, "E2": edges, "E3": edges},
                  algorithm="auto")
    print(f"auto mode executed it with: {result.metrics.algorithm}")


if __name__ == "__main__":
    main()
