"""Quickstart: joins and the Sonic index in five minutes.

Run with::

    PYTHONPATH=src python examples/quickstart.py
"""

from repro import (
    Relation,
    SonicConfig,
    SonicIndex,
    cycle_query,
    fractional_cover,
    Hypergraph,
    join,
    parse_query,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Relations are named tuple-bags with schemas.
    # ------------------------------------------------------------------
    edges = Relation("E", ("src", "dst"), [
        (0, 1), (1, 2), (2, 0),          # a triangle
        (2, 3), (3, 4), (4, 2),          # another triangle
        (1, 3), (4, 0),                  # extra edges
    ])
    print(f"relation: {edges}")

    # ------------------------------------------------------------------
    # 2. Queries are natural joins in datalog style; aliases express
    #    self-joins.  This is the paper's triangle query.
    # ------------------------------------------------------------------
    query = parse_query("E1=E(a,b), E2=E(b,c), E3=E(c,a)")
    print(f"query:    {query}")

    # The AGM machinery is a first-class citizen:
    hypergraph = Hypergraph.from_query(query)
    cover = fractional_cover(hypergraph, {a.alias: len(edges) for a in query})
    print(f"AGM bound: {cover.bound:.1f} (cover weights "
          f"{ {k: round(v, 2) for k, v in cover.weights.items()} })")

    # ------------------------------------------------------------------
    # 3. join() plans, builds the per-query indexes and executes.
    # ------------------------------------------------------------------
    source = {"E1": edges, "E2": edges, "E3": edges}
    result = join(query, source, algorithm="generic", index="sonic",
                  materialize=True)
    print(f"\ntriangles found: {result.count}")
    for row in result.rows_as_dicts():
        print(f"  {row}")
    print(f"timing: build {result.metrics.build_seconds*1e3:.2f} ms, "
          f"probe {result.metrics.probe_seconds*1e3:.2f} ms")

    # Any algorithm / index combination answers the same query:
    for algorithm in ("binary", "hashtrie", "leapfrog", "auto"):
        count = join(query, source, algorithm=algorithm).count
        print(f"  {algorithm:9s} -> {count} triangles")
    for index in ("btree", "art", "hattrie", "hiermap"):
        count = join(query, source, algorithm="generic", index=index).count
        print(f"  GJ+{index:8s} -> {count} triangles")

    # ------------------------------------------------------------------
    # 4. The Sonic index can also be used standalone.
    # ------------------------------------------------------------------
    index = SonicIndex(3, SonicConfig.for_tuples(4))
    for row in [(1, 10, 100), (1, 10, 200), (1, 20, 300), (2, 10, 400)]:
        index.insert(row)
    print(f"\nstandalone Sonic: {len(index)} tuples")
    print(f"  contains (1,10,200): {index.contains((1, 10, 200))}")
    print(f"  prefix (1,10):       {sorted(index.prefix_lookup((1, 10)))}")
    print(f"  count_prefix (1,):   {index.count_prefix((1,))}")
    print(f"  next values of (1,): {sorted(index.iter_next_values((1,)))}")

    # cycle_query builds the Fig 14 workloads programmatically
    print(f"\npentagon query: {cycle_query(5)}")


if __name__ == "__main__":
    main()
