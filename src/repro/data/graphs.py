"""Graph workloads for the cycle-counting experiments (§5.14, Fig 14).

The paper evaluates cycle counting (triangles, rectangles, pentagons) over
two-column edge relations.  These generators produce edge relations from
standard random-graph models (via :mod:`networkx`), with the symmetrized
form the cycle queries expect (an undirected edge stored in both
directions), and helpers to compute ground-truth triangle counts for test
oracles.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import ConfigurationError
from repro.storage.relation import Relation


def edges_relation(graph: nx.Graph, name: str = "E",
                   symmetric: bool | None = None) -> Relation:
    """An edge relation ``name(src, dst)`` from a networkx graph.

    Undirected graphs are symmetrized by default (each edge stored both
    ways) so that directed cycle queries count each undirected cycle a
    fixed number of times; self-loops are dropped (they make every cycle
    query degenerate).
    """
    if symmetric is None:
        symmetric = not graph.is_directed()
    rows: set[tuple] = set()
    for u, v in graph.edges():
        if u == v:
            continue
        rows.add((u, v))
        if symmetric:
            rows.add((v, u))
    return Relation(name, ("src", "dst"), rows)


def barabasi_albert_graph(nodes: int, attached_edges: int = 5,
                          seed: int = 0) -> nx.Graph:
    """Scale-free graph (preferential attachment): heavy-tailed degrees."""
    if nodes <= attached_edges:
        raise ConfigurationError("nodes must exceed attached_edges")
    return nx.barabasi_albert_graph(nodes, attached_edges, seed=seed)


def powerlaw_cluster_graph(nodes: int, attached_edges: int = 5,
                           triangle_probability: float = 0.3,
                           seed: int = 0) -> nx.Graph:
    """Power-law graph with tunable clustering (social-network-like)."""
    return nx.powerlaw_cluster_graph(nodes, attached_edges,
                                     triangle_probability, seed=seed)


def erdos_renyi_graph(nodes: int, probability: float, seed: int = 0,
                      directed: bool = False) -> nx.Graph:
    """Uniform random graph."""
    return nx.gnp_random_graph(nodes, probability, seed=seed, directed=directed)


def random_edge_relation(nodes: int, edges: int, seed: int = 0,
                         name: str = "E") -> Relation:
    """A uniformly random directed edge relation of the requested size."""
    graph = nx.gnm_random_graph(nodes, edges, seed=seed, directed=True)
    return edges_relation(graph, name=name, symmetric=False)


def triangle_count_truth(edges: Relation) -> int:
    """Ground-truth count of the directed triangle query over ``edges``.

    Counts ordered triples ``(a, b, c)`` with edges a→b, b→c, c→a — exactly
    what the triangle join query returns (an undirected triangle stored
    symmetrically is counted 6 times).  Used as the test oracle.
    """
    out_neighbours: dict[object, set] = {}
    present = set()
    for src, dst in edges:
        out_neighbours.setdefault(src, set()).add(dst)
        present.add((src, dst))
    count = 0
    for a, b in present:
        for c in out_neighbours.get(b, ()):
            if (c, a) in present:
                count += 1
    return count


def cycle_count_truth(edges: Relation, length: int) -> int:
    """Ground-truth count of the directed ``length``-cycle query (small inputs).

    Brute-force DFS over the edge set; intended for test-sized graphs.
    """
    if length < 2:
        raise ConfigurationError("cycle length must be >= 2")
    adjacency: dict[object, list] = {}
    present = set()
    for src, dst in edges:
        adjacency.setdefault(src, []).append(dst)
        present.add((src, dst))

    count = 0

    def walk(start, node, depth):
        nonlocal count
        if depth == length - 1:
            if (node, start) in present:
                count += 1
            return
        for neighbour in adjacency.get(node, ()):
            walk(start, neighbour, depth + 1)

    for src in adjacency:
        walk(src, src, 0)
    return count
