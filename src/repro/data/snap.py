"""Stand-ins for the paper's SNAP datasets (§5.3, Table 1).

The paper evaluates on four SNAP graphs [32]; those files are not
available offline, so — per the substitution policy in DESIGN.md — each is
replaced by a *seeded synthetic graph* matching the original's qualitative
shape (directedness, density, degree skew, clustering) at a configurable
scale.  Published statistics of the originals, for reference:

=============  ========  ===========  ==========  ==================
dataset        nodes     edges        directed?   character
=============  ========  ===========  ==========  ==================
ego-Facebook   4,039     88,234       no          dense ego nets, high clustering
wiki-Vote      7,115     103,689      yes         bipartite-ish voting, hub-heavy
soc-Epinions1  75,879    508,837      yes         power-law trust network
ego-Twitter    81,306    1,768,149    yes         large, very skewed
=============  ========  ===========  ==========  ==================

``scale=1.0`` reproduces roughly 1/10 of the original node counts (full
originals are far beyond pure-Python joins); relative sizes and density
orderings between the four datasets are preserved, which is what Table 1's
cross-dataset comparison exercises.
"""

from __future__ import annotations

from repro.data.graphs import edges_relation, powerlaw_cluster_graph
from repro.errors import ConfigurationError
from repro.storage.relation import Relation

import networkx as nx

#: per-dataset synthetic recipe: (nodes at scale=1, model parameters)
_RECIPES = {
    "facebook": {"nodes": 400, "attached": 11, "clustering": 0.6,
                 "directed": False},
    "wikivote": {"nodes": 700, "attached": 7, "clustering": 0.15,
                 "directed": True},
    "epinions": {"nodes": 1500, "attached": 6, "clustering": 0.2,
                 "directed": True},
    "twitter": {"nodes": 2500, "attached": 14, "clustering": 0.3,
                "directed": True},
}

DATASETS = tuple(sorted(_RECIPES))


def load_snap_dataset(name: str, scale: float = 1.0, seed: int = 0) -> Relation:
    """A synthetic edge relation shaped like the named SNAP dataset.

    Undirected sources (Facebook) are symmetrized; directed sources get a
    random orientation over a power-law-cluster backbone plus a fraction
    of reciprocal edges (social graphs have many).
    """
    try:
        recipe = _RECIPES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {DATASETS}"
        ) from None
    if scale <= 0:
        raise ConfigurationError(f"scale must be > 0, got {scale}")
    nodes = max(int(recipe["nodes"] * scale), recipe["attached"] + 2)
    backbone = powerlaw_cluster_graph(nodes, recipe["attached"],
                                      recipe["clustering"], seed=seed)
    if not recipe["directed"]:
        return edges_relation(backbone, name=name)

    rng = nx.utils.create_random_state(seed + 1)
    rows: set[tuple] = set()
    for u, v in backbone.edges():
        if u == v:
            continue
        if rng.random_sample() < 0.7:
            rows.add((u, v))
        else:
            rows.add((v, u))
        if rng.random_sample() < 0.25:  # reciprocal edges
            rows.add((v, u))
            rows.add((u, v))
    return Relation(name, ("src", "dst"), rows)


def dataset_summary(scale: float = 1.0, seed: int = 0) -> list[dict[str, object]]:
    """Name/node/edge summary of the generated datasets (for reports)."""
    summary = []
    for name in DATASETS:
        relation = load_snap_dataset(name, scale=scale, seed=seed)
        nodes = len({v for row in relation for v in row})
        summary.append({"dataset": name, "nodes": nodes, "edges": len(relation)})
    return summary
