"""Synthetic table generators behind the micro- and macro-benchmarks.

* :func:`zipf_table` — the §5.2 microbenchmark input: ``k``-column tables
  of Zipfian values (α = 0 is uniform), scaled down from the paper's 256M
  rows to Python-appropriate sizes.
* :func:`lookup_workload` — the §5.3 probe mix: half hits, half misses,
  "so that all levels of the index are traversed during the search".
* :func:`adversarial_triangle_tables` — the Fig 1 axis from uniform random
  to *maximally adversarial*: star-shaped relations whose binary-join
  intermediates are Θ(n²) while the triangle output stays tiny.
* :func:`umbra_adversarial_tables` — the §5.15 five-relation workload
  whose skew defeats Hash-Trie Join's singleton pruning / lazy expansion.
"""

from __future__ import annotations

import random

from repro.data.zipf import ZipfGenerator, zipf_columns
from repro.errors import ConfigurationError
from repro.storage.relation import Relation


def zipf_table(name: str, num_rows: int, num_columns: int, domain: int | None = None,
               alpha: float = 0.0, seed: int = 0, distinct: bool = True) -> Relation:
    """A ``num_columns``-ary relation of Zipfian values.

    ``domain`` defaults to ``num_rows`` (matching the paper's dense random
    keys); ``distinct`` deduplicates rows (the join algorithms assume set
    semantics), topping the table back up to ``num_rows`` where collisions
    removed rows.
    """
    if num_rows < 1 or num_columns < 1:
        raise ConfigurationError("num_rows and num_columns must be >= 1")
    if domain is None:
        domain = num_rows
    columns = zipf_columns(num_rows, num_columns, domain, alpha, seed)
    rows = list(zip(*(column.tolist() for column in columns)))
    if distinct:
        unique = dict.fromkeys(rows)
        attempt = 1
        while len(unique) < num_rows and attempt < 16:
            deficit = num_rows - len(unique)
            extra = zipf_columns(deficit * 2, num_columns, domain, alpha,
                                 seed + 977 * attempt)
            for row in zip(*(column.tolist() for column in extra)):
                if len(unique) == num_rows:
                    break
                unique.setdefault(row)
            attempt += 1
        rows = list(unique)
    attributes = tuple(f"c{i}" for i in range(num_columns))
    return Relation(name, attributes, rows)


def lookup_workload(relation: Relation, count: int, seed: int = 0,
                    miss_fraction: float = 0.5,
                    domain: int | None = None) -> list[tuple]:
    """``count`` probe tuples, ``miss_fraction`` of them absent (§5.3)."""
    rng = random.Random(seed)
    present = set(relation.rows)
    if domain is None:
        domain = max((max(row) for row in relation.rows), default=1) + 1
    probes: list[tuple] = []
    hits = relation.sample_rows(count - int(count * miss_fraction), rng)
    probes.extend(hits)
    arity = relation.arity
    while len(probes) < count:
        candidate = tuple(rng.randrange(domain * 2) for _ in range(arity))
        if candidate not in present:
            probes.append(candidate)
    rng.shuffle(probes)
    return probes


def prefix_workload(relation: Relation, count: int, prefix_length: int,
                    seed: int = 0, miss_fraction: float = 0.5) -> list[tuple]:
    """``count`` prefix probes of the given length, half misses (§5.3/5.7)."""
    rng = random.Random(seed)
    probes: list[tuple] = []
    hits = relation.sample_rows(count - int(count * miss_fraction), rng)
    probes.extend(row[:prefix_length] for row in hits)
    domain = max((max(row) for row in relation.rows), default=1) + 1
    present = {row[:prefix_length] for row in relation.rows}
    while len(probes) < count:
        candidate = tuple(rng.randrange(domain * 2) for _ in range(prefix_length))
        if candidate not in present:
            probes.append(candidate)
    rng.shuffle(probes)
    return probes


def adversarial_triangle_tables(num_rows: int, adversity: float, seed: int = 0,
                                ) -> dict[str, Relation]:
    """Triangle-query inputs interpolating uniform → adversarial (Fig 1).

    ``adversity`` ∈ [0, 1]: the fraction of each relation drawn from a
    *star* pattern — ``R`` gets ``(x, 0)`` and ``(0, x)`` spokes (and
    likewise S and T), which makes every binary sub-join quadratic in the
    number of spokes while contributing only a single triangle (0,0,0).
    The remaining tuples are uniform random, whose triangles are sparse.
    """
    if not 0.0 <= adversity <= 1.0:
        raise ConfigurationError(f"adversity must be in [0,1], got {adversity}")
    rng = random.Random(seed)
    adversarial_rows = int(num_rows * adversity)
    spokes = adversarial_rows // 2
    domain = max(num_rows, 4)

    def star_rows() -> set[tuple]:
        rows: set[tuple] = set()
        while len(rows) < spokes:
            rows.add((rng.randrange(1, domain), 0))
        while len(rows) < 2 * spokes:
            rows.add((0, rng.randrange(1, domain)))
        rows.add((0, 0))
        return rows

    def uniform_rows(existing: set[tuple], target: int) -> set[tuple]:
        rows = set(existing)
        while len(rows) < target:
            rows.add((rng.randrange(1, domain), rng.randrange(1, domain)))
        return rows

    tables = {}
    for name in ("R", "S", "T"):
        rows = star_rows() if adversarial_rows else set()
        rows = uniform_rows(rows, num_rows)
        tables[name] = Relation(name, ("x", "y"), rows)
    return tables


def umbra_adversarial_tables(num_rows: int, alpha: float = 0.9, seed: int = 0,
                             ) -> dict[str, Relation]:
    """The §5.15 workload: R1(a,b,d,e) … R5(c,e,f), skewed against Hash-Trie.

    Shared attributes are drawn from a heavily Zipfian domain so a few
    heavy-hitter join values carry long chains: Umbra's lazily-pruned trie
    layers must then be re-materialized at probe time (the paper measures
    Sonic beating Hash-Trie by ~2× here), while non-shared attributes stay
    near-unique so singleton pruning looks attractive at build time.
    """
    schemas = {
        "R1": ("a", "b", "d", "e"),
        "R2": ("a", "c", "d", "f"),
        "R3": ("a", "b", "c"),
        "R4": ("b", "d", "f"),
        "R5": ("c", "e", "f"),
    }
    # shared attributes (appear in >= 2 relations) get skew + small domain;
    # 'e' appears twice too — every attribute here is shared, so vary the
    # domains instead: the heavy ones are the high-degree attributes.
    counts: dict[str, int] = {}
    for attrs in schemas.values():
        for attribute in attrs:
            counts[attribute] = counts.get(attribute, 0) + 1
    domains = {
        attribute: max(8, num_rows // (8 if counts[attribute] >= 3 else 2))
        for attribute in counts
    }
    generators = {
        attribute: ZipfGenerator(
            domains[attribute],
            alpha if counts[attribute] >= 3 else alpha / 2,
            seed=seed + 131 * i,
        )
        for i, attribute in enumerate(sorted(counts))
    }
    tables = {}
    for name, attrs in schemas.items():
        rows: set[tuple] = set()
        guard = 0
        while len(rows) < num_rows and guard < 32 * num_rows:
            rows.add(tuple(generators[a].sample_one() for a in attrs))
            guard += 1
        tables[name] = Relation(name, attrs, rows)
    return tables


def string_table(name: str, num_rows: int, num_columns: int,
                 key_length: int = 12, seed: int = 0) -> Relation:
    """Variable-length string keys for the Fig 13 experiment."""
    rng = random.Random(seed)
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    rows: set[tuple] = set()
    while len(rows) < num_rows:
        rows.add(tuple(
            "".join(rng.choice(alphabet)
                    for _ in range(rng.randrange(3, key_length + 1)))
            for _ in range(num_columns)
        ))
    attributes = tuple(f"s{i}" for i in range(num_columns))
    return Relation(name, attributes, rows)
