"""Workload generators for every experiment in the evaluation."""

from repro.data.graphs import (
    barabasi_albert_graph,
    cycle_count_truth,
    edges_relation,
    erdos_renyi_graph,
    powerlaw_cluster_graph,
    random_edge_relation,
    triangle_count_truth,
)
from repro.data.imdb import JobQuery, job_light_queries, make_imdb
from repro.data.snap import DATASETS, dataset_summary, load_snap_dataset
from repro.data.synthetic import (
    adversarial_triangle_tables,
    lookup_workload,
    prefix_workload,
    string_table,
    umbra_adversarial_tables,
    zipf_table,
)
from repro.data.zipf import ZipfGenerator, zipf_columns

__all__ = [
    "DATASETS",
    "JobQuery",
    "ZipfGenerator",
    "adversarial_triangle_tables",
    "barabasi_albert_graph",
    "cycle_count_truth",
    "dataset_summary",
    "edges_relation",
    "erdos_renyi_graph",
    "job_light_queries",
    "load_snap_dataset",
    "lookup_workload",
    "make_imdb",
    "powerlaw_cluster_graph",
    "prefix_workload",
    "random_edge_relation",
    "string_table",
    "triangle_count_truth",
    "umbra_adversarial_tables",
    "zipf_columns",
    "zipf_table",
]
