"""A synthetic IMDB-like star schema and JOB-light-style queries (§5.16).

The paper evaluates relational (non-graph) behaviour on the Join Order
Benchmark Light [47] over IMDB.  The real IMDB dump is unavailable
offline; per DESIGN.md we substitute a scaled synthetic star schema that
preserves what JOB-light actually stresses:

* one fact-like hub (``title``) referenced by every satellite through a
  ``t`` (movie id) foreign key;
* skewed FK fan-out (popular movies accumulate more cast/keywords);
* acyclic, PK-FK star joins — the regime where the paper's Table 1 shows
  **binary joins beating every WCOJ algorithm** ("because this is not a
  worst-case situation").

Queries join ``title`` with 1–4 satellites, with selections applied as
relation pre-filters (the paper's framework also indexes "only joined
attributes").  :func:`job_light_queries` produces the workload; every
query is a connected, acyclic natural join on ``t``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import combinations

from repro.data.zipf import ZipfGenerator
from repro.planner.query import Atom, JoinQuery
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation

_SATELLITES = ("cast_info", "movie_info", "movie_info_idx",
               "movie_keyword", "movie_companies")


def make_imdb(num_titles: int = 2000, seed: int = 0) -> Catalog:
    """Generate the synthetic IMDB catalog at the given scale."""
    rng = random.Random(seed)
    catalog = Catalog()

    titles = [
        (t, rng.randrange(7), 1900 + rng.randrange(124))
        for t in range(num_titles)
    ]
    catalog.add(Relation("title", ("t", "kind", "year"), titles))

    fanouts = {
        "cast_info": (3.0, ("t", "person", "role"),
                      lambda r: (r.randrange(num_titles * 2), r.randrange(12))),
        "movie_info": (2.0, ("t", "info_type"),
                       lambda r: (r.randrange(40),)),
        "movie_info_idx": (1.0, ("t", "info_type_idx"),
                           lambda r: (r.randrange(8),)),
        "movie_keyword": (2.0, ("t", "keyword"),
                          lambda r: (r.randrange(num_titles),)),
        "movie_companies": (1.5, ("t", "company", "ctype"),
                            lambda r: (r.randrange(num_titles // 4 + 1),
                                       r.randrange(4))),
    }
    for index, (name, (fanout, attributes, payload)) in enumerate(fanouts.items()):
        # skewed FK: popular titles attract disproportionately many rows
        generator = ZipfGenerator(num_titles, alpha=0.8, seed=seed + 7 * index)
        rows: set[tuple] = set()
        target = int(num_titles * fanout)
        guard = 0
        while len(rows) < target and guard < 20 * target:
            t = generator.sample_one()
            rows.add((t, *payload(rng)))
            guard += 1
        catalog.add(Relation(name, attributes, rows))
    return catalog


@dataclass(frozen=True)
class JobQuery:
    """One JOB-light-style query: a join plus pre-filtered inputs."""

    name: str
    query: JoinQuery
    relations: dict[str, Relation]

    def __str__(self) -> str:
        return f"{self.name}: {self.query}"


def job_light_queries(catalog: Catalog, seed: int = 0,
                      max_satellites: int = 4) -> list[JobQuery]:
    """The workload: ``title`` joined with every satellite combination.

    JOB-light "covers all combinations of tables" (§5.16); we enumerate
    satellite subsets up to ``max_satellites`` and attach a mild selection
    to ``title`` (a year range) and to one satellite per query, mirroring
    JOB-light's filter style.
    """
    rng = random.Random(seed)
    title = catalog.get("title")
    queries: list[JobQuery] = []
    for size in range(1, max_satellites + 1):
        for satellites in combinations(_SATELLITES, size):
            short = [s[6:] if s.startswith("movie_") else s for s in satellites]
            name = f"job_{size}_{'_'.join(short)}"
            year_low = 1900 + rng.randrange(80)
            year_high = year_low + 30
            filtered_title = title.select(
                lambda row, lo=year_low, hi=year_high: lo <= row[2] <= hi,
                name="title",
            )
            atoms = [Atom("title", ("t", "kind", "year"))]
            relations: dict[str, Relation] = {"title": filtered_title}
            for position, satellite in enumerate(satellites):
                base = catalog.get(satellite)
                if position == 0 and base.arity >= 2:
                    # filter the first satellite on its second column
                    values = sorted(set(base.column(base.schema.attributes[1])))
                    keep = set(values[:max(1, len(values) // 2)])
                    base = base.select(lambda row, k=keep: row[1] in k,
                                       name=satellite)
                atoms.append(Atom(satellite, base.schema.attributes))
                relations[satellite] = base
            queries.append(JobQuery(name=name, query=JoinQuery(atoms),
                                    relations=relations))
    return queries
