"""In-memory relations.

A :class:`Relation` is a bag of equal-arity tuples with a
:class:`~repro.storage.schema.Schema`.  Storage is row-major (a list of
tuples) with lazily-built column views; at the scales this reproduction
targets, row-major keeps index builds (which consume whole tuples) simple
and fast, while the column views serve the workload generators and the
binary-join build sides.

Relations are *mostly* immutable: the only mutations are the explicit
append-style methods :meth:`Relation.insert` and :meth:`Relation.extend`,
which bump a **version counter** shared by every
:meth:`~Relation.renamed` view of the same storage.  ``(storage identity,
version)`` — :meth:`Relation.fingerprint` — is the cache key component
the session-scoped index cache (:mod:`repro.engine.cache`) uses to
detect that a cached index no longer reflects the relation.

Relations are the unit every join algorithm in :mod:`repro.joins` consumes;
the ``Relation`` here plays the role of the paper's ``Relation<IndexAdapter,
TableSchema, ...>`` template (Listing 1), minus the compile-time machinery:
the pairing of a relation with an index happens in
:class:`repro.joins.executor.JoinExecutor`.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import SchemaError
from repro.storage.schema import Schema


def _column_array(values: list) -> np.ndarray:
    """Column values as ``int64`` when every value fits, else ``object``.

    The object fallback is built element-wise — ``np.asarray`` on a mixed
    list would stringify or broadcast instead of holding the values.
    """
    try:
        return np.asarray(values, dtype=np.int64)
    except (TypeError, ValueError, OverflowError):
        array = np.empty(len(values), dtype=object)
        array[:] = values
        return array


class Relation:
    """A named collection of tuples over a schema (append-only mutation)."""

    __slots__ = ("name", "schema", "_rows", "_columns", "_arrays",
                 "_dtype_classes", "_version", "_mutlock")

    def __init__(self, name: str, schema: Schema | Sequence[str], rows: Iterable[tuple]):
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        self.name = name
        self.schema = schema
        arity = len(schema)
        stored: list[tuple] = []
        for row in rows:
            row = tuple(row)
            if len(row) != arity:
                raise SchemaError(
                    f"relation {name!r}: tuple {row!r} has arity {len(row)}, "
                    f"schema expects {arity}"
                )
            stored.append(row)
        # the mutation lock serializes appends and lazy cache fills; like
        # the caches and version box it is shared across renamed views
        self._mutlock = threading.Lock()
        self._rows = stored                       # repro: shared[lock=_mutlock]
        # column/array caches and the version counter are *shared objects*
        # across renamed views (positions align), so a mutation through any
        # view invalidates every view's caches and fingerprint at once
        self._columns: dict[int, list] = {}       # repro: shared[lock=_mutlock]
        self._arrays: dict[int, np.ndarray] = {}  # repro: shared[lock=_mutlock]
        self._dtype_classes: dict[int, str] = {}  # repro: shared[lock=_mutlock]
        self._version: list[int] = [0]            # repro: shared[lock=_mutlock]

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._rows)

    def __contains__(self, row: object) -> bool:
        return row in self._rows

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, {self.schema.attributes}, {len(self)} tuples)"

    @property
    def arity(self) -> int:
        return len(self.schema)

    @property
    def rows(self) -> list[tuple]:
        """The backing row list.  Treat as read-only."""
        return self._rows

    # ------------------------------------------------------------------
    # Columnar access
    # ------------------------------------------------------------------
    def column(self, attribute: str) -> list:
        """All values of ``attribute``, in row order (lazily materialized).

        Double-checked fill: the lock-free fast path serves the common
        already-cached case; the fill itself happens under the mutation
        lock so it cannot pin a column snapshot taken mid-``extend``
        (the cache-clearing there runs under the same lock).
        """
        position = self.schema.position(attribute)
        cached = self._columns.get(position)
        if cached is None:
            with self._mutlock:
                cached = self._columns.get(position)
                if cached is None:
                    cached = [row[position] for row in self._rows]
                    self._columns[position] = cached
        return cached

    def column_array(self, attribute: str) -> np.ndarray:
        """``attribute``'s values as a numpy array, in row order.

        ``int64`` when every value fits, ``object`` dtype otherwise.  The
        array is materialized once per position and cached; renamed views
        share the cache (attribute names differ, positions do not), so the
        batch join engine, the workload generators and the statistics
        collector all see the same backing arrays.  Treat as read-only.
        """
        return self._array(self.schema.position(attribute))

    def columns(self) -> tuple[np.ndarray, ...]:
        """All columns as numpy arrays, in schema position order."""
        return tuple(self._array(i) for i in range(self.arity))

    def column_dtype_class(self, attribute: str) -> str:
        """``"int64"`` or ``"object"`` — the columnar-contract verdict.

        The verdict is cached alongside the column array (one validation
        pass per column per version, under the mutation lock), so kernel
        callers can branch on the int64/object split without re-probing
        the array's dtype, and renamed views agree by construction.
        """
        position = self.schema.position(attribute)
        verdict = self._dtype_classes.get(position)
        if verdict is None:
            self._array(position)
            verdict = self._dtype_classes[position]
        return verdict

    def dtype_classes(self) -> tuple[str, ...]:
        """Per-column dtype-class verdicts, in schema position order."""
        return tuple(self.column_dtype_class(attribute)
                     for attribute in self.schema.attributes)

    def _array(self, position: int) -> np.ndarray:
        array = self._arrays.get(position)
        if array is None:
            with self._mutlock:
                array = self._arrays.get(position)
                if array is None:
                    array = _column_array(
                        [row[position] for row in self._rows])
                    self._arrays[position] = array
                    # the dtype-class verdict rides along with the array:
                    # filled under the same lock, cleared by the same
                    # extend(), shared by the same renamed views
                    self._dtype_classes[position] = (
                        "int64" if array.dtype == np.int64 else "object")
        return array

    # ------------------------------------------------------------------
    # Mutation and cache identity
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Mutation counter, shared with every renamed view of this storage."""
        return self._version[0]

    def fingerprint(self) -> tuple[int, int]:
        """``(storage identity, version)`` — the index-cache key component.

        Two relations share a fingerprint iff they share backing rows
        *and* no mutation happened in between; any :meth:`insert` /
        :meth:`extend` through any view changes it.  The identity half is
        ``id()`` of the shared row list, which is stable for the life of
        the relation — cache entries keep the built index (and through it
        the relation) alive, so a fingerprint can never be recycled while
        an entry still carries it.
        """
        return (id(self._rows), self._version[0])

    def insert(self, row: tuple) -> None:
        """Append one tuple, bumping the shared version counter."""
        self.extend((row,))

    def extend(self, rows: Iterable[tuple]) -> None:
        """Append tuples, invalidating column caches and the fingerprint.

        The column/array caches and version counter are shared with every
        renamed view, so all views observe the mutation consistently; any
        session-cached index keyed on the old fingerprint simply stops
        matching and ages out of the cache.
        """
        arity = self.arity
        appended = []
        for row in rows:
            row = tuple(row)
            if len(row) != arity:
                raise SchemaError(
                    f"relation {self.name!r}: tuple {row!r} has arity "
                    f"{len(row)}, schema expects {arity}"
                )
            appended.append(row)
        if not appended:
            return
        with self._mutlock:
            self._rows.extend(appended)
            self._columns.clear()
            self._arrays.clear()
            self._dtype_classes.clear()
            self._version[0] += 1

    # ------------------------------------------------------------------
    # Relational operations used by the join drivers and generators
    # ------------------------------------------------------------------
    def project(self, attributes: Sequence[str], name: str | None = None,
                distinct: bool = False) -> "Relation":
        """Projection onto ``attributes`` (optionally duplicate-eliminating)."""
        positions = self.schema.project_positions(attributes)
        projected = (tuple(row[i] for i in positions) for row in self._rows)
        if distinct:
            projected = dict.fromkeys(projected)
        return Relation(name or f"{self.name}_proj", Schema(attributes), projected)

    def select(self, predicate, name: str | None = None) -> "Relation":
        """Selection: keep rows where ``predicate(row)`` is true."""
        return Relation(name or f"{self.name}_sel", self.schema,
                        (row for row in self._rows if predicate(row)))

    def reordered(self, total_order: Sequence[str], name: str | None = None) -> "Relation":
        """Rows permuted so attributes align with ``total_order`` (§2.3.1).

        This is the preparation step every WCOJ index build performs: the
        returned relation lists each tuple's attributes in total-order
        sequence so that index levels correspond to total-order positions.
        """
        perm = self.schema.permutation_to(total_order)
        if perm == tuple(range(self.arity)):
            return self
        return Relation(name or self.name, self.schema.reordered(total_order),
                        (tuple(row[i] for i in perm) for row in self._rows))

    def renamed(self, attributes: Sequence[str], name: str | None = None) -> "Relation":
        """Zero-copy view with attributes renamed positionally.

        The join drivers use this to view a stored relation through an
        atom's query attributes (``E(src, dst)`` seen as ``E(a, b)``); the
        row list is shared, not copied.
        """
        if len(attributes) != self.arity:
            raise SchemaError(
                f"renaming {self.name!r} (arity {self.arity}) with "
                f"{len(attributes)} attribute names"
            )
        view = Relation.__new__(Relation)
        view.name = name or self.name
        view.schema = Schema(attributes)
        view._rows = self._rows
        # positions align, so the caches, version box and mutation lock
        # are shared — a write through any view is serialized with all
        view._columns = self._columns
        view._arrays = self._arrays
        view._dtype_classes = self._dtype_classes
        view._version = self._version
        view._mutlock = self._mutlock
        return view

    def distinct(self, name: str | None = None) -> "Relation":
        """Duplicate-eliminated copy, preserving first-seen order."""
        return Relation(name or self.name, self.schema, dict.fromkeys(self._rows))

    def sorted(self, name: str | None = None) -> "Relation":
        """Copy with rows in lexicographic order (for LFTJ-style tries)."""
        return Relation(name or self.name, self.schema, sorted(self._rows))

    def sample_rows(self, count: int, rng) -> list[tuple]:
        """``count`` rows drawn uniformly with replacement using ``rng``."""
        if not self._rows:
            return []
        return [self._rows[rng.randrange(len(self._rows))] for _ in range(count)]
