"""CSV import/export for relations.

Real deployments of the paper's system load SNAP edge lists and IMDB CSV
dumps; this module provides the equivalent plumbing so the examples can
round-trip datasets to disk.  Values are stored as text; a per-column type
row can be embedded so integers survive the round trip.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.errors import SchemaError
from repro.storage.relation import Relation
from repro.storage.schema import Schema

_TYPE_PARSERS = {
    "int": int,
    "str": str,
    "float": float,
}


def save_relation(relation: Relation, path: str | Path, typed: bool = True) -> None:
    """Write ``relation`` to ``path`` as CSV.

    The first row holds attribute names; when ``typed`` is set, the second
    row holds per-column type tags (``int``/``str``/``float``) inferred from
    the first data row so :func:`load_relation` can restore value types.
    """
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.schema.attributes)
        if typed:
            if len(relation):
                first = relation.rows[0]
                tags = [_type_tag(v) for v in first]
            else:
                tags = ["str"] * relation.arity
            writer.writerow([f"#type:{t}" for t in tags])
        writer.writerows(relation.rows)


def load_relation(name: str, path: str | Path,
                  schema: Schema | None = None) -> Relation:
    """Read a relation written by :func:`save_relation` (or any plain CSV).

    A plain CSV without a type row is loaded with best-effort integer
    parsing (a column whose every value parses as ``int`` becomes ints).
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path}: empty CSV, cannot infer schema") from None
        rows = list(reader)

    parsers = None
    if rows and rows[0] and rows[0][0].startswith("#type:"):
        tags = [cell.split(":", 1)[1] for cell in rows[0]]
        parsers = [_TYPE_PARSERS.get(tag, str) for tag in tags]
        rows = rows[1:]

    if schema is None:
        schema = Schema(header)
    elif tuple(schema.attributes) != tuple(header):
        raise SchemaError(f"{path}: header {header} does not match schema {schema.attributes}")

    if parsers is None:
        parsers = _infer_parsers(rows, len(header))

    parsed = (tuple(parse(cell) for parse, cell in zip(parsers, row)) for row in rows)
    return Relation(name, schema, parsed)


def save_edge_list(relation: Relation, path: str | Path) -> None:
    """Write a two-column relation as a whitespace edge list (SNAP format)."""
    if relation.arity != 2:
        raise SchemaError("edge lists require a binary relation")
    path = Path(path)
    with path.open("w") as handle:
        for src, dst in relation:
            handle.write(f"{src}\t{dst}\n")


def load_edge_list(name: str, path: str | Path,
                   attributes: tuple[str, str] = ("src", "dst")) -> Relation:
    """Read a SNAP-style edge list (``#`` comments allowed) as a relation."""
    path = Path(path)
    edges = []
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            src, dst = line.split()[:2]
            edges.append((int(src), int(dst)))
    return Relation(name, Schema(attributes), edges)


def _type_tag(value: object) -> str:
    if isinstance(value, bool):
        return "str"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    return "str"


def _infer_parsers(rows: list[list[str]], width: int) -> list:
    parsers = []
    for col in range(width):
        all_int = bool(rows)
        for row in rows:
            try:
                int(row[col])
            except (ValueError, IndexError):
                all_int = False
                break
        parsers.append(int if all_int else str)
    return parsers
