"""Relation schemas and attribute bookkeeping.

A :class:`Schema` names the columns of a relation in order.  The Generic
Join's preparation phase (§2.3.1) permutes relation columns to align with a
query's *total order*; :meth:`Schema.permutation_to` computes that column
permutation and :meth:`Schema.project_positions` resolves attribute names to
column positions for index adapters and join drivers.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.errors import SchemaError


@dataclass(frozen=True)
class Schema:
    """An ordered list of distinct attribute names.

    Parameters
    ----------
    attributes:
        Column names, in storage order.  Names must be unique; joins match
        columns across relations *by name*, like the paper's datalog-style
        ``AttributeIndex`` template parameters (Listing 1).
    """

    attributes: tuple[str, ...]
    _positions: dict[str, int] = field(init=False, repr=False, compare=False, hash=False)

    def __init__(self, attributes: Iterable[str]):
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError("a schema needs at least one attribute")
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"duplicate attribute names in schema: {attrs}")
        for name in attrs:
            if not isinstance(name, str) or not name:
                raise SchemaError(f"attribute names must be non-empty strings, got {name!r}")
        object.__setattr__(self, "attributes", attrs)
        object.__setattr__(self, "_positions", {a: i for i, a in enumerate(attrs)})

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self):
        return iter(self.attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._positions

    def position(self, name: str) -> int:
        """Column position of ``name``; raises :class:`SchemaError` if absent."""
        try:
            return self._positions[name]
        except KeyError:
            raise SchemaError(f"attribute {name!r} not in schema {self.attributes}") from None

    def project_positions(self, names: Sequence[str]) -> tuple[int, ...]:
        """Positions of ``names`` in schema order of *names* (not storage order)."""
        return tuple(self.position(n) for n in names)

    def permutation_to(self, total_order: Sequence[str]) -> tuple[int, ...]:
        """Column permutation aligning this schema with ``total_order``.

        Returns positions ``p`` such that reordering a stored tuple ``t`` as
        ``tuple(t[i] for i in p)`` lists this relation's attributes in the
        order they appear in the query's total order — the permutation the
        paper's index adapter applies before building a query-specific index
        (§2.3.1, §4.1).  Attributes of this schema that do not appear in the
        total order are appended afterwards in their original order.
        """
        order_rank = {name: rank for rank, name in enumerate(total_order)}
        in_order = [a for a in self.attributes if a in order_rank]
        leftovers = [a for a in self.attributes if a not in order_rank]
        in_order.sort(key=order_rank.__getitem__)
        return tuple(self._positions[a] for a in in_order + leftovers)

    def reordered(self, total_order: Sequence[str]) -> "Schema":
        """The schema that results from applying :meth:`permutation_to`."""
        perm = self.permutation_to(total_order)
        return Schema(self.attributes[i] for i in perm)

    def common_attributes(self, other: "Schema") -> tuple[str, ...]:
        """Attributes shared with ``other``, in *this* schema's order."""
        return tuple(a for a in self.attributes if a in other)
