"""Relational substrate: schemas, relations, catalogs, CSV round-tripping."""

from repro.storage.catalog import Catalog
from repro.storage.csvio import (
    load_edge_list,
    load_relation,
    save_edge_list,
    save_relation,
)
from repro.storage.relation import Relation
from repro.storage.schema import Schema

__all__ = [
    "Catalog",
    "Relation",
    "Schema",
    "load_edge_list",
    "load_relation",
    "save_edge_list",
    "save_relation",
]
