"""A minimal catalog: a named collection of relations.

Join queries (:mod:`repro.planner.query`) reference relations by name; the
catalog is where the executor resolves those names.  It also provides the
aggregate statistics (per-relation cardinalities) that the AGM-bound
computation and the binary-join optimizer consume.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import SchemaError
from repro.storage.relation import Relation


class Catalog:
    """Name → :class:`Relation` mapping with light statistics.

    The catalog keeps a per-name **version counter**, bumped every time a
    name is re-bound (:meth:`add` with ``replace=True``, :meth:`replace`,
    :meth:`remove`).  Together with
    :meth:`repro.storage.relation.Relation.fingerprint` (which covers
    in-place mutation) it gives the session layer everything needed to
    notice that a prepared join or cached index no longer reflects the
    catalog's state.
    """

    def __init__(self, relations: Iterable[Relation] = ()):
        self._relations: dict[str, Relation] = {}
        self._versions: dict[str, int] = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation: Relation, replace: bool = False) -> None:
        """Register ``relation`` under its name."""
        if relation.name in self._relations and not replace:
            raise SchemaError(f"relation {relation.name!r} already in catalog")
        self._relations[relation.name] = relation
        self._versions[relation.name] = self._versions.get(relation.name, 0) + 1

    def replace(self, relation: Relation) -> None:
        """Re-bind ``relation.name`` to ``relation``, bumping its version."""
        self.add(relation, replace=True)

    def remove(self, name: str) -> None:
        """Drop ``name`` from the catalog (its version keeps counting)."""
        if name not in self._relations:
            raise SchemaError(f"relation {name!r} not in catalog")
        del self._relations[name]
        self._versions[name] = self._versions.get(name, 0) + 1

    def version_of(self, name: str) -> int:
        """How many times ``name`` has been (re)bound; 0 if never seen."""
        return self._versions.get(name, 0)

    def get(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"relation {name!r} not in catalog (have: {sorted(self._relations)})"
            ) from None

    def __getitem__(self, name: str) -> Relation:
        return self.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def names(self) -> list[str]:
        return sorted(self._relations)

    def cardinalities(self) -> dict[str, int]:
        """Relation name → row count, as consumed by the AGM LP."""
        return {name: len(rel) for name, rel in self._relations.items()}

    def total_rows(self) -> int:
        return sum(len(rel) for rel in self._relations.values())
