"""A minimal catalog: a named collection of relations.

Join queries (:mod:`repro.planner.query`) reference relations by name; the
catalog is where the executor resolves those names.  It also provides the
aggregate statistics (per-relation cardinalities) that the AGM-bound
computation and the binary-join optimizer consume.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import SchemaError
from repro.storage.relation import Relation


class Catalog:
    """Name → :class:`Relation` mapping with light statistics."""

    def __init__(self, relations: Iterable[Relation] = ()):
        self._relations: dict[str, Relation] = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation: Relation, replace: bool = False) -> None:
        """Register ``relation`` under its name."""
        if relation.name in self._relations and not replace:
            raise SchemaError(f"relation {relation.name!r} already in catalog")
        self._relations[relation.name] = relation

    def get(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"relation {name!r} not in catalog (have: {sorted(self._relations)})"
            ) from None

    def __getitem__(self, name: str) -> Relation:
        return self.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def names(self) -> list[str]:
        return sorted(self._relations)

    def cardinalities(self) -> dict[str, int]:
        """Relation name → row count, as consumed by the AGM LP."""
        return {name: len(rel) for name, rel in self._relations.items()}

    def total_rows(self) -> int:
        return sum(len(rel) for rel in self._relations.values())
