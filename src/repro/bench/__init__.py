"""Benchmark harness: timing, reporting, shared experiment plumbing."""

from repro.bench.harness import (
    BUILD_AND_POINT_INDEXES,
    JOIN_INDEXES,
    PREFIX_INDEXES,
    build_index,
    make_sized_index,
    sweep,
)
from repro.bench.reporting import (
    print_series,
    print_table,
    save_results,
    speedup_summary,
)
from repro.bench.timer import Timing, time_callable

__all__ = [
    "BUILD_AND_POINT_INDEXES",
    "JOIN_INDEXES",
    "PREFIX_INDEXES",
    "Timing",
    "build_index",
    "make_sized_index",
    "print_series",
    "print_table",
    "save_results",
    "speedup_summary",
    "sweep",
    "time_callable",
]
