"""Timing utilities for the benchmark harness."""

from __future__ import annotations

import gc
import time
from collections.abc import Callable
from dataclasses import dataclass


@dataclass(frozen=True)
class Timing:
    """Aggregated wall-clock measurements of one benchmarked callable."""

    best_seconds: float
    mean_seconds: float
    repeats: int

    @property
    def best_ms(self) -> float:
        return self.best_seconds * 1e3

    @property
    def mean_ms(self) -> float:
        return self.mean_seconds * 1e3


def time_callable(fn: Callable[[], object], repeats: int = 3,
                  disable_gc: bool = True) -> Timing:
    """Best-of-``repeats`` wall-clock timing of ``fn`` (GC paused)."""
    samples = []
    gc_was_enabled = gc.isenabled()
    if disable_gc:
        gc.disable()
    try:
        for _ in range(max(repeats, 1)):
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
    finally:
        if disable_gc and gc_was_enabled:
            gc.enable()
    return Timing(best_seconds=min(samples),
                  mean_seconds=sum(samples) / len(samples),
                  repeats=len(samples))
