"""Paper-style output for the benchmark harness.

Each bench regenerates one figure or table of the paper; these helpers
print the same *rows/series* the paper plots (series = one line per index
or algorithm over a swept parameter; tables = labelled cells), and can
persist results as JSON for EXPERIMENTS.md bookkeeping.
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from pathlib import Path


def format_value(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.001 or abs(value) >= 1e6:
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def print_table(title: str, rows: Sequence[Mapping[str, object]]) -> None:
    """Render a list of dict rows as an aligned text table."""
    print(f"\n== {title} ==")
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0].keys())
    rendered = [[format_value(row.get(col, "")) for col in columns]
                for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered))
              for i, col in enumerate(columns)]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    print(header)
    print("-" * len(header))
    for row in rendered:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


def print_series(title: str, x_label: str, x_values: Sequence[object],
                 series: Mapping[str, Sequence[object]]) -> None:
    """Render figure-style series: one row per x value, one column per line."""
    rows = []
    for i, x in enumerate(x_values):
        row: dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = values[i] if i < len(values) else ""
        rows.append(row)
    print_table(title, rows)


def save_results(path: str | Path, experiment: str, payload: object) -> None:
    """Append one experiment's results to a JSON results file."""
    path = Path(path)
    existing: dict = {}
    if path.exists():
        existing = json.loads(path.read_text())
    existing[experiment] = payload
    path.write_text(json.dumps(existing, indent=2, sort_keys=True))


def speedup_summary(baseline: float, measured: Mapping[str, float]) -> dict[str, str]:
    """Express measurements as speedups over ``baseline`` ("2.5x"-style)."""
    summary = {}
    for name, value in measured.items():
        if value <= 0:
            summary[name] = "inf"
        else:
            summary[name] = f"{baseline / value:.2f}x"
    return summary
