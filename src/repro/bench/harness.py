"""Shared experiment plumbing for the per-figure benchmarks.

Every file in ``benchmarks/`` regenerates one of the paper's figures or
tables.  They share a few needs: build an index of a given registry name
over a relation (with Sonic sized correctly), run index-operation sweeps
across the full baseline set, and run a join with each algorithm.  This
module centralizes that so each bench stays a declarative description of
its experiment.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from repro.core.config import SonicConfig
from repro.core.sonic import SonicIndex
from repro.indexes.base import TupleIndex
from repro.indexes.registry import make_index
from repro.storage.relation import Relation

#: the §5.4 baseline sets, by experiment family
BUILD_AND_POINT_INDEXES = (
    "sonic", "hashset", "robinhood", "btree", "art", "hattrie",
    "hiermap", "hashtrie", "surf",
)
PREFIX_INDEXES = ("sonic", "btree", "art", "hattrie", "hiermap")
JOIN_INDEXES = ("sonic", "btree", "hattrie", "hiermap")


def make_sized_index(name: str, arity: int, expected_rows: int,
                     bucket_size: int = 8, overallocation: float = 2.0,
                     **kwargs) -> TupleIndex:
    """Fresh index; Sonic gets a capacity derived from the row count."""
    if name == "sonic":
        config = SonicConfig.for_tuples(max(expected_rows, 1),
                                        bucket_size=bucket_size,
                                        overallocation=overallocation)
        return SonicIndex(arity, config=config, **kwargs)
    return make_index(name, arity, **kwargs)


def build_index(name: str, relation: Relation, **kwargs) -> TupleIndex:
    index = make_sized_index(name, relation.arity, len(relation), **kwargs)
    index.build(relation.rows)
    return index


def sweep(index_names: Sequence[str], x_values: Iterable,
          measure: Callable[[str, object], float],
          ) -> tuple[list, dict[str, list[float]]]:
    """Run ``measure(index_name, x)`` over the cross product, series-shaped.

    Returns ``(x_values, {index_name: [measurement per x]})`` ready for
    :func:`repro.bench.reporting.print_series`.
    """
    xs = list(x_values)
    series: dict[str, list[float]] = {name: [] for name in index_names}
    for x in xs:
        for name in index_names:
            series[name].append(measure(name, x))
    return xs, series


def profiled_join(query, source, **join_kwargs) -> dict:
    """Run one profiled join and return its counters as a JSON-ready dict.

    The bridge between figure benches and ``repro.obs``: timings come
    from the bench's own (un-instrumented) repeats, and this single extra
    profiled run contributes the *count*-valued columns — per-level
    candidates/survivors, probe and memo counters — which are
    deterministic, so one run suffices.  The returned dict is the
    profile's ``as_dict()`` with spans dropped (bench JSON stays small).
    """
    from repro.joins.executor import join

    result = join(query, source, profile=True, **join_kwargs)
    payload = result.profile.as_dict()
    payload.pop("spans", None)
    return payload
