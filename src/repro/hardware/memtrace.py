"""Memory-access tracing for index structures.

A :class:`MemoryTracer` translates the logical touches an instrumented
index reports (``record(level, region, slot, size)``) into synthetic flat
addresses, laid out the way the C++ Sonic would place its arrays: per
level, the key array, prefix counters, next-bucket offsets, patch-bit
vector, patch-key array and payload rows occupy disjoint contiguous
regions — the separation §3.3 calls out explicitly ("patch bits and keys
are stored in memory regions separate from the key-value pairs ... the
patch-bit vector is designed for a minimal footprint to keep it
cache-resident").

Traces can be streamed straight into a
:class:`~repro.hardware.cache.CacheHierarchy` (the Figs 10–12 pipeline) or
recorded for inspection.
"""

from __future__ import annotations

from repro.core.config import SonicConfig
from repro.errors import ConfigurationError

#: bytes per slot for each traced region
_REGION_STRIDES = {
    "key": 8,
    "count": 4,
    "next": 8,
    "patch_bit": 1,   # modelled at byte granularity (bit vector, padded)
    "patch_key": 8,
    "row": 8,         # multiplied by arity through the recorded size
}

_REGION_ORDER = ("key", "count", "next", "patch_bit", "patch_key", "row")


class MemoryTracer:
    """Maps (level, region, slot) touches to addresses; optionally simulates.

    Parameters
    ----------
    arity:
        Tuple width of the traced index (sizes the payload region).
    config:
        The index's :class:`~repro.core.config.SonicConfig` (region sizes).
    num_levels:
        How many levels the index has.
    hierarchy:
        Optional cache hierarchy; when given, every recorded access is
        replayed immediately.
    keep_trace:
        Record (address, size) pairs for offline inspection (memory-hungry
        for long runs; off by default).
    """

    def __init__(self, arity: int, config: SonicConfig, num_levels: int,
                 hierarchy=None, keep_trace: bool = False):
        if num_levels < 1:
            raise ConfigurationError("tracer needs at least one level")
        self.arity = arity
        self.config = config
        self.num_levels = num_levels
        self.hierarchy = hierarchy
        self.keep_trace = keep_trace
        self.trace: list[tuple[int, int]] = []
        self.touches_by_region: dict[str, int] = {r: 0 for r in _REGION_ORDER}
        self._bases = self._layout()

    def _layout(self) -> dict[tuple[int, str], int]:
        """Assign a base address to every (level, region) array."""
        bases: dict[tuple[int, str], int] = {}
        cursor = 0
        capacity = self.config.capacity
        buckets = self.config.num_buckets
        for level in range(self.num_levels):
            for region in _REGION_ORDER:
                stride = _REGION_STRIDES[region]
                if region == "patch_bit":
                    length = buckets * stride
                elif region == "row":
                    length = capacity * stride * self.arity
                else:
                    length = capacity * stride
                bases[(level, region)] = cursor
                cursor += length
                cursor = (cursor + 63) & ~63  # 64 B alignment between arrays
        self.total_bytes = cursor
        return bases

    def record(self, level: int, region: str, slot: int, size: int = 8) -> None:
        """One logical touch from the index (the Sonic ``_touch`` hook)."""
        base = self._bases.get((level, region))
        if base is None:
            raise ConfigurationError(f"untraced region {region!r} at level {level}")
        stride = _REGION_STRIDES[region]
        address = base + slot * stride
        self.touches_by_region[region] = self.touches_by_region.get(region, 0) + 1
        if self.keep_trace:
            self.trace.append((address, size))
        if self.hierarchy is not None:
            self.hierarchy.access(address, size)

    def reset(self) -> None:
        self.trace.clear()
        self.touches_by_region = {r: 0 for r in _REGION_ORDER}
        if self.hierarchy is not None:
            self.hierarchy.reset()

    def total_touches(self) -> int:
        return sum(self.touches_by_region.values())
