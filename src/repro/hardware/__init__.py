"""Simulated microarchitecture: caches, memory traces, cost models."""

from repro.hardware.cache import (
    CacheHierarchy,
    CacheLevel,
    CacheStats,
    HierarchyStats,
    tiny_hierarchy,
    xeon_silver_4114,
)
from repro.hardware.cost_model import (
    CycleCostModel,
    ParallelBuildModel,
    granularity_sweep,
)
from repro.hardware.memtrace import MemoryTracer

__all__ = [
    "CacheHierarchy",
    "CacheLevel",
    "CacheStats",
    "CycleCostModel",
    "HierarchyStats",
    "MemoryTracer",
    "ParallelBuildModel",
    "granularity_sweep",
    "tiny_hierarchy",
    "xeon_silver_4114",
]
