"""Set-associative LRU cache simulator (the Figs 10–12 substrate).

Python wall-clock cannot resolve the L1/L2/L3 effects the paper's §5.13
measures, so — per DESIGN.md's substitution policy — we make the claims
testable with a trace-driven cache simulator: the Sonic index emits the
synthetic address of every key/patch-bit/patch-key/payload touch (see
:mod:`repro.hardware.memtrace`), the simulator replays them through a
three-level hierarchy shaped like the paper's Xeon Silver 4114 (32 KB L1,
256 KB L2, 25.6 MB L3, 64 B lines), and the cost model converts hit/miss
counts into estimated cycles.

Each level is write-allocate, inclusive-enough-for-simulation: an access
missing at level *i* is installed at every level from *i* upwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class CacheLevel:
    """One set-associative cache level with true-LRU replacement."""

    def __init__(self, name: str, size_bytes: int, associativity: int,
                 line_bytes: int = 64):
        if size_bytes % (associativity * line_bytes):
            raise ConfigurationError(
                f"{name}: size {size_bytes} not divisible by "
                f"associativity*line ({associativity}*{line_bytes})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (associativity * line_bytes)
        # each set is an LRU-ordered list of tags (most recent last)
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def access(self, line_address: int) -> bool:
        """Touch one cache line; returns True on hit."""
        set_index = line_address % self.num_sets
        tag = line_address // self.num_sets
        lru = self._sets[set_index]
        try:
            lru.remove(tag)
            lru.append(tag)
            self.stats.hits += 1
            return True
        except ValueError:
            self.stats.misses += 1
            lru.append(tag)
            if len(lru) > self.associativity:
                lru.pop(0)
            return False

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]
        self.reset_stats()


@dataclass
class HierarchyStats:
    """Per-level hit counts of one simulation run."""

    level_hits: dict[str, int] = field(default_factory=dict)
    memory_accesses: int = 0
    total_accesses: int = 0

    def as_row(self) -> dict[str, object]:
        row: dict[str, object] = dict(self.level_hits)
        row["memory"] = self.memory_accesses
        row["accesses"] = self.total_accesses
        return row


class CacheHierarchy:
    """A stack of cache levels backed by main memory."""

    #: per-hit latencies in cycles (L1/L2/L3/DRAM), Skylake-SP-like
    DEFAULT_LATENCIES = {"L1": 4, "L2": 14, "L3": 50, "memory": 200}

    def __init__(self, levels: list[CacheLevel] | None = None,
                 latencies: dict[str, int] | None = None):
        if levels is None:
            levels = xeon_silver_4114()
        self.levels = levels
        self.latencies = dict(self.DEFAULT_LATENCIES)
        if latencies:
            self.latencies.update(latencies)
        self._line = levels[0].line_bytes if levels else 64
        self.stats = HierarchyStats(
            level_hits={level.name: 0 for level in self.levels})

    def access(self, address: int, size: int = 8) -> str:
        """Access ``size`` bytes at ``address``; returns the serving level."""
        first = address // self._line
        last = (address + max(size, 1) - 1) // self._line
        served = "memory"
        for line in range(first, last + 1):
            served = self._access_line(line)
        return served

    def _access_line(self, line: int) -> str:
        self.stats.total_accesses += 1
        missed: list[CacheLevel] = []
        for level in self.levels:
            if level.access(line):
                self.stats.level_hits[level.name] += 1
                return level.name
            missed.append(level)
        self.stats.memory_accesses += 1
        return "memory"

    def estimated_cycles(self) -> int:
        """Latency-weighted cost of all accesses so far."""
        total = 0
        for name, hits in self.stats.level_hits.items():
            total += hits * self.latencies.get(name, 100)
        total += self.stats.memory_accesses * self.latencies["memory"]
        return total

    def reset(self) -> None:
        for level in self.levels:
            level.flush()
        self.stats = HierarchyStats(
            level_hits={level.name: 0 for level in self.levels})


def xeon_silver_4114(line_bytes: int = 64) -> list[CacheLevel]:
    """The paper's evaluation machine (§5.1): 32 KB L1, 256 KB L2, 25.6 MB L3.

    Sized down is unnecessary — capacities are what produce the Fig 11
    cliffs, so they are kept faithful.
    """
    return [
        CacheLevel("L1", 32 * 1024, 8, line_bytes),
        CacheLevel("L2", 256 * 1024, 8, line_bytes),
        CacheLevel("L3", 25600 * 1024, 16, line_bytes),
    ]


def tiny_hierarchy(l1_bytes: int = 1024, l2_bytes: int = 8192,
                   line_bytes: int = 64) -> CacheHierarchy:
    """A miniature two-level hierarchy for fast unit tests."""
    return CacheHierarchy([
        CacheLevel("L1", l1_bytes, 2, line_bytes),
        CacheLevel("L2", l2_bytes, 4, line_bytes),
    ])
