"""Deterministic cost models for experiments the GIL hides (Fig 16).

**Parallel build scaling.**  The paper's Fig 16 shows Sonic's concurrent
build speedup on a 2×10-core machine: near-linear within one socket, then
a visible NUMA cliff, with key-range locking overhead growing with thread
count.  CPython's GIL serializes real threads, so — per DESIGN.md's
substitution policy — the bench pairs the *real* locking implementation
(which we test for correctness) with this analytic model for the scaling
numbers.  The model is standard:

* per-tuple work ``w`` splits into a parallel part and a serialized
  critical section of fraction ``s`` (the locked insert window);
* lock contention follows an M/M/1-style inflation: with ``p`` threads
  and ``k`` lock stripes, the probability a lock acquisition collides is
  ``(p - 1) / k`` per concurrently-held lock, inflating the critical
  section by ``1 / (1 - min((p-1)·h/k, 0.95))`` where ``h`` is the
  fraction of time a thread holds some stripe lock;
* crossing the socket boundary (more than ``cores_per_socket`` threads)
  multiplies memory-bound work by a NUMA factor (remote-DRAM latency).

The defaults reproduce Fig 16's qualitative shape: ~7–8× at 10 threads,
a dip/flattening right after 10, and the paper's observation that a lock
granularity of 8192 stays within 30 % of the best granularity.

These numbers are **simulated, protocol-only** figures.  Since the
multiprocess sharded execution path landed (:mod:`repro.parallel`,
``join(..., parallel=K)``), the repo's canonical measured parallel
figure is that path's wall-clock scaling, recorded in the ``parallel``
section of ``BENCH_generic_join.json``; this model remains only to
extrapolate the *intra-build locking* behaviour of hardware the GIL
hides (thread counts, NUMA), which process sharding does not model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ParallelBuildModel:
    """Analytic thread-scaling model for key-range-locked builds."""

    critical_fraction: float = 0.04   # serialized slice of one insert
    lock_hold_fraction: float = 0.25  # share of time a thread holds a stripe
    numa_penalty: float = 1.35        # memory cost multiplier off-socket
    memory_bound_fraction: float = 0.6
    cores_per_socket: int = 10
    total_cores: int = 20

    def speedup(self, threads: int, stripes: int) -> float:
        """Predicted build speedup at ``threads`` workers over 1 worker."""
        if threads < 1:
            raise ConfigurationError(f"threads must be >= 1, got {threads}")
        if stripes < 1:
            raise ConfigurationError(f"stripes must be >= 1, got {stripes}")
        effective_threads = min(threads, self.total_cores)

        # contention-inflated critical section (Amdahl with queueing)
        collision = min((effective_threads - 1) * self.lock_hold_fraction
                        / stripes, 0.95)
        critical = self.critical_fraction / (1.0 - collision)
        parallel = 1.0 - self.critical_fraction

        # NUMA: threads beyond one socket pay remote-memory cost on the
        # memory-bound share of the parallel work
        if effective_threads > self.cores_per_socket:
            off_socket = (effective_threads - self.cores_per_socket) / effective_threads
            memory_factor = 1.0 + off_socket * self.memory_bound_fraction * (
                self.numa_penalty - 1.0)
        else:
            memory_factor = 1.0

        time_parallel = parallel * memory_factor / effective_threads
        time_serial = critical
        return 1.0 / (time_parallel + time_serial)

    def build_time(self, base_seconds: float, threads: int, stripes: int) -> float:
        """Projected wall-clock for a build measured at ``base_seconds`` on 1 thread."""
        return base_seconds / self.speedup(threads, stripes)


def granularity_sweep(model: ParallelBuildModel, capacity: int,
                      granularities: list[int], threads: int) -> dict[int, float]:
    """Predicted speedup per lock granularity (the §3.4.2 tuning claim).

    Larger granularity = fewer stripes = more contention; tiny granularity
    adds per-acquisition overhead (modelled as a fixed tax per lock when
    stripes exceed a cache-friendly bound).
    """
    results = {}
    for granularity in granularities:
        stripes = max(1, capacity // granularity)
        speedup = model.speedup(threads, stripes)
        if stripes > 1 << 16:
            speedup *= 0.85  # lock-array thrashing tax for micro-stripes
        results[granularity] = speedup
    return results


@dataclass(frozen=True)
class CycleCostModel:
    """Convert simulated cache statistics into estimated operation cycles.

    Latencies default to the hierarchy's own table; ``arithmetic_per_touch``
    adds the ALU work (hashing, comparisons) per logical memory touch so
    the model degrades gracefully to compute-bound when everything hits L1.
    """

    arithmetic_per_touch: float = 3.0

    def cycles(self, hierarchy, touches: int) -> float:
        return hierarchy.estimated_cycles() + self.arithmetic_per_touch * touches

    def cycles_per_operation(self, hierarchy, touches: int,
                             operations: int) -> float:
        if operations <= 0:
            raise ConfigurationError("operations must be > 0")
        return self.cycles(hierarchy, touches) / operations
