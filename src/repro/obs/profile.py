"""The EXPLAIN ANALYZE layer: per-level join profiles.

``join(..., profile=True)`` returns a :class:`~repro.joins.results.JoinResult`
whose ``profile`` is a :class:`JoinProfile`: the per-attribute-level tree
(seed relation chosen, candidates considered, survivors, time), the
hybrid optimizer's **estimated vs actual** cardinalities, the counter
registry and the span trace — renderable as an EXPLAIN ANALYZE-style
text tree (:meth:`JoinProfile.render`), as JSON
(:meth:`JoinProfile.to_json`), and as a Chrome ``trace_event`` document
(:meth:`JoinProfile.to_chrome_trace`).

The JSON layout is versioned (``schema_version``) and checked by
:func:`validate_profile` — the CI smoke job runs a profiled JOB-light
join and validates the artifact through exactly that function, so the
schema cannot drift silently.

A sharded run (``join(..., parallel=K, profile=True)``) produces a
:class:`ShardedJoinProfile`: the same top-level tree (levels aggregated
across shards) plus a ``sharding`` section with every shard's own level
tree, counters and clock-rebased spans, per-level min/median/max and
straggler ratios, and shard-balance stats.  Assembly lives in
:mod:`repro.obs.distributed`; the schema and validation live here.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field


#: bump when the JSON layout changes shape (validate_profile must follow)
#: v2: optional ``sharding`` section (ShardedJoinProfile, PR 9)
#: v3: optional ``stages`` list (unified stage-tree plans, PR 10)
SCHEMA_VERSION = 3


class ProfileSchemaError(ValueError):
    """A profile payload does not match the documented schema."""


@dataclass
class LevelProfile:
    """One attribute level (or binary-pipeline stage) of the profile tree."""

    label: str                      # attribute name; stage alias for binary
    participants: tuple[str, ...]   # atoms intersected at this level
    candidates: int                 # values the seeds put up, total
    survivors: int                  # values accepted by every participant
    seconds: float                  # exclusive time at this level
    cumulative_seconds: float       # inclusive (this level + below)
    seed_counts: dict[str, int]     # alias -> times chosen as seed
    descends: int = 0
    ascends: int = 0

    @property
    def seed(self) -> str:
        """The most-chosen seed atom (ties broken by alias)."""
        if not self.seed_counts:
            return ""
        return max(sorted(self.seed_counts), key=self.seed_counts.get)

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "participants": list(self.participants),
            "candidates": self.candidates,
            "survivors": self.survivors,
            "seconds": round(self.seconds, 9),
            "cumulative_seconds": round(self.cumulative_seconds, 9),
            "seed_counts": dict(self.seed_counts),
            "descends": self.descends,
            "ascends": self.ascends,
        }


@dataclass
class JoinProfile:
    """Everything one profiled join run learned about itself."""

    query: str
    algorithm: str
    index: str
    order: tuple[str, ...]
    result_count: int
    build_seconds: float
    probe_seconds: float
    engine: "str | None" = None      # generic-join drivers only
    levels: list[LevelProfile] = field(default_factory=list)
    optimizer: "dict | None" = None
    counters: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)
    build_breakdown: dict = field(default_factory=dict)  # alias -> seconds
    spans: list[dict] = field(default_factory=list)
    #: unified plans only: per-stage reports in pre-order, each carrying
    #: label/depth/algorithm/engine/index/order and the estimated vs
    #: actual cardinalities (see PreparedJoin._run_stage)
    stages: list[dict] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.build_seconds + self.probe_seconds

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "query": self.query,
            "algorithm": self.algorithm,
            "engine": self.engine,
            "index": self.index,
            "order": list(self.order),
            "result_count": self.result_count,
            "timings": {
                "build_s": round(self.build_seconds, 9),
                "probe_s": round(self.probe_seconds, 9),
                "total_s": round(self.total_seconds, 9),
                "build_breakdown": {alias: round(seconds, 9)
                                    for alias, seconds
                                    in sorted(self.build_breakdown.items())},
            },
            "optimizer": self.optimizer,
            "levels": [level.as_dict() for level in self.levels],
            "counters": dict(sorted(self.counters.items())),
            "histograms": self.histograms,
            "spans": self.spans,
            "stages": self.stages,
        }

    def to_json(self, indent: "int | None" = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def to_chrome_trace(self) -> dict:
        """The span trace as a Chrome ``trace_event`` document."""
        events = [
            {
                "name": span["name"],
                "ph": "X",
                "ts": span["ts_us"],
                "dur": span["dur_us"],
                "pid": 1,
                "tid": 1,
                "cat": "repro",
                "args": span.get("args", {}),
            }
            for span in self.spans
        ]
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    # ------------------------------------------------------------------
    # The EXPLAIN ANALYZE text tree
    # ------------------------------------------------------------------
    def render(self) -> str:
        lines = [f"EXPLAIN ANALYZE  {self.query}"]
        engine = f" engine={self.engine}" if self.engine else ""
        lines.append(
            f"algorithm={self.algorithm}{engine} index={self.index}  "
            f"order=({', '.join(self.order)})  results={self.result_count}"
        )
        lines.append(
            f"build {self.build_seconds * 1e3:.3f} ms"
            f"  probe {self.probe_seconds * 1e3:.3f} ms"
            f"  total {self.total_seconds * 1e3:.3f} ms"
        )
        if self.build_breakdown:
            parts = "  ".join(f"{alias}={seconds * 1e3:.3f}ms" for alias,
                              seconds in sorted(self.build_breakdown.items()))
            lines.append(f"  build breakdown: {parts}")
        if self.optimizer:
            opt = self.optimizer
            lines.append(f"optimizer: chose {opt['algorithm']} — {opt['reason']}")
            est, act = opt["estimated"], opt["actual"]
            lines.append(
                f"  estimated: AGM bound {est['agm_bound']:.4g}, "
                f"binary peak intermediates {est['binary_peak_intermediates']:.4g}"
            )
            lines.append(
                f"  actual:    {act['results']} results, "
                f"peak level cardinality {act['peak_level_cardinality']}, "
                f"{act['intermediate_tuples']} intermediate tuples"
            )
        if self.stages:
            lines.append("stage tree:")
            for stage in self.stages:
                pad = "   " * int(stage.get("depth", 0))
                engine = f"/{stage['engine']}" if stage.get("engine") else ""
                index = (f" index={stage['index']}"
                         if stage.get("index") else "")
                order = ", ".join(stage.get("order", ()))
                estimated = stage.get("estimated_rows")
                est = (f" est={estimated:.4g}"
                       if isinstance(estimated, (int, float)) else "")
                lines.append(
                    f"{pad}└─ stage {stage['label']}: "
                    f"{stage['algorithm']}{engine}{index}  order=({order})"
                    f" {est} actual={stage.get('actual_rows')}"
                    f"  {stage.get('seconds', 0.0) * 1e3:.3f} ms"
                )
        probe = self.probe_seconds or 1.0
        for depth, level in enumerate(self.levels):
            pad = "   " * depth
            seed = level.seed
            chosen = level.seed_counts.get(seed, 0)
            total_choices = sum(level.seed_counts.values()) or 1
            seed_note = f"seed={seed}"
            if len(level.participants) > 1:
                seed_note += f" ({100 * chosen // total_choices}%)"
            pct = min(100.0 * level.seconds / probe, 100.0)
            lines.append(
                f"{pad}└─ {level.label}: {seed_note}"
                f"  candidates={level.candidates} survivors={level.survivors}"
                f"  {level.seconds * 1e3:.3f} ms ({pct:.0f}% of probe)"
            )
        if self.counters:
            lines.append("counters:")
            for name, value in sorted(self.counters.items()):
                lines.append(f"  {name} = {value}")
        for name, h in sorted(self.histograms.items()):
            lines.append(
                f"  {name}: n={h['count']} mean={h['mean']:.2f} "
                f"min={h['min']:.0f} max={h['max']:.0f}"
            )
        return "\n".join(lines)


@dataclass
class ShardedJoinProfile(JoinProfile):
    """A :class:`JoinProfile` for a ``parallel=K`` run.

    The inherited fields describe the *merged* run: top-level ``levels``
    aggregate candidates/survivors/time across shards, ``counters``
    carries the parent registry (worker counters folded in under the
    ``shard.`` prefix), ``spans`` the parent-side trace.  The extra
    fields carry the per-shard detail the distributed assembly
    (:mod:`repro.obs.distributed`) collected over the result pipes.
    """

    workers: int = 0
    partition_attribute: str = ""
    scheme: str = "hash"
    parent_pid: int = 0
    #: per-shard detail dicts (see ``docs/observability.md`` for keys)
    shards: list[dict] = field(default_factory=list)
    #: per-level min/median/max/straggler stats across shards
    level_stats: list[dict] = field(default_factory=list)
    #: shard-balance summary (emitted skew, wall-clock straggler)
    balance: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        payload = super().as_dict()
        payload["sharding"] = {
            "workers": self.workers,
            "attribute": self.partition_attribute,
            "scheme": self.scheme,
            "parent_pid": self.parent_pid,
            "shards": self.shards,
            "level_stats": self.level_stats,
            "balance": self.balance,
        }
        return payload

    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """One merged Chrome ``trace_event`` document: the parent's spans
        on its own pid row, each worker's clock-rebased spans on that
        worker's real pid row, with ``process_name`` metadata so Perfetto
        labels the rows.  All timestamps share the parent tracer's
        origin, so partition → fan-out → per-shard build/probe → merge
        reads as one timeline."""
        events: list[dict] = [
            {"name": "process_name", "ph": "M", "pid": self.parent_pid,
             "tid": 0, "args": {"name": f"parent (pid {self.parent_pid})"}},
            {"name": "process_sort_index", "ph": "M", "pid": self.parent_pid,
             "tid": 0, "args": {"sort_index": 0}},
        ]
        for span in self.spans:
            events.append({
                "name": span["name"], "ph": "X",
                "ts": span["ts_us"], "dur": span["dur_us"],
                "pid": self.parent_pid, "tid": 1, "cat": "repro",
                "args": span.get("args", {}),
            })
        for entry in self.shards:
            if entry.get("skipped") or entry.get("pid") is None:
                continue
            pid, shard = entry["pid"], entry["shard"]
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": f"worker shard {shard} (pid {pid})"},
            })
            events.append({
                "name": "process_sort_index", "ph": "M", "pid": pid,
                "tid": 0, "args": {"sort_index": shard + 1},
            })
            for span in entry.get("spans", ()):
                events.append({
                    "name": span["name"], "ph": "X",
                    "ts": span["ts_us"], "dur": span["dur_us"],
                    "pid": pid, "tid": 1, "cat": "repro",
                    "args": span.get("args", {}),
                })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    # ------------------------------------------------------------------
    def render(self) -> str:
        lines = [super().render()]
        executed = [s for s in self.shards if not s.get("skipped")]
        straggler = self.balance.get("straggler_shard")
        ratio = self.balance.get("straggler_ratio", 1.0)
        lines.append(
            f"sharding: {self.workers} workers on {self.partition_attribute}"
            f" ({self.scheme}), {len(executed)} executed /"
            f" {len(self.shards) - len(executed)} skipped"
        )
        for entry in self.shards:
            shard = entry["shard"]
            if entry.get("skipped"):
                lines.append(f"  shard {shard}: skipped (empty partition)")
                continue
            total_ms = (entry["build_s"] + entry["probe_s"]) * 1e3
            note = ""
            if shard == straggler and len(executed) > 1:
                note = f"   <-- straggler ({ratio:.2f}x median)"
            lines.append(
                f"  shard {shard} pid={entry.get('pid')}: "
                f"{entry['count']} results  build {entry['build_s'] * 1e3:.3f} ms"
                f"  probe {entry['probe_s'] * 1e3:.3f} ms"
                f"  total {total_ms:.3f} ms{note}"
            )
        for stat in self.level_stats:
            seconds = stat["seconds"]
            lines.append(
                f"  level {stat['label']}: "
                f"min {seconds['min'] * 1e3:.3f} / med {seconds['median'] * 1e3:.3f}"
                f" / max {seconds['max'] * 1e3:.3f} ms"
                f"  straggler x{stat['straggler_ratio']:.2f}"
            )
        emitted = self.balance.get("emitted")
        if emitted:
            lines.append(
                f"  balance: emitted min {emitted['min']} / med"
                f" {emitted['median']:.0f} / max {emitted['max']} per shard"
                f"  (skew x{self.balance.get('skew', 1.0):.2f})"
            )
        return "\n".join(lines)


def shard_distribution(values: "list[float]") -> dict:
    """min/median/max/total summary of one per-shard quantity."""
    if not values:
        return {"min": 0, "median": 0, "max": 0, "total": 0}
    return {
        "min": min(values),
        "median": statistics.median(values),
        "max": max(values),
        "total": sum(values),
    }


def straggler_ratio(seconds: "list[float]") -> float:
    """max/median wall-clock ratio across shards (1.0 = perfectly even)."""
    if not seconds:
        return 1.0
    median = statistics.median(seconds)
    if median <= 0.0:
        return 1.0
    return max(seconds) / median


# ----------------------------------------------------------------------
# Assembly (called by the executor once the run finishes)
# ----------------------------------------------------------------------
def build_profile(*, query: str, algorithm: str, index: str,
                  order, metrics, observer,
                  engine: "str | None" = None,
                  choice=None) -> JoinProfile:
    """Fold an observer + driver metrics into a :class:`JoinProfile`.

    ``metrics`` is the driver's :class:`~repro.joins.results.JoinMetrics`
    (timings + result count); ``choice`` the optimizer's
    :class:`~repro.planner.optimizer.PlanChoice`, when one was computed.
    """
    stats = list(observer.levels)
    levels: list[LevelProfile] = []
    for depth, st in enumerate(stats):
        inclusive = st.time_ns
        below = stats[depth + 1].time_ns if depth + 1 < len(stats) else 0
        levels.append(LevelProfile(
            label=st.label,
            participants=st.participants,
            candidates=st.candidates,
            survivors=st.survivors,
            seconds=max(inclusive - below, 0) * 1e-9,
            cumulative_seconds=inclusive * 1e-9,
            seed_counts=dict(st.seed_counts),
            descends=st.descends,
            ascends=st.ascends,
        ))

    registry = observer.metrics
    for st in stats:
        registry.inc("level.candidates", st.candidates)
        registry.inc("level.survivors", st.survivors)
        registry.inc("cursor.descend", st.descends)
        registry.inc("cursor.ascend", st.ascends)
    registry.inc("join.emitted", metrics.result_count)
    registry.inc("probe.lookups", metrics.lookups)

    optimizer = None
    if choice is not None:
        peak = max((level.survivors for level in levels), default=0)
        optimizer = {
            "algorithm": choice.algorithm,
            "reason": choice.reason,
            "estimated": {
                "agm_bound": choice.agm_bound,
                "binary_peak_intermediates": choice.binary_estimate,
            },
            "actual": {
                "results": metrics.result_count,
                "peak_level_cardinality": peak,
                "intermediate_tuples": metrics.intermediate_tuples,
            },
        }

    snapshot = registry.as_dict()
    return JoinProfile(
        query=query,
        algorithm=algorithm,
        engine=engine,
        index=index,
        order=tuple(order),
        result_count=metrics.result_count,
        build_seconds=metrics.build_seconds,
        probe_seconds=metrics.probe_seconds,
        levels=levels,
        optimizer=optimizer,
        counters=snapshot["counters"],
        histograms=snapshot["histograms"],
        build_breakdown={alias: ns * 1e-9
                         for alias, ns in observer.build_ns.items()},
        spans=observer.tracer.as_dicts(),
    )


# ----------------------------------------------------------------------
# Schema validation (the CI artifact gate)
# ----------------------------------------------------------------------
def _expect(condition: bool, where: str, message: str) -> None:
    if not condition:
        raise ProfileSchemaError(f"{where}: {message}")


def _expect_number(value, where: str, minimum: "float | None" = None) -> None:
    _expect(isinstance(value, (int, float)) and not isinstance(value, bool),
            where, f"expected a number, got {type(value).__name__}")
    if minimum is not None:
        _expect(value >= minimum, where, f"expected >= {minimum}, got {value}")


def _validate_levels(levels, where: str) -> None:
    _expect(isinstance(levels, list), where, "expected a list")
    for position, level in enumerate(levels):
        loc = f"{where}[{position}]"
        _expect(isinstance(level, dict), loc, "expected an object")
        _expect(isinstance(level.get("label"), str) and level["label"],
                f"{loc}.label", "expected a non-empty string")
        parts = level.get("participants")
        _expect(isinstance(parts, list) and parts
                and all(isinstance(p, str) for p in parts),
                f"{loc}.participants", "expected a non-empty list of aliases")
        for key in ("candidates", "survivors", "descends", "ascends"):
            _expect(isinstance(level.get(key), int) and level[key] >= 0,
                    f"{loc}.{key}", "expected a non-negative int")
        for key in ("seconds", "cumulative_seconds"):
            _expect_number(level.get(key), f"{loc}.{key}", minimum=0.0)
        seeds = level.get("seed_counts")
        _expect(isinstance(seeds, dict), f"{loc}.seed_counts",
                "expected an object")
        for alias, count in seeds.items():
            _expect(alias in parts, f"{loc}.seed_counts.{alias}",
                    "seed alias not among the level's participants")
            _expect(isinstance(count, int) and count >= 0,
                    f"{loc}.seed_counts.{alias}",
                    "expected a non-negative int")


def _validate_spans(spans, where: str) -> None:
    _expect(isinstance(spans, list), where, "expected a list")
    for position, span in enumerate(spans):
        loc = f"{where}[{position}]"
        _expect(isinstance(span, dict), loc, "expected an object")
        _expect(isinstance(span.get("name"), str) and span["name"],
                f"{loc}.name", "expected a non-empty string")
        _expect_number(span.get("ts_us"), f"{loc}.ts_us")
        _expect_number(span.get("dur_us"), f"{loc}.dur_us", minimum=0.0)


def _validate_distribution(dist, where: str, totaled: bool = True) -> None:
    _expect(isinstance(dist, dict), where, "expected an object")
    keys = ("min", "median", "max") + (("total",) if totaled else ())
    for key in keys:
        _expect_number(dist.get(key), f"{where}.{key}", minimum=0.0)


def _validate_sharding(sharding: dict) -> None:
    where = "sharding"
    _expect(isinstance(sharding, dict), where, "expected an object")
    _expect(isinstance(sharding.get("workers"), int)
            and sharding["workers"] >= 1,
            f"{where}.workers", "expected a positive int")
    _expect(isinstance(sharding.get("attribute"), str)
            and sharding["attribute"],
            f"{where}.attribute", "expected a non-empty string")
    _expect(isinstance(sharding.get("scheme"), str) and sharding["scheme"],
            f"{where}.scheme", "expected a non-empty string")
    _expect(isinstance(sharding.get("parent_pid"), int)
            and sharding["parent_pid"] >= 0,
            f"{where}.parent_pid", "expected a non-negative int")

    shards = sharding.get("shards")
    _expect(isinstance(shards, list) and shards,
            f"{where}.shards", "expected a non-empty list")
    for position, entry in enumerate(shards):
        loc = f"{where}.shards[{position}]"
        _expect(isinstance(entry, dict), loc, "expected an object")
        _expect(isinstance(entry.get("shard"), int) and entry["shard"] >= 0,
                f"{loc}.shard", "expected a non-negative int")
        _expect(isinstance(entry.get("skipped"), bool), f"{loc}.skipped",
                "expected a bool")
        _expect(isinstance(entry.get("count"), int) and entry["count"] >= 0,
                f"{loc}.count", "expected a non-negative int")
        for key in ("build_s", "probe_s"):
            _expect_number(entry.get(key), f"{loc}.{key}", minimum=0.0)
        if entry["skipped"]:
            continue
        _expect(isinstance(entry.get("pid"), int) and entry["pid"] > 0,
                f"{loc}.pid", "expected a positive int")
        _expect(isinstance(entry.get("clock_offset_ns"), int),
                f"{loc}.clock_offset_ns", "expected an int")
        counters = entry.get("counters")
        _expect(isinstance(counters, dict), f"{loc}.counters",
                "expected an object")
        for name, value in counters.items():
            _expect(isinstance(value, int), f"{loc}.counters.{name}",
                    "expected an int")
        _validate_levels(entry.get("levels"), f"{loc}.levels")
        _validate_spans(entry.get("spans"), f"{loc}.spans")

    level_stats = sharding.get("level_stats")
    _expect(isinstance(level_stats, list), f"{where}.level_stats",
            "expected a list")
    for position, stat in enumerate(level_stats):
        loc = f"{where}.level_stats[{position}]"
        _expect(isinstance(stat, dict), loc, "expected an object")
        _expect(isinstance(stat.get("label"), str) and stat["label"],
                f"{loc}.label", "expected a non-empty string")
        _validate_distribution(stat.get("seconds"), f"{loc}.seconds")
        _validate_distribution(stat.get("survivors"), f"{loc}.survivors")
        _expect_number(stat.get("straggler_ratio"), f"{loc}.straggler_ratio",
                       minimum=1.0)

    balance = sharding.get("balance")
    _expect(isinstance(balance, dict), f"{where}.balance",
            "expected an object")
    _validate_distribution(balance.get("emitted"), f"{where}.balance.emitted")
    _validate_distribution(balance.get("total_s"), f"{where}.balance.total_s",
                           totaled=False)
    _expect(balance.get("straggler_shard") is None
            or isinstance(balance["straggler_shard"], int),
            f"{where}.balance.straggler_shard", "expected an int or null")
    _expect_number(balance.get("straggler_ratio"),
                   f"{where}.balance.straggler_ratio", minimum=1.0)
    _expect_number(balance.get("skew"), f"{where}.balance.skew", minimum=0.0)


def validate_profile(payload: dict) -> dict:
    """Check a :meth:`JoinProfile.as_dict` payload against the schema.

    Covers both the single-process layout and the sharded layout (an
    optional ``sharding`` section, :class:`ShardedJoinProfile`).  Raises
    :class:`ProfileSchemaError` on the first mismatch; returns the
    payload unchanged so the call composes
    (``validate_profile(json.load(f))``).
    """
    _expect(isinstance(payload, dict), "$", "profile must be an object")
    _expect(payload.get("schema_version") == SCHEMA_VERSION, "schema_version",
            f"expected {SCHEMA_VERSION}, got {payload.get('schema_version')!r}")
    for key in ("query", "algorithm", "index"):
        _expect(isinstance(payload.get(key), str) and payload[key],
                key, "expected a non-empty string")
    engine = payload.get("engine")
    _expect(engine is None or isinstance(engine, str), "engine",
            "expected a string or null")
    order = payload.get("order")
    _expect(isinstance(order, list) and all(isinstance(a, str) for a in order),
            "order", "expected a list of attribute names")
    _expect(isinstance(payload.get("result_count"), int)
            and payload["result_count"] >= 0,
            "result_count", "expected a non-negative int")

    timings = payload.get("timings")
    _expect(isinstance(timings, dict), "timings", "expected an object")
    for key in ("build_s", "probe_s", "total_s"):
        _expect_number(timings.get(key), f"timings.{key}", minimum=0.0)
    breakdown = timings.get("build_breakdown", {})
    _expect(isinstance(breakdown, dict), "timings.build_breakdown",
            "expected an object")
    for alias, seconds in breakdown.items():
        _expect_number(seconds, f"timings.build_breakdown.{alias}", minimum=0.0)

    _validate_levels(payload.get("levels"), "levels")

    optimizer = payload.get("optimizer")
    if optimizer is not None:
        _expect(isinstance(optimizer, dict), "optimizer", "expected an object")
        _expect(isinstance(optimizer.get("algorithm"), str),
                "optimizer.algorithm", "expected a string")
        _expect(isinstance(optimizer.get("reason"), str),
                "optimizer.reason", "expected a string")
        estimated = optimizer.get("estimated")
        _expect(isinstance(estimated, dict), "optimizer.estimated",
                "expected an object")
        for key in ("agm_bound", "binary_peak_intermediates"):
            _expect_number(estimated.get(key), f"optimizer.estimated.{key}")
        actual = optimizer.get("actual")
        _expect(isinstance(actual, dict), "optimizer.actual",
                "expected an object")
        for key in ("results", "peak_level_cardinality", "intermediate_tuples"):
            _expect(isinstance(actual.get(key), int) and actual[key] >= 0,
                    f"optimizer.actual.{key}", "expected a non-negative int")

    counters = payload.get("counters")
    _expect(isinstance(counters, dict), "counters", "expected an object")
    for name, value in counters.items():
        _expect(isinstance(value, int), f"counters.{name}", "expected an int")

    _validate_spans(payload.get("spans"), "spans")

    stages = payload.get("stages", [])
    _expect(isinstance(stages, list), "stages", "expected a list")
    for i, stage in enumerate(stages):
        where = f"stages[{i}]"
        _expect(isinstance(stage, dict), where, "expected an object")
        _expect(isinstance(stage.get("label"), str) and stage["label"],
                f"{where}.label", "expected a non-empty string")
        _expect(isinstance(stage.get("depth"), int) and stage["depth"] >= 0,
                f"{where}.depth", "expected a non-negative int")
        _expect(isinstance(stage.get("algorithm"), str) and stage["algorithm"],
                f"{where}.algorithm", "expected a non-empty string")
        for key in ("engine", "index"):
            value = stage.get(key)
            _expect(value is None or isinstance(value, str),
                    f"{where}.{key}", "expected a string or null")
        order = stage.get("order")
        _expect(isinstance(order, list)
                and all(isinstance(a, str) for a in order),
                f"{where}.order", "expected a list of attribute names")
        estimated = stage.get("estimated_rows")
        _expect(estimated is None or isinstance(estimated, (int, float)),
                f"{where}.estimated_rows", "expected a number or null")
        _expect(isinstance(stage.get("actual_rows"), int)
                and stage["actual_rows"] >= 0,
                f"{where}.actual_rows", "expected a non-negative int")
        _expect_number(stage.get("seconds"), f"{where}.seconds", minimum=0.0)

    sharding = payload.get("sharding")
    if sharding is not None:
        _validate_sharding(sharding)
    return payload
