"""The EXPLAIN ANALYZE layer: per-level join profiles.

``join(..., profile=True)`` returns a :class:`~repro.joins.results.JoinResult`
whose ``profile`` is a :class:`JoinProfile`: the per-attribute-level tree
(seed relation chosen, candidates considered, survivors, time), the
hybrid optimizer's **estimated vs actual** cardinalities, the counter
registry and the span trace — renderable as an EXPLAIN ANALYZE-style
text tree (:meth:`JoinProfile.render`), as JSON
(:meth:`JoinProfile.to_json`), and as a Chrome ``trace_event`` document
(:meth:`JoinProfile.to_chrome_trace`).

The JSON layout is versioned (``schema_version``) and checked by
:func:`validate_profile` — the CI smoke job runs a profiled JOB-light
join and validates the artifact through exactly that function, so the
schema cannot drift silently.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


#: bump when the JSON layout changes shape (validate_profile must follow)
SCHEMA_VERSION = 1


class ProfileSchemaError(ValueError):
    """A profile payload does not match the documented schema."""


@dataclass
class LevelProfile:
    """One attribute level (or binary-pipeline stage) of the profile tree."""

    label: str                      # attribute name; stage alias for binary
    participants: tuple[str, ...]   # atoms intersected at this level
    candidates: int                 # values the seeds put up, total
    survivors: int                  # values accepted by every participant
    seconds: float                  # exclusive time at this level
    cumulative_seconds: float       # inclusive (this level + below)
    seed_counts: dict[str, int]     # alias -> times chosen as seed
    descends: int = 0
    ascends: int = 0

    @property
    def seed(self) -> str:
        """The most-chosen seed atom (ties broken by alias)."""
        if not self.seed_counts:
            return ""
        return max(sorted(self.seed_counts), key=self.seed_counts.get)

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "participants": list(self.participants),
            "candidates": self.candidates,
            "survivors": self.survivors,
            "seconds": round(self.seconds, 9),
            "cumulative_seconds": round(self.cumulative_seconds, 9),
            "seed_counts": dict(self.seed_counts),
            "descends": self.descends,
            "ascends": self.ascends,
        }


@dataclass
class JoinProfile:
    """Everything one profiled join run learned about itself."""

    query: str
    algorithm: str
    index: str
    order: tuple[str, ...]
    result_count: int
    build_seconds: float
    probe_seconds: float
    engine: "str | None" = None      # generic-join drivers only
    levels: list[LevelProfile] = field(default_factory=list)
    optimizer: "dict | None" = None
    counters: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)
    build_breakdown: dict = field(default_factory=dict)  # alias -> seconds
    spans: list[dict] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.build_seconds + self.probe_seconds

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "query": self.query,
            "algorithm": self.algorithm,
            "engine": self.engine,
            "index": self.index,
            "order": list(self.order),
            "result_count": self.result_count,
            "timings": {
                "build_s": round(self.build_seconds, 9),
                "probe_s": round(self.probe_seconds, 9),
                "total_s": round(self.total_seconds, 9),
                "build_breakdown": {alias: round(seconds, 9)
                                    for alias, seconds
                                    in sorted(self.build_breakdown.items())},
            },
            "optimizer": self.optimizer,
            "levels": [level.as_dict() for level in self.levels],
            "counters": dict(sorted(self.counters.items())),
            "histograms": self.histograms,
            "spans": self.spans,
        }

    def to_json(self, indent: "int | None" = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def to_chrome_trace(self) -> dict:
        """The span trace as a Chrome ``trace_event`` document."""
        events = [
            {
                "name": span["name"],
                "ph": "X",
                "ts": span["ts_us"],
                "dur": span["dur_us"],
                "pid": 1,
                "tid": 1,
                "cat": "repro",
                "args": span.get("args", {}),
            }
            for span in self.spans
        ]
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    # ------------------------------------------------------------------
    # The EXPLAIN ANALYZE text tree
    # ------------------------------------------------------------------
    def render(self) -> str:
        lines = [f"EXPLAIN ANALYZE  {self.query}"]
        engine = f" engine={self.engine}" if self.engine else ""
        lines.append(
            f"algorithm={self.algorithm}{engine} index={self.index}  "
            f"order=({', '.join(self.order)})  results={self.result_count}"
        )
        lines.append(
            f"build {self.build_seconds * 1e3:.3f} ms"
            f"  probe {self.probe_seconds * 1e3:.3f} ms"
            f"  total {self.total_seconds * 1e3:.3f} ms"
        )
        if self.build_breakdown:
            parts = "  ".join(f"{alias}={seconds * 1e3:.3f}ms" for alias,
                              seconds in sorted(self.build_breakdown.items()))
            lines.append(f"  build breakdown: {parts}")
        if self.optimizer:
            opt = self.optimizer
            lines.append(f"optimizer: chose {opt['algorithm']} — {opt['reason']}")
            est, act = opt["estimated"], opt["actual"]
            lines.append(
                f"  estimated: AGM bound {est['agm_bound']:.4g}, "
                f"binary peak intermediates {est['binary_peak_intermediates']:.4g}"
            )
            lines.append(
                f"  actual:    {act['results']} results, "
                f"peak level cardinality {act['peak_level_cardinality']}, "
                f"{act['intermediate_tuples']} intermediate tuples"
            )
        probe = self.probe_seconds or 1.0
        for depth, level in enumerate(self.levels):
            pad = "   " * depth
            seed = level.seed
            chosen = level.seed_counts.get(seed, 0)
            total_choices = sum(level.seed_counts.values()) or 1
            seed_note = f"seed={seed}"
            if len(level.participants) > 1:
                seed_note += f" ({100 * chosen // total_choices}%)"
            pct = min(100.0 * level.seconds / probe, 100.0)
            lines.append(
                f"{pad}└─ {level.label}: {seed_note}"
                f"  candidates={level.candidates} survivors={level.survivors}"
                f"  {level.seconds * 1e3:.3f} ms ({pct:.0f}% of probe)"
            )
        if self.counters:
            lines.append("counters:")
            for name, value in sorted(self.counters.items()):
                lines.append(f"  {name} = {value}")
        for name, h in sorted(self.histograms.items()):
            lines.append(
                f"  {name}: n={h['count']} mean={h['mean']:.2f} "
                f"min={h['min']:.0f} max={h['max']:.0f}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Assembly (called by the executor once the run finishes)
# ----------------------------------------------------------------------
def build_profile(*, query: str, algorithm: str, index: str,
                  order, metrics, observer,
                  engine: "str | None" = None,
                  choice=None) -> JoinProfile:
    """Fold an observer + driver metrics into a :class:`JoinProfile`.

    ``metrics`` is the driver's :class:`~repro.joins.results.JoinMetrics`
    (timings + result count); ``choice`` the optimizer's
    :class:`~repro.planner.optimizer.PlanChoice`, when one was computed.
    """
    stats = list(observer.levels)
    levels: list[LevelProfile] = []
    for depth, st in enumerate(stats):
        inclusive = st.time_ns
        below = stats[depth + 1].time_ns if depth + 1 < len(stats) else 0
        levels.append(LevelProfile(
            label=st.label,
            participants=st.participants,
            candidates=st.candidates,
            survivors=st.survivors,
            seconds=max(inclusive - below, 0) * 1e-9,
            cumulative_seconds=inclusive * 1e-9,
            seed_counts=dict(st.seed_counts),
            descends=st.descends,
            ascends=st.ascends,
        ))

    registry = observer.metrics
    for st in stats:
        registry.inc("level.candidates", st.candidates)
        registry.inc("level.survivors", st.survivors)
        registry.inc("cursor.descend", st.descends)
        registry.inc("cursor.ascend", st.ascends)
    registry.inc("join.emitted", metrics.result_count)
    registry.inc("probe.lookups", metrics.lookups)

    optimizer = None
    if choice is not None:
        peak = max((level.survivors for level in levels), default=0)
        optimizer = {
            "algorithm": choice.algorithm,
            "reason": choice.reason,
            "estimated": {
                "agm_bound": choice.agm_bound,
                "binary_peak_intermediates": choice.binary_estimate,
            },
            "actual": {
                "results": metrics.result_count,
                "peak_level_cardinality": peak,
                "intermediate_tuples": metrics.intermediate_tuples,
            },
        }

    snapshot = registry.as_dict()
    return JoinProfile(
        query=query,
        algorithm=algorithm,
        engine=engine,
        index=index,
        order=tuple(order),
        result_count=metrics.result_count,
        build_seconds=metrics.build_seconds,
        probe_seconds=metrics.probe_seconds,
        levels=levels,
        optimizer=optimizer,
        counters=snapshot["counters"],
        histograms=snapshot["histograms"],
        build_breakdown={alias: ns * 1e-9
                         for alias, ns in observer.build_ns.items()},
        spans=observer.tracer.as_dicts(),
    )


# ----------------------------------------------------------------------
# Schema validation (the CI artifact gate)
# ----------------------------------------------------------------------
def _expect(condition: bool, where: str, message: str) -> None:
    if not condition:
        raise ProfileSchemaError(f"{where}: {message}")


def _expect_number(value, where: str, minimum: "float | None" = None) -> None:
    _expect(isinstance(value, (int, float)) and not isinstance(value, bool),
            where, f"expected a number, got {type(value).__name__}")
    if minimum is not None:
        _expect(value >= minimum, where, f"expected >= {minimum}, got {value}")


def validate_profile(payload: dict) -> dict:
    """Check a :meth:`JoinProfile.as_dict` payload against the schema.

    Raises :class:`ProfileSchemaError` on the first mismatch; returns the
    payload unchanged so the call composes (``validate_profile(json.load(f))``).
    """
    _expect(isinstance(payload, dict), "$", "profile must be an object")
    _expect(payload.get("schema_version") == SCHEMA_VERSION, "schema_version",
            f"expected {SCHEMA_VERSION}, got {payload.get('schema_version')!r}")
    for key in ("query", "algorithm", "index"):
        _expect(isinstance(payload.get(key), str) and payload[key],
                key, "expected a non-empty string")
    engine = payload.get("engine")
    _expect(engine is None or isinstance(engine, str), "engine",
            "expected a string or null")
    order = payload.get("order")
    _expect(isinstance(order, list) and all(isinstance(a, str) for a in order),
            "order", "expected a list of attribute names")
    _expect(isinstance(payload.get("result_count"), int)
            and payload["result_count"] >= 0,
            "result_count", "expected a non-negative int")

    timings = payload.get("timings")
    _expect(isinstance(timings, dict), "timings", "expected an object")
    for key in ("build_s", "probe_s", "total_s"):
        _expect_number(timings.get(key), f"timings.{key}", minimum=0.0)
    breakdown = timings.get("build_breakdown", {})
    _expect(isinstance(breakdown, dict), "timings.build_breakdown",
            "expected an object")
    for alias, seconds in breakdown.items():
        _expect_number(seconds, f"timings.build_breakdown.{alias}", minimum=0.0)

    levels = payload.get("levels")
    _expect(isinstance(levels, list), "levels", "expected a list")
    for position, level in enumerate(levels):
        where = f"levels[{position}]"
        _expect(isinstance(level, dict), where, "expected an object")
        _expect(isinstance(level.get("label"), str) and level["label"],
                f"{where}.label", "expected a non-empty string")
        parts = level.get("participants")
        _expect(isinstance(parts, list) and parts
                and all(isinstance(p, str) for p in parts),
                f"{where}.participants", "expected a non-empty list of aliases")
        for key in ("candidates", "survivors", "descends", "ascends"):
            _expect(isinstance(level.get(key), int) and level[key] >= 0,
                    f"{where}.{key}", "expected a non-negative int")
        for key in ("seconds", "cumulative_seconds"):
            _expect_number(level.get(key), f"{where}.{key}", minimum=0.0)
        seeds = level.get("seed_counts")
        _expect(isinstance(seeds, dict), f"{where}.seed_counts",
                "expected an object")
        for alias, count in seeds.items():
            _expect(alias in parts, f"{where}.seed_counts.{alias}",
                    "seed alias not among the level's participants")
            _expect(isinstance(count, int) and count >= 0,
                    f"{where}.seed_counts.{alias}",
                    "expected a non-negative int")

    optimizer = payload.get("optimizer")
    if optimizer is not None:
        _expect(isinstance(optimizer, dict), "optimizer", "expected an object")
        _expect(isinstance(optimizer.get("algorithm"), str),
                "optimizer.algorithm", "expected a string")
        _expect(isinstance(optimizer.get("reason"), str),
                "optimizer.reason", "expected a string")
        estimated = optimizer.get("estimated")
        _expect(isinstance(estimated, dict), "optimizer.estimated",
                "expected an object")
        for key in ("agm_bound", "binary_peak_intermediates"):
            _expect_number(estimated.get(key), f"optimizer.estimated.{key}")
        actual = optimizer.get("actual")
        _expect(isinstance(actual, dict), "optimizer.actual",
                "expected an object")
        for key in ("results", "peak_level_cardinality", "intermediate_tuples"):
            _expect(isinstance(actual.get(key), int) and actual[key] >= 0,
                    f"optimizer.actual.{key}", "expected a non-negative int")

    counters = payload.get("counters")
    _expect(isinstance(counters, dict), "counters", "expected an object")
    for name, value in counters.items():
        _expect(isinstance(value, int), f"counters.{name}", "expected an int")

    spans = payload.get("spans")
    _expect(isinstance(spans, list), "spans", "expected a list")
    for position, span in enumerate(spans):
        where = f"spans[{position}]"
        _expect(isinstance(span, dict), where, "expected an object")
        _expect(isinstance(span.get("name"), str) and span["name"],
                f"{where}.name", "expected a non-empty string")
        _expect_number(span.get("ts_us"), f"{where}.ts_us")
        _expect_number(span.get("dur_us"), f"{where}.dur_us", minimum=0.0)
    return payload
