"""The per-run observer the join drivers write into.

One :class:`JoinObserver` travels with one join execution: it bundles a
:class:`~repro.obs.metrics.Metrics` registry, a
:class:`~repro.obs.trace.Tracer`, the per-attribute-level accumulators
(:class:`LevelStats`) and the per-adapter build times.  The executor
creates it (``join(..., profile=True)``), threads it through the driver
and the index cursors, and finally folds it into a
:class:`~repro.obs.profile.JoinProfile`.

**Disabled-path contract.**  Drivers receive either an enabled observer
or :data:`NULL_OBSERVER` and branch exactly once per run on
``obs.enabled``; the un-profiled probe recursion contains *no*
observability code at all (the instrumented twin of each ``_join_level``
only exists on the enabled branch).  That is what keeps the measured
overhead of carrying this subsystem at noise level — see the
``obs_overhead`` section of ``BENCH_generic_join.json`` and lint rule
RA601, which guards the discipline statically.

:class:`LevelStats` fields are plain slots mutated with ``+=`` so the
profiled recursion never makes a method call per binding; the semantic
meaning of ``candidates``/``survivors`` per algorithm is documented in
``docs/observability.md``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.obs.metrics import Metrics, NULL_METRICS
from repro.obs.trace import NULL_TRACER, Tracer


class LevelStats:
    """Accumulators for one attribute level (or pipeline stage).

    * ``candidates`` — values the level's seed put up for intersection;
    * ``survivors`` — values every participant accepted (= partial
      bindings entering the next level; at the last level, emitted
      results);
    * ``descends``/``ascends`` — cursor movements issued by the driver;
    * ``time_ns`` — *inclusive* time spent at this level across all its
      invocations (children included; the profile derives exclusive
      time as ``incl[d] - incl[d+1]``);
    * ``seed_counts`` — how often each participating atom was chosen as
      the enumeration seed (the Alg. 1 line 9/10 decision, per binding).
    """

    __slots__ = ("label", "participants", "candidates", "survivors",
                 "descends", "ascends", "time_ns", "seed_counts")

    def __init__(self, label: str, participants: Sequence[str]):
        self.label = label
        self.participants: tuple[str, ...] = tuple(participants)
        self.candidates = 0
        self.survivors = 0
        self.descends = 0
        self.ascends = 0
        self.time_ns = 0
        self.seed_counts: dict[str, int] = dict.fromkeys(self.participants, 0)


class JoinObserver:
    """Everything one profiled join run writes into."""

    __slots__ = ("enabled", "metrics", "tracer", "levels", "build_ns")

    def __init__(self, metrics: "Metrics | None" = None,
                 tracer: "Tracer | None" = None, enabled: bool = True):
        self.enabled = enabled
        if enabled:
            self.metrics = Metrics() if metrics is None else metrics
            self.tracer = Tracer() if tracer is None else tracer
        else:
            self.metrics = NULL_METRICS
            self.tracer = NULL_TRACER
        self.levels: list[LevelStats] = []
        self.build_ns: dict[str, int] = {}

    @classmethod
    def disabled(cls) -> "JoinObserver":
        """An explicitly-disabled observer (null metrics, null tracer).

        Behaviourally identical to passing no observer at all; exists so
        the overhead bench can thread a *present-but-off* observer and
        measure that "disabled" and "absent" really are the same path.
        """
        return cls(enabled=False)

    # ------------------------------------------------------------------
    def init_levels(self, labels: Sequence[str],
                    participants: Sequence[Sequence[str]],
                    ) -> list[LevelStats]:
        """Fresh per-level accumulators for one run; returns them so the
        driver can index by depth without attribute lookups."""
        self.levels = [LevelStats(label, parts)
                       for label, parts in zip(labels, participants)]
        return self.levels

    def record_build(self, alias: str, duration_ns: int) -> None:
        """One adapter's index-build time (the WCOJ build phase, §5.15)."""
        self.build_ns[alias] = self.build_ns.get(alias, 0) + duration_ns
        self.metrics.inc("build.indexes")


#: the shared disabled observer handed to every un-profiled driver
NULL_OBSERVER = JoinObserver.disabled()
