"""Cheap named counters and histograms for the execution stack.

The paper argues entirely from *where time goes inside the join* — probe
counts (§5.15's Umbra accounting), per-level intersection work, build vs
probe split — so the engines need counters that are effectively free when
off and still cheap when on.  Two rules keep them honest:

* **Null-object discipline.**  Every consumer holds either a real
  :class:`Metrics` or the shared :data:`NULL_METRICS`; both expose the
  same surface, so no call site ever tests for ``None``.  Hot loops go
  one step further and check ``metrics.enabled`` (a plain class
  attribute) before doing *any* per-iteration work — lint rule RA601
  enforces that routing in ``joins/``, ``indexes/`` and ``parallel/``.
* **Counters are dumb.**  A counter is one dict slot holding an int; a
  histogram is four slots (count/total/min/max).  No time series, no
  sampling — per-run instruments that get read once, when the profile
  is assembled.

A session-scoped registry is shared by every thread driving that
session, so the write paths (``inc`` / ``observe`` / ``merge``) take a
small internal lock — a read-modify-write on a dict slot is not atomic
under concurrency.  Hot loops never see that lock: the RA601 discipline
keeps per-iteration obs work behind ``enabled`` checks and local
accumulation, so locked calls happen per phase, not per tuple.

Counter names are dotted strings (``"batch.memo_hit"``); the catalog
lives in ``docs/observability.md``.

For serving, :meth:`Metrics.to_prometheus_text` renders a registry in
the Prometheus text exposition format (dotted names become underscored,
histograms expand to ``_count``/``_sum``/``_min``/``_max`` series), and
a :class:`MetricsRegistry` collects named registries behind one
``scrape()`` — the shape a ``/metrics`` endpoint needs.
"""

from __future__ import annotations

import re
import threading

#: characters Prometheus forbids in metric names (dots included)
_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, prefix: str) -> str:
    """A dotted counter name as a legal Prometheus metric name."""
    sanitized = _PROM_BAD.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return prefix + sanitized


def _prom_labels(labels: "dict[str, str] | None") -> str:
    if not labels:
        return ""
    parts = []
    for key, value in sorted(labels.items()):
        escaped = str(value).replace("\\", "\\\\").replace('"', '\\"')
        parts.append(f'{key}="{escaped}"')
    return "{" + ",".join(parts) + "}"


class Metrics:
    """A registry of named counters and min/max/total histograms."""

    #: hot loops branch on this before touching the registry
    enabled = True

    __slots__ = ("counters", "_histograms", "_lock")

    def __init__(self):
        self._lock = threading.Lock()
        self.counters: dict[str, int] = {}       # repro: shared[lock=_lock]
        #: name -> [count, total, min, max]
        self._histograms: dict[str, list] = {}   # repro: shared[lock=_lock]

    # ------------------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0 on first use)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        with self._lock:
            slot = self._histograms.get(name)
            if slot is None:
                self._histograms[name] = [1, value, value, value]
                return
            slot[0] += 1
            slot[1] += value
            if value < slot[2]:
                slot[2] = value
            if value > slot[3]:
                slot[3] = value

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never touched)."""
        return self.counters.get(name, 0)

    # ------------------------------------------------------------------
    def histograms(self) -> dict[str, dict[str, float]]:
        """Histogram summaries: ``{name: {count, total, min, max, mean}}``."""
        with self._lock:
            snapshot = sorted((name, list(slot))
                              for name, slot in self._histograms.items())
        out: dict[str, dict[str, float]] = {}
        for name, (count, total, low, high) in snapshot:
            out[name] = {
                "count": count,
                "total": total,
                "min": low,
                "max": high,
                "mean": total / count if count else 0.0,
            }
        return out

    def as_dict(self) -> dict[str, object]:
        """JSON-ready snapshot: counters plus histogram summaries."""
        with self._lock:
            counters = dict(sorted(self.counters.items()))
        return {
            "counters": counters,
            "histograms": self.histograms(),
        }

    def to_prometheus_text(self, prefix: str = "repro_",
                           labels: "dict[str, str] | None" = None) -> str:
        """The registry in the Prometheus text exposition format.

        Counters export as ``counter`` series; each histogram expands to
        ``_count``/``_sum`` (the conventional summary pair) plus
        ``_min``/``_max`` gauges.  Dotted names are sanitized
        (``join.emitted`` → ``repro_join_emitted``); ``labels`` are
        attached to every sample, which is how :class:`MetricsRegistry`
        distinguishes its sources.
        """
        with self._lock:
            counters = sorted(self.counters.items())
        label_text = _prom_labels(labels)
        lines: list[str] = []
        for name, value in counters:
            metric = _prom_name(name, prefix)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric}{label_text} {value}")
        for name, summary in sorted(self.histograms().items()):
            metric = _prom_name(name, prefix)
            lines.append(f"# TYPE {metric} summary")
            lines.append(f"{metric}_count{label_text} {summary['count']}")
            lines.append(f"{metric}_sum{label_text} {summary['total']}")
            lines.append(f"{metric}_min{label_text} {summary['min']}")
            lines.append(f"{metric}_max{label_text} {summary['max']}")
        return "\n".join(lines) + ("\n" if lines else "")

    def merge(self, other: "Metrics") -> None:
        """Fold another registry's counts into this one.

        ``other`` is snapshotted first (usually a finished per-run
        registry), then folded in under this registry's lock — the two
        locks are never held together, so merge cannot deadlock against
        a concurrent merge in the opposite direction.
        """
        with other._lock:
            other_counters = list(other.counters.items())
            other_histograms = [(name, list(slot))
                                for name, slot in other._histograms.items()]
        with self._lock:
            for name, value in other_counters:
                self.counters[name] = self.counters.get(name, 0) + value
            for name, (count, total, low, high) in other_histograms:
                slot = self._histograms.get(name)
                if slot is None:
                    self._histograms[name] = [count, total, low, high]
                else:
                    slot[0] += count
                    slot[1] += total
                    slot[2] = min(slot[2], low)
                    slot[3] = max(slot[3], high)


class NullMetrics(Metrics):
    """The disabled registry: same surface, every method a no-op.

    Shared as :data:`NULL_METRICS` so holding "no metrics" costs one
    reference and zero allocations; ``enabled`` is False so hot loops
    skip even the no-op calls.
    """

    enabled = False

    __slots__ = ()

    def inc(self, name: str, n: int = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass


#: the shared disabled registry (never holds data)
NULL_METRICS = NullMetrics()


class MetricsRegistry:
    """Named :class:`Metrics` sources behind one snapshot-and-scrape API.

    The serving-layer shape: long-lived components (a session, a worker
    pool, a cache) each :meth:`register` a registry once; a ``/metrics``
    endpoint calls :meth:`scrape` per request and gets one Prometheus
    text document with a ``source`` label per registry.  Registration is
    cheap and scraping never blocks writers beyond the per-registry
    snapshot locks.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._sources: dict[str, Metrics] = {}  # repro: shared[lock=_lock]

    def register(self, name: str, metrics: "Metrics | None" = None) -> Metrics:
        """Attach (or create) the registry published under ``name``.

        Re-registering a name replaces the previous source — the
        restart-friendly behaviour: a rebuilt component republishes
        itself without a stale twin lingering.
        """
        if metrics is None:
            metrics = Metrics()
        with self._lock:
            self._sources[name] = metrics
        return metrics

    def unregister(self, name: str) -> None:
        """Drop a source (idempotent)."""
        with self._lock:
            self._sources.pop(name, None)

    def sources(self) -> "dict[str, Metrics]":
        """A point-in-time copy of the name → registry mapping."""
        with self._lock:
            return dict(self._sources)

    def snapshot(self) -> Metrics:
        """All sources folded into one fresh :class:`Metrics`."""
        merged = Metrics()
        for _, metrics in sorted(self.sources().items()):
            merged.merge(metrics)
        return merged

    def scrape(self, prefix: str = "repro_") -> str:
        """One Prometheus text document covering every source."""
        chunks = [
            metrics.to_prometheus_text(prefix, labels={"source": name})
            for name, metrics in sorted(self.sources().items())
        ]
        return "".join(chunk for chunk in chunks if chunk)


#: the process-wide default registry a serving layer scrapes
METRICS_REGISTRY = MetricsRegistry()
