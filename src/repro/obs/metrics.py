"""Cheap named counters and histograms for the execution stack.

The paper argues entirely from *where time goes inside the join* — probe
counts (§5.15's Umbra accounting), per-level intersection work, build vs
probe split — so the engines need counters that are effectively free when
off and still cheap when on.  Two rules keep them honest:

* **Null-object discipline.**  Every consumer holds either a real
  :class:`Metrics` or the shared :data:`NULL_METRICS`; both expose the
  same surface, so no call site ever tests for ``None``.  Hot loops go
  one step further and check ``metrics.enabled`` (a plain class
  attribute) before doing *any* per-iteration work — lint rule RA601
  enforces that routing in ``joins/`` and ``indexes/``.
* **Counters are dumb.**  A counter is one dict slot holding an int; a
  histogram is four slots (count/total/min/max).  No locks, no time
  series, no sampling — per-run instruments that get read once, when the
  profile is assembled.

Counter names are dotted strings (``"batch.memo_hit"``); the catalog
lives in ``docs/observability.md``.
"""

from __future__ import annotations


class Metrics:
    """A registry of named counters and min/max/total histograms."""

    #: hot loops branch on this before touching the registry
    enabled = True

    __slots__ = ("counters", "_histograms")

    def __init__(self):
        self.counters: dict[str, int] = {}
        #: name -> [count, total, min, max]
        self._histograms: dict[str, list] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0 on first use)."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        slot = self._histograms.get(name)
        if slot is None:
            self._histograms[name] = [1, value, value, value]
            return
        slot[0] += 1
        slot[1] += value
        if value < slot[2]:
            slot[2] = value
        if value > slot[3]:
            slot[3] = value

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never touched)."""
        return self.counters.get(name, 0)

    # ------------------------------------------------------------------
    def histograms(self) -> dict[str, dict[str, float]]:
        """Histogram summaries: ``{name: {count, total, min, max, mean}}``."""
        out: dict[str, dict[str, float]] = {}
        for name, (count, total, low, high) in sorted(self._histograms.items()):
            out[name] = {
                "count": count,
                "total": total,
                "min": low,
                "max": high,
                "mean": total / count if count else 0.0,
            }
        return out

    def as_dict(self) -> dict[str, object]:
        """JSON-ready snapshot: counters plus histogram summaries."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": self.histograms(),
        }

    def merge(self, other: "Metrics") -> None:
        """Fold another registry's counts into this one."""
        for name, value in other.counters.items():
            self.inc(name, value)
        for name, (count, total, low, high) in other._histograms.items():
            slot = self._histograms.get(name)
            if slot is None:
                self._histograms[name] = [count, total, low, high]
            else:
                slot[0] += count
                slot[1] += total
                slot[2] = min(slot[2], low)
                slot[3] = max(slot[3], high)


class NullMetrics(Metrics):
    """The disabled registry: same surface, every method a no-op.

    Shared as :data:`NULL_METRICS` so holding "no metrics" costs one
    reference and zero allocations; ``enabled`` is False so hot loops
    skip even the no-op calls.
    """

    enabled = False

    __slots__ = ()

    def inc(self, name: str, n: int = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass


#: the shared disabled registry (never holds data)
NULL_METRICS = NullMetrics()
