"""Cheap named counters and histograms for the execution stack.

The paper argues entirely from *where time goes inside the join* — probe
counts (§5.15's Umbra accounting), per-level intersection work, build vs
probe split — so the engines need counters that are effectively free when
off and still cheap when on.  Two rules keep them honest:

* **Null-object discipline.**  Every consumer holds either a real
  :class:`Metrics` or the shared :data:`NULL_METRICS`; both expose the
  same surface, so no call site ever tests for ``None``.  Hot loops go
  one step further and check ``metrics.enabled`` (a plain class
  attribute) before doing *any* per-iteration work — lint rule RA601
  enforces that routing in ``joins/`` and ``indexes/``.
* **Counters are dumb.**  A counter is one dict slot holding an int; a
  histogram is four slots (count/total/min/max).  No time series, no
  sampling — per-run instruments that get read once, when the profile
  is assembled.

A session-scoped registry is shared by every thread driving that
session, so the write paths (``inc`` / ``observe`` / ``merge``) take a
small internal lock — a read-modify-write on a dict slot is not atomic
under concurrency.  Hot loops never see that lock: the RA601 discipline
keeps per-iteration obs work behind ``enabled`` checks and local
accumulation, so locked calls happen per phase, not per tuple.

Counter names are dotted strings (``"batch.memo_hit"``); the catalog
lives in ``docs/observability.md``.
"""

from __future__ import annotations

import threading


class Metrics:
    """A registry of named counters and min/max/total histograms."""

    #: hot loops branch on this before touching the registry
    enabled = True

    __slots__ = ("counters", "_histograms", "_lock")

    def __init__(self):
        self._lock = threading.Lock()
        self.counters: dict[str, int] = {}       # repro: shared[lock=_lock]
        #: name -> [count, total, min, max]
        self._histograms: dict[str, list] = {}   # repro: shared[lock=_lock]

    # ------------------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0 on first use)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        with self._lock:
            slot = self._histograms.get(name)
            if slot is None:
                self._histograms[name] = [1, value, value, value]
                return
            slot[0] += 1
            slot[1] += value
            if value < slot[2]:
                slot[2] = value
            if value > slot[3]:
                slot[3] = value

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never touched)."""
        return self.counters.get(name, 0)

    # ------------------------------------------------------------------
    def histograms(self) -> dict[str, dict[str, float]]:
        """Histogram summaries: ``{name: {count, total, min, max, mean}}``."""
        with self._lock:
            snapshot = sorted((name, list(slot))
                              for name, slot in self._histograms.items())
        out: dict[str, dict[str, float]] = {}
        for name, (count, total, low, high) in snapshot:
            out[name] = {
                "count": count,
                "total": total,
                "min": low,
                "max": high,
                "mean": total / count if count else 0.0,
            }
        return out

    def as_dict(self) -> dict[str, object]:
        """JSON-ready snapshot: counters plus histogram summaries."""
        with self._lock:
            counters = dict(sorted(self.counters.items()))
        return {
            "counters": counters,
            "histograms": self.histograms(),
        }

    def merge(self, other: "Metrics") -> None:
        """Fold another registry's counts into this one.

        ``other`` is snapshotted first (usually a finished per-run
        registry), then folded in under this registry's lock — the two
        locks are never held together, so merge cannot deadlock against
        a concurrent merge in the opposite direction.
        """
        with other._lock:
            other_counters = list(other.counters.items())
            other_histograms = [(name, list(slot))
                                for name, slot in other._histograms.items()]
        with self._lock:
            for name, value in other_counters:
                self.counters[name] = self.counters.get(name, 0) + value
            for name, (count, total, low, high) in other_histograms:
                slot = self._histograms.get(name)
                if slot is None:
                    self._histograms[name] = [count, total, low, high]
                else:
                    slot[0] += count
                    slot[1] += total
                    slot[2] = min(slot[2], low)
                    slot[3] = max(slot[3], high)


class NullMetrics(Metrics):
    """The disabled registry: same surface, every method a no-op.

    Shared as :data:`NULL_METRICS` so holding "no metrics" costs one
    reference and zero allocations; ``enabled`` is False so hot loops
    skip even the no-op calls.
    """

    enabled = False

    __slots__ = ()

    def inc(self, name: str, n: int = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass


#: the shared disabled registry (never holds data)
NULL_METRICS = NullMetrics()
