"""repro.obs — metrics counters, span tracing, and join profiles.

The observability layer for the execution stack: cheap counters
(:class:`Metrics`), nested spans with Chrome ``trace_event`` export
(:class:`Tracer`), and the EXPLAIN ANALYZE report
(:class:`JoinProfile`) that ``join(..., profile=True)`` attaches to its
:class:`~repro.joins.results.JoinResult`.

Import discipline: this package never imports ``repro.joins`` (or any
execution module) at module level — ``joins`` imports ``obs``, not the
other way round.  The only crossing is the lazy ``Stopwatch.now_ns``
clock lookup inside :class:`Tracer`.
"""

from repro.obs.distributed import (
    TraceContext,
    attach_sharded_profile,
    build_sharded_profile,
    calibrate_clock_offset,
    rebase_spans,
)
from repro.obs.flightrec import FLIGHT_RECORDER, FlightRecorder
from repro.obs.metrics import (
    Metrics,
    MetricsRegistry,
    METRICS_REGISTRY,
    NullMetrics,
    NULL_METRICS,
)
from repro.obs.observer import JoinObserver, LevelStats, NULL_OBSERVER
from repro.obs.profile import (
    JoinProfile,
    LevelProfile,
    ProfileSchemaError,
    SCHEMA_VERSION,
    ShardedJoinProfile,
    build_profile,
    validate_profile,
)
from repro.obs.trace import NullTracer, NULL_TRACER, Tracer

__all__ = [
    "Metrics",
    "MetricsRegistry",
    "METRICS_REGISTRY",
    "NullMetrics",
    "NULL_METRICS",
    "FlightRecorder",
    "FLIGHT_RECORDER",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "JoinObserver",
    "LevelStats",
    "NULL_OBSERVER",
    "JoinProfile",
    "LevelProfile",
    "ProfileSchemaError",
    "SCHEMA_VERSION",
    "ShardedJoinProfile",
    "build_profile",
    "validate_profile",
    "TraceContext",
    "attach_sharded_profile",
    "build_sharded_profile",
    "calibrate_clock_offset",
    "rebase_spans",
]
