"""An always-on ring-buffer event log for post-mortem crash context.

Counters say *how much*, spans say *how long* — neither says *what the
process was doing right before it died*.  The flight recorder fills
that gap for the multiprocess layer: a fixed-size ring of the last
``capacity`` lifecycle events (pool start, task dispatch, result
collection, worker death, timeout, shutdown), recorded unconditionally
because its cost model is one lock-per-append on events that happen per
*phase*, never per tuple — the same budget the obs layer already grants
``Metrics.inc``.

When the parallel layer raises :class:`~repro.errors.ExecutionError`,
it attaches :meth:`FlightRecorder.dump_text` to the exception
(``exc.flight_log``), so the traceback a user files already contains
the dispatch/collect history leading up to the failure.

The recorder is process-local (each shard worker has its own, started
at fork/spawn); only the parent's recorder feeds error reports, which
is the side that observes deaths and timeouts.  Hot join loops must
still never call :meth:`record` unguarded — lint rule RA601 covers
flight-recorder receivers in ``parallel/`` the same way it covers
metrics and tracers in ``joins/``.
"""

from __future__ import annotations

import os
import threading

#: events the default recorder retains (oldest overwritten first)
DEFAULT_CAPACITY = 256


class FlightRecorder:
    """A fixed-size ring of ``(ts_ns, pid, category, message, fields)``."""

    #: loop call sites branch on this before paying the append
    enabled = True

    __slots__ = ("_lock", "_events", "_next", "_recorded", "capacity")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"flight recorder capacity must be >= 1, "
                             f"got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        #: ring slots, None until first wrapped write
        self._events: list = [None] * capacity  # repro: shared[lock=_lock]
        self._next = 0          # repro: shared[lock=_lock]
        self._recorded = 0      # repro: shared[lock=_lock]

    # ------------------------------------------------------------------
    def record(self, category: str, message: str = "", **fields) -> None:
        """Append one event (one locked slot write, O(1) always)."""
        from repro.joins.results import Stopwatch

        event = (Stopwatch.now_ns(), os.getpid(), category, message, fields)
        with self._lock:
            self._events[self._next] = event
            self._next = (self._next + 1) % self.capacity
            self._recorded += 1

    def __len__(self) -> int:
        with self._lock:
            return min(self._recorded, self.capacity)

    @property
    def dropped(self) -> int:
        """Events overwritten because the ring wrapped."""
        with self._lock:
            return max(self._recorded - self.capacity, 0)

    def clear(self) -> None:
        with self._lock:
            self._events = [None] * self.capacity
            self._next = 0
            self._recorded = 0

    # ------------------------------------------------------------------
    def events(self) -> list[dict]:
        """Retained events oldest-first as plain dicts."""
        with self._lock:
            if self._recorded >= self.capacity:
                ordered = (self._events[self._next:]
                           + self._events[:self._next])
            else:
                ordered = self._events[:self._next]
        return [
            {"ts_ns": ts, "pid": pid, "category": category,
             "message": message, "fields": dict(fields)}
            for ts, pid, category, message, fields in ordered
            if ts is not None
        ]

    def dump_text(self, limit: "int | None" = None) -> str:
        """The retained events as one line each, oldest-first.

        Timestamps print in milliseconds relative to the first retained
        event — the readable form for an exception attachment.  ``limit``
        keeps only the newest N lines.
        """
        events = self.events()
        if limit is not None:
            events = events[-limit:]
        if not events:
            return "(flight recorder empty)"
        origin = events[0]["ts_ns"]
        lines = []
        dropped = self.dropped
        if dropped:
            lines.append(f"(... {dropped} earlier events overwritten)")
        for event in events:
            rel_ms = (event["ts_ns"] - origin) / 1e6
            detail = " ".join(f"{key}={value}" for key, value
                              in sorted(event["fields"].items()))
            parts = [f"+{rel_ms:9.3f}ms", f"pid={event['pid']}",
                     event["category"]]
            if event["message"]:
                parts.append(event["message"])
            if detail:
                parts.append(detail)
            lines.append(" ".join(parts))
        return "\n".join(lines)


#: the process-wide recorder the parallel layer writes into
FLIGHT_RECORDER = FlightRecorder()
