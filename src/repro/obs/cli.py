"""``python -m repro.obs`` — profile a join and print/export the report.

Three ways to describe the workload:

* ``--demo triangle`` / ``--demo job_light`` — built-in pinned datasets
  (the bench suite's triangle graph, or one JOB-light-style query over
  the synthetic IMDB catalog);
* ``--query "E1=E(a,b), ..." --relation E1=edges.csv ...`` — a query
  string plus CSV-backed relations (``repro.storage.csvio`` format; an
  alias may reuse another alias's file);
* ``--spec spec.json`` — a JSON file ``{"query": ..., "relations":
  {alias: csv_path}, "algorithm": ..., "engine": ..., "index": ...,
  "order": [...]}`` (flags override spec fields).

``--explain`` defaults the algorithm to ``unified`` so the printed tree
carries the per-stage section (algorithm/engine/order plus estimated vs
actual cardinalities for each stage).

By default the EXPLAIN ANALYZE text tree is printed; ``--json PATH``
writes the schema-validated profile JSON and ``--trace PATH`` the Chrome
``trace_event`` document (load it in ``chrome://tracing`` or Perfetto).

``--parallel K`` runs the workload sharded over K worker processes:
the text tree grows the per-shard/straggler section, ``--json`` exports
the :class:`~repro.obs.profile.ShardedJoinProfile` payload, and
``--trace`` the *merged* multi-pid Chrome trace with one row per worker.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="Profile a join (EXPLAIN ANALYZE) and export the report.",
    )
    workload = parser.add_argument_group("workload")
    workload.add_argument("--demo", choices=("triangle", "job_light"),
                          help="run a built-in demo workload")
    workload.add_argument("--query", help="query string, e.g. "
                          "'E1=E(a,b), E2=E(b,c), E3=E(c,a)'")
    workload.add_argument("--relation", action="append", default=[],
                          metavar="ALIAS=CSV",
                          help="bind an atom alias to a CSV file "
                               "(repeatable)")
    workload.add_argument("--spec", metavar="SPEC.json",
                          help="JSON spec with query/relations/options")
    execution = parser.add_argument_group("execution")
    execution.add_argument("--algorithm", default=None,
                           help="join algorithm (default: generic)")
    execution.add_argument("--engine", default=None,
                           choices=("tuple", "batch", "auto"),
                           help="Generic Join engine (default: tuple)")
    execution.add_argument("--index", default=None,
                           help="index structure (default: sonic)")
    execution.add_argument("--explain", action="store_true",
                           help="render the plan's stage tree (defaults "
                                "the algorithm to 'unified' so the hybrid "
                                "optimizer picks per-component stages)")
    execution.add_argument("--parallel", type=int, default=None, metavar="K",
                           help="shard across K worker processes; the "
                                "profile/trace exports become the sharded "
                                "variants (ShardedJoinProfile, merged "
                                "multi-pid Chrome trace)")
    output = parser.add_argument_group("output")
    output.add_argument("--json", metavar="PATH", dest="json_out",
                        help="write the profile JSON here")
    output.add_argument("--trace", metavar="PATH", dest="trace_out",
                        help="write the Chrome trace_event JSON here")
    output.add_argument("--quiet", action="store_true",
                        help="suppress the text tree (exports only)")
    return parser


def _demo_workload(which: str) -> tuple[str, dict, dict]:
    """(query, relations, default options) for a built-in demo."""
    if which == "triangle":
        from repro.data.graphs import random_edge_relation

        edges = random_edge_relation(300, 1800, seed=13)
        query = "E1=E(a,b), E2=E(b,c), E3=E(c,a)"
        return query, {"E1": edges, "E2": edges, "E3": edges}, {}
    # job_light: the largest 2-satellite query of the pinned workload
    from repro.data.imdb import job_light_queries, make_imdb

    catalog = make_imdb(2000, seed=13)
    item = max((q for q in job_light_queries(catalog, seed=13)
                if len(q.relations) == 3),
               key=lambda q: sum(len(r) for r in q.relations.values()))
    # the JoinQuery object, not str(): the display form (⋈) is not the
    # parseable comma syntax
    return item.query, dict(item.relations), {}


def _spec_workload(path: str) -> tuple[str, dict, dict]:
    from repro.storage.csvio import load_relation

    spec = json.loads(Path(path).read_text())
    if "query" not in spec or "relations" not in spec:
        raise SystemExit(f"{path}: spec needs 'query' and 'relations' keys")
    relations = {
        alias: load_relation(alias, csv_path)
        for alias, csv_path in spec["relations"].items()
    }
    options = {key: spec[key]
               for key in ("algorithm", "engine", "index", "order")
               if key in spec}
    return spec["query"], relations, options


def _flag_workload(args: argparse.Namespace) -> tuple[str, dict, dict]:
    from repro.storage.csvio import load_relation

    if not args.relation:
        raise SystemExit("--query needs at least one --relation ALIAS=CSV")
    paths: dict[str, str] = {}
    for binding in args.relation:
        alias, _, csv_path = binding.partition("=")
        if not alias or not csv_path:
            raise SystemExit(f"bad --relation {binding!r}; expected ALIAS=CSV")
        paths[alias] = csv_path
    loaded: dict[str, object] = {}
    relations = {}
    for alias, csv_path in paths.items():
        if csv_path not in loaded:
            loaded[csv_path] = load_relation(alias, csv_path)
        relations[alias] = loaded[csv_path]
    return args.query, relations, {}


def main(argv: "list[str] | None" = None) -> int:
    args = _build_parser().parse_args(argv)
    sources = [bool(args.demo), bool(args.query), bool(args.spec)]
    if sum(sources) != 1:
        _build_parser().print_usage(sys.stderr)
        print("error: give exactly one of --demo, --query, --spec",
              file=sys.stderr)
        return 2

    if args.demo:
        query, relations, options = _demo_workload(args.demo)
    elif args.spec:
        query, relations, options = _spec_workload(args.spec)
    else:
        query, relations, options = _flag_workload(args)

    if args.algorithm:
        options["algorithm"] = args.algorithm
    elif args.explain and "algorithm" not in options:
        # --explain is about the stage tree; unified plans are the ones
        # that carry one
        options["algorithm"] = "unified"
    if args.engine:
        options["engine"] = args.engine
    if args.index:
        options["index"] = args.index
    if args.parallel is not None:
        options["parallel"] = args.parallel

    from repro.joins.executor import join
    from repro.obs.profile import validate_profile

    result = join(query, relations, profile=True, **options)
    profile = result.profile
    payload = validate_profile(profile.as_dict())

    if args.json_out:
        Path(args.json_out).write_text(json.dumps(payload, indent=2) + "\n")
    if args.trace_out:
        Path(args.trace_out).write_text(
            json.dumps(profile.to_chrome_trace(), indent=2) + "\n")
    if not args.quiet:
        print(profile.render())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
