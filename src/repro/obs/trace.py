"""Span tracing with JSON and Chrome ``trace_event`` exporters.

A :class:`Tracer` records *spans* — named, nested intervals on the
monotonic clock — via a context-manager API::

    tracer = Tracer()
    with tracer.span("build_indexes"):
        with tracer.span("build_index", alias="E1"):
            adapter.build()

Spans use :meth:`repro.joins.results.Stopwatch.now_ns` as their clock —
the same ``time.perf_counter_ns`` source every join driver times its
phases with, so span durations and ``JoinMetrics`` timings are directly
comparable.  (The import is lazy to keep ``repro.obs`` import-cycle-free:
``joins`` imports ``obs`` at module level, not vice versa.)

Exports:

* :meth:`Tracer.as_dicts` — plain span dicts (microsecond timestamps),
  embedded in the :class:`~repro.obs.profile.JoinProfile` JSON;
* :meth:`Tracer.to_chrome` — a Chrome ``trace_event`` document (complete
  ``"X"`` events) loadable in ``chrome://tracing`` / Perfetto.

:data:`NULL_TRACER` is the disabled twin: ``span()`` hands back one
shared no-op context manager, so a disabled trace point costs a method
call and nothing else.

A tracer shared across threads stays coherent: the *nesting stack* is
thread-local (span depth is a property of one thread's call stack, so
two threads tracing concurrently each see their own nesting), while the
finished-span list is appended under a small lock — one locked append
per span close, never per tuple.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path


class _SpanHandle:
    """One live span; records itself on the tracer at ``__exit__``."""

    __slots__ = ("_tracer", "name", "args", "_start", "_depth")

    def __init__(self, tracer: "Tracer", name: str, args: dict):
        self._tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        stack = tracer._stack
        self._depth = len(stack)
        stack.append(self.name)
        self._start = tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        end = tracer._clock()
        tracer._stack.pop()
        tracer._record(self.name, self._start, end - self._start,
                       self._depth, self.args)
        return False


class Tracer:
    """Collects nested spans against the shared monotonic clock."""

    enabled = True

    __slots__ = ("_spans", "_local", "_clock", "_origin", "_lock")

    def __init__(self, clock=None):
        if clock is None:
            from repro.joins.results import Stopwatch
            clock = Stopwatch.now_ns
        self._clock = clock
        self._origin: int = clock()
        self._lock = threading.Lock()
        #: finished spans as (name, start_ns, duration_ns, depth, args)
        self._spans: list[tuple] = []   # repro: shared[lock=_lock]
        #: per-thread nesting stacks (depth belongs to one call stack)
        self._local = threading.local()

    @property
    def _stack(self) -> list:
        """This thread's nesting stack (created empty on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def origin_ns(self) -> int:
        """The clock reading at construction — the zero of every exported
        timestamp.  Cross-process trace assembly
        (:mod:`repro.obs.distributed`) rebases worker spans against the
        parent tracer's origin."""
        return self._origin

    # ------------------------------------------------------------------
    def span(self, name: str, **args) -> _SpanHandle:
        """A context manager timing one named span; ``args`` is attached
        verbatim to the exported event."""
        return _SpanHandle(self, name, args)

    def add_span(self, name: str, start_ns: int, duration_ns: int,
                 **args) -> None:
        """Record an already-measured interval as a span.

        The escape hatch for loops that time with a plain
        :class:`~repro.joins.results.Stopwatch` and only want to pay the
        span bookkeeping when tracing is on (the ``tracer.enabled``
        pattern RA601 checks for).
        """
        self._record(name, start_ns, duration_ns, len(self._stack), args)

    def _record(self, name: str, start_ns: int, duration_ns: int,
                depth: int, args: dict) -> None:
        with self._lock:
            self._spans.append((name, start_ns, duration_ns, depth, args))

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def export_spans(self) -> list[tuple]:
        """Finished spans in raw clock units: ``(name, start_ns,
        duration_ns, depth, args)`` tuples, start-ordered.

        This is the wire format shard workers ship over the result pipe:
        nanosecond timestamps on the *worker's* clock, so the parent can
        rebase them with a measured clock offset instead of the lossy
        µs-relative form :meth:`as_dicts` produces.
        """
        with self._lock:
            finished = list(self._spans)
        return [(name, start, duration, depth, dict(args))
                for name, start, duration, depth, args
                in sorted(finished, key=lambda s: s[1])]

    def as_dicts(self) -> list[dict]:
        """Finished spans, start-ordered, timestamps in µs from the
        tracer's construction instant."""
        origin = self._origin
        with self._lock:
            finished = list(self._spans)
        spans = sorted(finished, key=lambda s: s[1])
        return [
            {
                "name": name,
                "ts_us": round((start - origin) / 1000.0, 3),
                "dur_us": round(duration / 1000.0, 3),
                "depth": depth,
                "args": dict(args),
            }
            for name, start, duration, depth, args in spans
        ]

    def to_chrome(self) -> dict:
        """A Chrome ``trace_event`` JSON document (Perfetto-loadable)."""
        events = [
            {
                "name": span["name"],
                "ph": "X",
                "ts": span["ts_us"],
                "dur": span["dur_us"],
                "pid": 1,
                "tid": 1,
                "cat": "repro",
                "args": span["args"],
            }
            for span in self.as_dicts()
        ]
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome(self, path: "str | Path") -> Path:
        """Serialize :meth:`to_chrome` to ``path``; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome(), indent=2) + "\n")
        return path


class _NullSpan:
    """The shared no-op context manager handed out by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """The disabled tracer: records nothing, allocates nothing per span."""

    enabled = False

    __slots__ = ()

    def __init__(self):
        self._clock = None
        self._origin = 0
        self._lock = threading.Lock()
        self._spans = []
        self._local = threading.local()

    def span(self, name: str, **args) -> _NullSpan:
        return _NULL_SPAN

    def add_span(self, name: str, start_ns: int, duration_ns: int,
                 **args) -> None:
        pass


#: the shared disabled tracer
NULL_TRACER = NullTracer()
