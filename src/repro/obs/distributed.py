"""Cross-process trace propagation and sharded-profile assembly.

PR 8's multiprocess sharding ran the full staged pipeline inside each
worker but let the observability die at the pipe: only scalar counters
folded back.  This module closes the loop:

* a :class:`TraceContext` travels with every shard task — a trace id,
  the parent span it hangs under, and the parent-clock timestamp of
  dispatch, so a worker's response can be correlated and clock-aligned;
* :func:`calibrate_clock_offset` estimates the worker→parent clock
  offset NTP-style from the four stamps around one task round trip
  (parent issue ``T0``, worker receive ``R0``, worker respond ``R1``,
  parent collect ``T1``): ``offset = ((T0-R0) + (T1-R1)) / 2``.  Both
  sides read :meth:`~repro.joins.results.Stopwatch.now_ns`
  (``CLOCK_MONOTONIC``), which on Linux is system-wide but not
  *guaranteed* comparable across processes — the calibration makes the
  merged timeline robust instead of hopeful, and the measured offset is
  kept in the profile so skeptics can audit it;
* :func:`rebase_spans` maps a worker's raw nanosecond spans onto the
  parent tracer's origin, producing the same µs-relative dicts
  :meth:`~repro.obs.trace.Tracer.as_dicts` emits;
* :func:`build_sharded_profile` folds the per-shard
  :class:`~repro.obs.profile.JoinProfile` payloads into one
  :class:`~repro.obs.profile.ShardedJoinProfile` — top-level levels
  aggregated across shards, per-level min/median/max and straggler
  ratios, shard-balance stats, and every worker's spans rebased onto
  the parent timeline so
  :meth:`~repro.obs.profile.ShardedJoinProfile.to_chrome_trace` renders
  partition → fan-out → per-shard build/probe → merge as one Perfetto
  document with real per-worker pid rows.

Import discipline: like the rest of ``repro.obs``, nothing from
``repro.joins``/``repro.engine`` is imported at module level — the
parallel layer imports this module, never the reverse.
"""

from __future__ import annotations

import json
import os
import statistics
import uuid
from dataclasses import dataclass
from pathlib import Path

from repro.core.envflag import resolve_str
from repro.obs.profile import (
    LevelProfile,
    ShardedJoinProfile,
    shard_distribution,
    straggler_ratio,
)


# ----------------------------------------------------------------------
# Trace propagation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceContext:
    """What one shard task carries so its worker can join the trace.

    ``issued_ns`` is the parent clock at dispatch (calibration stamp
    ``T0``); ``trace_id`` names the execution (one id per fan-out) and
    ``parent_span`` the span the worker's activity nests under.
    """

    trace_id: str
    parent_span: str
    issued_ns: int

    @classmethod
    def create(cls, parent_span: str = "shard_fanout") -> "TraceContext":
        from repro.joins.results import Stopwatch

        return cls(trace_id=uuid.uuid4().hex[:16], parent_span=parent_span,
                   issued_ns=Stopwatch.now_ns())

    def to_wire(self) -> dict:
        """The picklable form shipped inside the task dict."""
        return {"trace_id": self.trace_id, "parent_span": self.parent_span,
                "issued_ns": self.issued_ns}

    @classmethod
    def from_wire(cls, wire: "dict | None") -> "TraceContext | None":
        if not wire:
            return None
        return cls(trace_id=wire["trace_id"],
                   parent_span=wire["parent_span"],
                   issued_ns=wire["issued_ns"])


def calibrate_clock_offset(issued_ns: "int | None",
                           received_ns: "int | None",
                           responded_ns: "int | None",
                           collected_ns: "int | None") -> int:
    """The estimated ``parent_clock - worker_clock`` offset in ns.

    The classic two-sample (NTP) estimate over one request/response
    round trip; symmetric transport delay cancels.  Any missing stamp
    degrades to 0 (same-clock assumption — correct for ``fork`` on
    Linux, harmless for display elsewhere).
    """
    stamps = (issued_ns, received_ns, responded_ns, collected_ns)
    if any(stamp is None for stamp in stamps):
        return 0
    return ((issued_ns - received_ns) + (collected_ns - responded_ns)) // 2


def rebase_spans(raw_spans, offset_ns: int, origin_ns: int) -> list[dict]:
    """Worker spans (raw ``(name, start_ns, dur_ns, depth, args)``
    tuples on the worker clock) as parent-relative µs span dicts."""
    rebased = []
    for name, start_ns, duration_ns, depth, args in raw_spans:
        rebased.append({
            "name": name,
            "ts_us": round((start_ns + offset_ns - origin_ns) / 1000.0, 3),
            "dur_us": round(duration_ns / 1000.0, 3),
            "depth": depth,
            "args": dict(args),
        })
    return rebased


# ----------------------------------------------------------------------
# Sharded-profile assembly
# ----------------------------------------------------------------------
def _aggregate_levels(per_shard_levels: "list[list[dict]]",
                      ) -> list[LevelProfile]:
    """Per-shard level trees summed position-wise into parent levels.

    Every shard runs the same plan, so level position ``i`` means the
    same attribute (or binary stage) in every tree; a shard whose tree
    is shorter (it emptied out early) simply contributes nothing to the
    deeper levels.
    """
    depth = max((len(levels) for levels in per_shard_levels), default=0)
    merged: list[LevelProfile] = []
    for position in range(depth):
        slices = [levels[position] for levels in per_shard_levels
                  if position < len(levels)]
        template = slices[0]
        seed_counts: dict[str, int] = {}
        for level in slices:
            for alias, count in level.get("seed_counts", {}).items():
                seed_counts[alias] = seed_counts.get(alias, 0) + count
        merged.append(LevelProfile(
            label=template["label"],
            participants=tuple(template["participants"]),
            candidates=sum(level["candidates"] for level in slices),
            survivors=sum(level["survivors"] for level in slices),
            seconds=sum(level["seconds"] for level in slices),
            cumulative_seconds=sum(level["cumulative_seconds"]
                                   for level in slices),
            seed_counts=seed_counts,
            descends=sum(level["descends"] for level in slices),
            ascends=sum(level["ascends"] for level in slices),
        ))
    return merged


def _level_stats(per_shard_levels: "list[list[dict]]") -> list[dict]:
    """min/median/max/straggler summary per level across shards."""
    depth = max((len(levels) for levels in per_shard_levels), default=0)
    stats = []
    for position in range(depth):
        slices = [levels[position] for levels in per_shard_levels
                  if position < len(levels)]
        seconds = [level["seconds"] for level in slices]
        stats.append({
            "label": slices[0]["label"],
            "seconds": shard_distribution(seconds),
            "survivors": shard_distribution(
                [level["survivors"] for level in slices]),
            "straggler_ratio": straggler_ratio(seconds),
        })
    return stats


def _shard_balance(shards: "list[dict]") -> dict:
    """Emitted-count skew and wall-clock straggler stats over shards."""
    executed = [entry for entry in shards if not entry["skipped"]]
    emitted = [entry["count"] for entry in executed]
    totals = [entry["build_s"] + entry["probe_s"] for entry in executed]
    straggler_shard = None
    if len(executed) > 1:
        straggler_shard = max(executed,
                              key=lambda e: e["build_s"] + e["probe_s"],
                              )["shard"]
    mean_emitted = statistics.fmean(emitted) if emitted else 0.0
    skew = (max(emitted) / mean_emitted
            if emitted and mean_emitted > 0 else 1.0)
    return {
        "emitted": shard_distribution(emitted),
        "total_s": {key: value
                    for key, value in shard_distribution(totals).items()
                    if key != "total"},
        "straggler_shard": straggler_shard,
        "straggler_ratio": straggler_ratio(totals),
        "skew": skew,
    }


def build_sharded_profile(*, query: str, plan, result, observer,
                          shard_results: "list[dict]",
                          ) -> ShardedJoinProfile:
    """Fold parent observer + per-shard responses into one profile.

    ``shard_results`` is the shard-ordered response list the runner
    collected: executed entries carry ``profile``/``spans``/``pid`` and
    the four calibration stamps; skipped entries are the synthetic
    empty-shard placeholders.
    """
    metrics = result.metrics
    origin_ns = observer.tracer.origin_ns
    shards: list[dict] = []
    per_shard_levels: list[list[dict]] = []
    for response in shard_results:
        if response.get("skipped"):
            shards.append({"shard": response["shard"], "skipped": True,
                           "count": 0, "build_s": 0.0, "probe_s": 0.0})
            continue
        clock = response.get("clock") or {}
        offset = calibrate_clock_offset(
            clock.get("issued_ns"), clock.get("received_ns"),
            clock.get("responded_ns"), response.get("collected_ns"))
        shard_profile = response.get("profile") or {}
        levels = shard_profile.get("levels", [])
        per_shard_levels.append(levels)
        shards.append({
            "shard": response["shard"],
            "skipped": False,
            "pid": response.get("pid"),
            "trace_id": response.get("trace_id"),
            "count": response["count"],
            "build_s": response["build_s"],
            "probe_s": response["probe_s"],
            "clock_offset_ns": offset,
            "counters": dict(response.get("counters") or {}),
            "levels": levels,
            "spans": rebase_spans(response.get("spans") or (),
                                  offset, origin_ns),
        })

    levels = _aggregate_levels(per_shard_levels)

    # parity with build_profile: the parent registry carries the same
    # aggregate counters a single-process profiled run would
    registry = observer.metrics
    for level in levels:
        registry.inc("level.candidates", level.candidates)
        registry.inc("level.survivors", level.survivors)
        registry.inc("cursor.descend", level.descends)
        registry.inc("cursor.ascend", level.ascends)
    registry.inc("join.emitted", metrics.result_count)
    registry.inc("probe.lookups", metrics.lookups)

    optimizer = None
    if plan.choice is not None:
        choice = plan.choice
        peak = max((level.survivors for level in levels), default=0)
        optimizer = {
            "algorithm": choice.algorithm,
            "reason": choice.reason,
            "estimated": {
                "agm_bound": choice.agm_bound,
                "binary_peak_intermediates": choice.binary_estimate,
            },
            "actual": {
                "results": metrics.result_count,
                "peak_level_cardinality": peak,
                "intermediate_tuples": metrics.intermediate_tuples,
            },
        }

    snapshot = registry.as_dict()
    return ShardedJoinProfile(
        query=query,
        algorithm=metrics.algorithm,
        engine=plan.engine or None,
        index=metrics.index or "none",
        order=tuple(result.attributes),
        result_count=metrics.result_count,
        build_seconds=metrics.build_seconds,
        probe_seconds=metrics.probe_seconds,
        levels=levels,
        optimizer=optimizer,
        counters=snapshot["counters"],
        histograms=snapshot["histograms"],
        build_breakdown={alias: ns * 1e-9
                         for alias, ns in observer.build_ns.items()},
        spans=observer.tracer.as_dicts(),
        workers=plan.sharding.workers,
        partition_attribute=plan.sharding.attribute,
        scheme=plan.sharding.scheme,
        parent_pid=os.getpid(),
        shards=shards,
        level_stats=_level_stats(per_shard_levels),
        balance=_shard_balance(shards),
    )


def attach_sharded_profile(query, result, observer, plan,
                           shard_results: "list[dict]",
                           trace_out: "str | None" = None):
    """The sharded twin of :func:`repro.joins.executor.attach_profile`.

    Folds the fan-out into ``result.profile`` (enabled observers only)
    and writes the *merged* multi-pid Chrome trace when
    ``trace_out``/``REPRO_TRACE_OUT`` asks.
    """
    if not observer.enabled:
        return result
    profile = build_sharded_profile(
        query=str(query), plan=plan, result=result, observer=observer,
        shard_results=shard_results)
    result.profile = profile
    out = resolve_str(trace_out, "REPRO_TRACE_OUT")
    if out:
        Path(out).write_text(
            json.dumps(profile.to_chrome_trace(), indent=2) + "\n")
    return result
