"""Exception hierarchy for the SonicJoin reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish configuration mistakes from data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A structure or algorithm was configured with invalid parameters.

    Examples: a Sonic index with a non-power-of-two capacity, a bucket size
    of zero, or an index asked to hold wider tuples than it was built for.
    """


class SchemaError(ReproError):
    """A relation or query references attributes inconsistently.

    Raised when tuples do not match the declared arity, when a query names
    an attribute that no relation provides, or when a total order cannot be
    aligned with a relation's schema.
    """


class CapacityError(ReproError):
    """A fixed-capacity structure ran out of space.

    Sonic levels are single-allocation by design (§3.1 of the paper); when
    the caller under-provisions them, the insert fails loudly instead of
    silently rehashing.
    """


class QueryError(ReproError):
    """A join query is malformed or unsupported.

    Examples: an empty query, a query whose hypergraph has no fractional
    edge cover (an attribute appearing in no relation), or a datalog string
    that does not parse.
    """


class PlanValidationError(QueryError):
    """A query plan failed static validation before execution.

    Raised by :func:`repro.analysis.plancheck.check_plan` (and by the
    executor in debug mode) when a plan-level invariant is broken: an
    attribute covered by no atom, a total order that is not a permutation
    of the query attributes, an infeasible fractional edge cover, or a
    relation whose schema disagrees with its atom.  Subclasses
    :class:`QueryError` so existing callers that catch query problems
    also catch plan problems.
    """


class ExecutionError(ReproError):
    """A join failed at execution time, outside the caller's plan inputs.

    Raised by the multiprocess sharded executor (:mod:`repro.parallel`)
    when a shard worker dies, times out, or reports a task failure — the
    worker-side traceback rides along in the message.  Distinct from
    :class:`ConfigurationError`: the plan was valid, the run broke.

    ``flight_log`` carries the parent-side flight-recorder dump
    (:mod:`repro.obs.flightrec`) when the parallel layer raised the
    error: the last N pool lifecycle events, oldest first, for
    post-mortem context the message alone cannot give.
    """

    #: flight-recorder tail attached by the parallel layer, when any
    flight_log: "str | None" = None


class UnsupportedOperationError(ReproError):
    """An index was asked for an operation it does not support.

    Mirrors the paper's evaluation (§5.4): e.g. SuRF supports point lookups
    and approximate prefix counts but not exact prefix enumeration; plain
    hash sets support no prefix operations at all.
    """
