"""Batch-at-a-time Generic Join — vectorized candidate intersection.

:class:`~repro.joins.generic_join.GenericJoin` is worst-case optimal but
tuple-at-a-time: every candidate value costs a handful of interpreted
method calls (child walk step, one ``try_descend`` per participating atom,
the matching ``ascend``\\ s), so interpreter dispatch dominates long before
the paper's per-level intersection costs become measurable.  Free Join
(Wang et al., SIGMOD'23) showed that WCOJ trie joins admit *vectorized*
evaluation with large constant-factor wins; this driver is that execution
model over the same Alg. 1 structure:

1. pull every participating atom's candidate values as **one sorted
   array** (:meth:`~repro.indexes.base.BatchCursor.candidates` — memoized
   per prefix, so revisited nodes are dict hits);
2. seed from the smallest array — the Alg. 1 line 9/10 size comparison,
   evaluated on the exact residual candidate counts instead of the tuple
   driver's advisory subtree counts;
3. intersect: each other array filters the seed with **one** vectorized
   binary-search membership test — Alg. 1 line 15 batched, with early
   exit when the surviving mask empties;
4. recurse per surviving value; at the last attribute the whole survivor
   array is emitted in one call.

Per *batch* the driver executes O(participants) Python operations instead
of O(candidates x participants) — the intersection inner loop runs inside
numpy kernels.  Worst-case optimality is untouched: the candidate sets and
intersection discipline are identical to the tuple driver, only their
evaluation is batched.

Exactness follows the same contract as the tuple driver: batch kernels may
report rare inner-depth false positives (Sonic's patch ambiguity, §3.3),
but are payload-exact at each atom's final depth, and a false-positive
prefix yields empty candidate sets below — so emitted results are always
exact and the two engines agree tuple-for-tuple (property-tested in
``tests/joins/test_batch_vs_tuple.py``).

The driver is index-agnostic: atoms whose indexes lack a native kernel
(``SUPPORTS_BATCH = False``) join through the per-value fallback shim on
the same level playing field.  ``joins.executor.join(engine=...)`` selects
between the two drivers; ``engine="auto"`` requires every adapter to
advertise a native kernel.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.adapter import IndexAdapter
from repro.errors import QueryError
from repro.indexes.base import membership_mask
from repro.joins.results import JoinMetrics, JoinResult, Stopwatch, make_sink
from repro.obs.observer import NULL_OBSERVER
from repro.planner.qptree import connectivity_order
from repro.planner.query import JoinQuery


class GenericJoinBatch:
    """Generic Join over pre-built index adapters, batch-at-a-time.

    Construction mirrors :class:`~repro.joins.generic_join.GenericJoin`
    (same validation, same total order, same ``dynamic_seed`` ablation
    knob); only the execution model differs.
    """

    def __init__(self, query: JoinQuery, adapters: dict[str, IndexAdapter],
                 order: Sequence[str] | None = None,
                 dynamic_seed: bool = True, obs=None):
        missing = [a.alias for a in query.atoms if a.alias not in adapters]
        if missing:
            raise QueryError(f"no index adapter for atoms {missing}")
        self.query = query
        self.adapters = adapters
        self.order: tuple[str, ...] = tuple(order) if order else connectivity_order(query)
        if set(self.order) != set(query.attributes):
            raise QueryError(
                f"total order {self.order} does not cover query attributes "
                f"{query.attributes}"
            )
        self.dynamic_seed = dynamic_seed
        #: atom aliases in a fixed sequence; cursor/prefix state is kept in
        #: parallel lists indexed by this sequence
        self._aliases: tuple[str, ...] = tuple(a.alias for a in query.atoms)
        alias_id = {alias: i for i, alias in enumerate(self._aliases)}
        #: per attribute depth: ids of the atoms binding it
        self._participants: list[list[int]] = [
            [alias_id[atom.alias] for atom in query.atoms_with(attribute)]
            for attribute in self.order
        ]
        #: static seed per depth, as a *position* into the participant
        #: list (by base relation size); used when dynamic selection is
        #: ablated
        self._static_pos: list[int] = [
            min(range(len(ids)),
                key=lambda p: len(adapters[self._aliases[ids[p]]].relation))
            for ids in self._participants
        ]
        #: per-depth scratch lists (saved participant prefixes, fetched
        #: candidate arrays), preallocated so the recursive probe path
        #: never builds fresh containers
        self._saved: list[list] = [[None] * len(ids) for ids in self._participants]
        self._arrays: list[list] = [[None] * len(ids) for ids in self._participants]
        self._cursors: list = []
        self._prefixes: list = []
        self.metrics = JoinMetrics(algorithm="generic_join_batch")
        self.obs = obs if obs is not None else NULL_OBSERVER

    # ------------------------------------------------------------------
    def run(self, materialize: bool = False) -> JoinResult:
        """Execute the join phase (indexes must already be built)."""
        sink = make_sink(materialize)
        watch = Stopwatch()
        self._cursors = [self.adapters[alias].batch_cursor()
                         for alias in self._aliases]
        self._prefixes = [()] * len(self._aliases)
        binding: list = []
        obs = self.obs
        if obs.enabled:
            # batch cursors carry their own counters (memo hits, array
            # sizes); point them at this run's registry
            for cursor in self._cursors:
                cursor.attach_metrics(obs.metrics)
            stats = obs.init_levels(
                self.order,
                [[self._aliases[i] for i in ids] for ids in self._participants],
            )
            with obs.tracer.span("probe", algorithm="generic_join_batch",
                                 engine="batch"):
                self._join_level_profiled(0, binding, sink, stats)
        else:
            self._join_level(0, binding, sink)
        self.metrics.probe_seconds += watch.lap()
        self.metrics.result_count = sink.count
        return JoinResult(attributes=self.order, sink=sink, metrics=self.metrics)

    # ------------------------------------------------------------------
    def _join_level(self, depth: int, binding: list, sink) -> None:
        participants = self._participants[depth]
        cursors = self._cursors
        prefixes = self._prefixes
        self.metrics.lookups += len(participants)

        if len(participants) == 1:
            participant = participants[0]
            survivors = cursors[participant].candidates(prefixes[participant])
            if survivors.size == 0:
                return
        else:
            arrays = self._arrays[depth]
            for position, participant in enumerate(participants):
                arrays[position] = cursors[participant].candidates(
                    prefixes[participant])
            seed_pos = (self._smallest(arrays) if self.dynamic_seed
                        else self._static_pos[depth])
            values = arrays[seed_pos]
            if values.size == 0:
                return
            # the intersection step (Alg. 1 line 15), one vectorized
            # membership test per non-seed array; a rare inner-depth false
            # positive surviving here dies below, when its now-bound
            # prefix turns up empty at the atom's exact final depth
            mask = None
            for position, array in enumerate(arrays):
                if position == seed_pos:
                    continue
                probe = membership_mask(array, values)
                mask = probe if mask is None else mask & probe
                if not mask.any():
                    return
            survivors = values[mask]
            if survivors.size == 0:
                return
        count = int(survivors.size)
        self.metrics.intermediate_tuples += count

        if depth + 1 == len(self.order):
            # full bindings: one batch emit for the whole survivor vector
            # (.tolist() converts numpy scalars back to Python values so
            # results are indistinguishable from the tuple engine's)
            sink.emit_suffixes(tuple(binding), survivors.tolist())
            return

        saved = self._saved[depth]
        for position, participant in enumerate(participants):
            saved[position] = prefixes[participant]
        for value in survivors.tolist():
            for position, participant in enumerate(participants):
                # extending the bound prefix IS the per-binding work here —
                # one small tuple per (participant, binding), not hoistable
                prefixes[participant] = saved[position] + (value,)  # repro: noqa[RA501]
            binding.append(value)
            self._join_level(depth + 1, binding, sink)
            binding.pop()
        for position, participant in enumerate(participants):
            prefixes[participant] = saved[position]

    def _join_level_profiled(self, depth: int, binding: list, sink,
                             stats: list) -> None:
        """The instrumented twin of :meth:`_join_level`.

        Same join logic plus per-level accumulation into ``stats[depth]``:
        ``candidates`` counts the *seed array* sizes (the values put up
        for intersection), ``survivors`` the values emerging from the
        vectorized membership tests — identical to the tuple engine's
        survivor counts by construction.  ``time_ns`` is inclusive and is
        flushed on every return path.  Keep the twins in sync.
        """
        st = stats[depth]
        t0 = Stopwatch.now_ns()
        participants = self._participants[depth]
        cursors = self._cursors
        prefixes = self._prefixes
        self.metrics.lookups += len(participants)

        if len(participants) == 1:
            participant = participants[0]
            survivors = cursors[participant].candidates(prefixes[participant])
            st.seed_counts[self._aliases[participant]] += 1
            st.candidates += int(survivors.size)
            if survivors.size == 0:
                st.time_ns += Stopwatch.now_ns() - t0
                return
        else:
            arrays = self._arrays[depth]
            for position, participant in enumerate(participants):
                arrays[position] = cursors[participant].candidates(
                    prefixes[participant])
            seed_pos = (self._smallest(arrays) if self.dynamic_seed
                        else self._static_pos[depth])
            values = arrays[seed_pos]
            st.seed_counts[self._aliases[participants[seed_pos]]] += 1
            st.candidates += int(values.size)
            if values.size == 0:
                st.time_ns += Stopwatch.now_ns() - t0
                return
            mask = None
            for position, array in enumerate(arrays):
                if position == seed_pos:
                    continue
                probe = membership_mask(array, values)
                mask = probe if mask is None else mask & probe
                if not mask.any():
                    st.time_ns += Stopwatch.now_ns() - t0
                    return
            survivors = values[mask]
            if survivors.size == 0:
                st.time_ns += Stopwatch.now_ns() - t0
                return
        count = int(survivors.size)
        st.survivors += count
        self.metrics.intermediate_tuples += count

        if depth + 1 == len(self.order):
            sink.emit_suffixes(tuple(binding), survivors.tolist())
            st.time_ns += Stopwatch.now_ns() - t0
            return

        saved = self._saved[depth]
        for position, participant in enumerate(participants):
            saved[position] = prefixes[participant]
        for value in survivors.tolist():
            for position, participant in enumerate(participants):
                prefixes[participant] = saved[position] + (value,)  # repro: noqa[RA501]
            binding.append(value)
            self._join_level_profiled(depth + 1, binding, sink, stats)
            binding.pop()
        for position, participant in enumerate(participants):
            prefixes[participant] = saved[position]
        st.time_ns += Stopwatch.now_ns() - t0

    @staticmethod
    def _smallest(arrays: list) -> int:
        """Position of the smallest candidate array — the Alg. 1 line 9/10
        size comparison, on exact residual counts under the current
        binding (the arrays are already in hand, so the comparison is
        free; the tuple driver pays an advisory ``count()`` probe per
        participant for the same decision)."""
        best, best_size = 0, arrays[0].size
        for position in range(1, len(arrays)):
            size = arrays[position].size
            if size < best_size:
                best, best_size = position, size
        return best
