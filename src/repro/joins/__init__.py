"""Join algorithms: Generic Join, binary pipeline, Hash-Trie Join, LFTJ."""

from repro.joins.batch import GenericJoinBatch
from repro.joins.binary import BinaryHashJoin
from repro.joins.executor import (
    ALGORITHMS,
    ENGINES,
    build_adapters,
    join,
    resolve_relations,
    triangle_count,
)
from repro.joins.generic_join import GenericJoin
from repro.joins.hashtrie_join import HashTrieJoin
from repro.joins.leapfrog import LeapfrogTrieJoin
from repro.joins.recursive import RecursiveJoin
from repro.joins.results import (
    CountingSink,
    JoinMetrics,
    JoinResult,
    MaterializingSink,
    ResultSink,
)

__all__ = [
    "ALGORITHMS",
    "BinaryHashJoin",
    "CountingSink",
    "ENGINES",
    "GenericJoin",
    "GenericJoinBatch",
    "HashTrieJoin",
    "JoinMetrics",
    "JoinResult",
    "LeapfrogTrieJoin",
    "MaterializingSink",
    "RecursiveJoin",
    "ResultSink",
    "build_adapters",
    "join",
    "resolve_relations",
    "triangle_count",
]
