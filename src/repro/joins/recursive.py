"""The Recursive Join — the paper's Algorithm 1, faithfully (§2.3.2).

Ngo, Porat, Ré and Rudra's original worst-case optimal join (NPRR [38],
generalized in [39]) decomposes by *relations*, not attributes:

1. base case — one attribute left, or some relation covers the whole
   remaining universe: intersect the (projected, filtered) relations;
2. otherwise pick an edge ``f`` (the paper wants a suffix of γ; we take
   the edge whose attributes sit deepest in the total order), split the
   universe into ``f' = V \\ f`` and ``f``, and solve the ``f'``
   sub-problem recursively;
3. for every sub-result ``t``, Alg. 1 line 10 applies the AGM-guided
   branch test: with cover weight ``x_f < 1`` and

   .. math:: |R_f| \\ge \\prod_{e \\in E_2 \\setminus f} |R_e[t]|^{1/(1-x_e)}

   the ``f``-side sub-problem (with rescaled weights ``x_e/(1-x_e)``) is
   solved recursively and joined through prefix lookups on ``R_f[t]``;
   otherwise the algorithm scans ``R_f[t]`` directly and filters each
   tuple against the other relations (lines 13–16) — enumerating the
   *smaller* side either way, which is exactly what makes NPRR meet the
   AGM bound.

This driver evaluates over materialized sub-relations (bindings filter
``R_e`` into ``R_e[t]`` via per-edge hash maps), trading memory for
clarity; it exists for algorithmic fidelity and cross-validation — the
production path is the cursor-based :class:`~repro.joins.generic_join.
GenericJoin`, which is the attribute-at-a-time specialization of this
algorithm [39].
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import QueryError
from repro.joins.results import JoinMetrics, JoinResult, Stopwatch, make_sink
from repro.planner.agm import fractional_cover
from repro.planner.hypergraph import Hypergraph
from repro.planner.qptree import connectivity_order
from repro.planner.query import JoinQuery
from repro.storage.relation import Relation


class _Edge:
    """One atom's materialized data plus filter indexes."""

    __slots__ = ("alias", "attributes", "rows")

    def __init__(self, alias: str, attributes: tuple[str, ...],
                 rows: frozenset):
        self.alias = alias
        self.attributes = attributes
        self.rows = rows

    def filtered(self, binding: dict) -> "_Edge":
        """``R_e[t]``: rows matching ``binding`` on shared attributes."""
        shared = [i for i, a in enumerate(self.attributes) if a in binding]
        if not shared:
            return self
        wanted = tuple(binding[self.attributes[i]] for i in shared)
        rows = frozenset(
            row for row in self.rows
            if tuple(row[i] for i in shared) == wanted
        )
        return _Edge(self.alias, self.attributes, rows)

    def project_values(self, attribute: str) -> set:
        position = self.attributes.index(attribute)
        return {row[position] for row in self.rows}


class RecursiveJoin:
    """Alg. 1 over materialized relations (reference implementation)."""

    def __init__(self, query: JoinQuery, relations: dict[str, Relation],
                 order: Sequence[str] | None = None,
                 edges: "dict[str, frozenset] | None" = None):
        missing = [a.alias for a in query.atoms if a.alias not in relations]
        if missing:
            raise QueryError(f"no relation bound for atoms {missing}")
        self.query = query
        self.order: tuple[str, ...] = tuple(order) if order else connectivity_order(query)
        self._rank = {a: i for i, a in enumerate(self.order)}
        self.metrics = JoinMetrics(algorithm="recursive_join", index="hashmap")
        watch = Stopwatch()
        prebuilt = edges is not None
        if prebuilt:
            # the engine's prepared path: frozen row sets already
            # materialized (and possibly cache-shared); build_seconds
            # stays zero — prepare owns that accounting
            self._edges = [_Edge(atom.alias, atom.attributes,
                                 edges[atom.alias])
                           for atom in query.atoms]
        else:
            self._edges = [
                _Edge(atom.alias, atom.attributes,
                      frozenset(relations[atom.alias].rows))
                for atom in query.atoms
            ]
        hypergraph = Hypergraph.from_query(query)
        cover = fractional_cover(
            hypergraph, {alias: len(relations[alias]) for alias in relations})
        self._weights = {atom.alias: max(cover.weight(atom.alias), 1e-9)
                         for atom in query.atoms}
        if not prebuilt:
            self.metrics.build_seconds += watch.lap()

    # ------------------------------------------------------------------
    def run(self, materialize: bool = False) -> JoinResult:
        """Execute Alg. 1 and return the (counted or materialized) result."""
        sink = make_sink(materialize)
        watch = Stopwatch()
        universe = [a for a in self.order if a in self.query.attributes]
        results = self._recurse(tuple(universe), self._edges,
                                dict(self._weights))
        for binding in results:
            sink.emit(tuple(binding[a] for a in self.order))
        self.metrics.probe_seconds += watch.lap()
        self.metrics.result_count = sink.count
        return JoinResult(attributes=self.order, sink=sink,
                          metrics=self.metrics)

    # ------------------------------------------------------------------
    def _recurse(self, universe: tuple[str, ...], edges: list[_Edge],
                 weights: dict[str, float]) -> list[dict]:
        """Alg. 1 body: bindings over ``universe`` satisfying all edges."""
        live = [e for e in edges if set(e.attributes) & set(universe)]
        if not live:
            return [{}]

        covering = [e for e in live if set(universe) <= set(e.attributes)]
        if len(universe) == 1 or covering:
            return self._base_case(universe, live)

        # pick f: the edge whose attribute set sits deepest in the total
        # order (the closest realizable analogue of "a suffix of γ")
        f = max(live, key=lambda e: min(self._rank[a] for a in e.attributes
                                        if a in universe))
        f_attrs = tuple(a for a in universe if a in f.attributes)
        f_prime = tuple(a for a in universe if a not in f.attributes)
        if not f_prime:
            # f covers the whole universe — handled by the base case above,
            # but guard against pathological picks
            return self._base_case(universe, live)

        e1 = [e for e in live if set(e.attributes) & set(f_prime)]
        e2 = [e for e in live if set(e.attributes) & set(f_attrs)]
        x_f = weights.get(f.alias, 1.0)

        results: list[dict] = []
        for t in self._recurse(f_prime, [e for e in e1 if e.alias != f.alias],
                               weights):
            self.metrics.intermediate_tuples += 1
            filtered = {e.alias: e.filtered(t) for e in e2}
            others = [filtered[e.alias] for e in e2 if e.alias != f.alias]
            f_t = filtered.get(f.alias, f).filtered(t)

            if x_f < 1.0 and others and self._prefer_subproblem(
                    f_t, others, weights):
                # line 11: solve the f-side sub-problem with rescaled
                # weights, then prefix-lookup each t' in R_f[t]
                rescaled = {
                    e.alias: weights.get(e.alias, 1.0)
                    / max(1.0 - weights.get(e.alias, 1.0), 1e-9)
                    for e in others
                }
                for t_prime in self._recurse(f_attrs, others, rescaled):
                    self.metrics.lookups += 1
                    if self._edge_has(f_t, {**t, **t_prime}):
                        results.append({**t, **t_prime})
            else:
                # lines 14-16: scan R_f[t], filter against every e in E2
                for row in f_t.rows:
                    candidate = dict(t)
                    for attribute, value in zip(f_t.attributes, row):
                        if attribute in candidate and candidate[attribute] != value:
                            break
                        candidate[attribute] = value
                    else:
                        self.metrics.lookups += len(others)
                        if all(self._edge_has(other, candidate)
                               for other in others):
                            results.append(candidate)
        return results

    def _prefer_subproblem(self, f_t: _Edge, others: list[_Edge],
                           weights: dict[str, float]) -> bool:
        """Alg. 1 line 10's size comparison."""
        product = 1.0
        for edge in others:
            x_e = weights.get(edge.alias, 1.0)
            if x_e >= 1.0:
                product *= len(edge.rows)
            else:
                product *= len(edge.rows) ** (1.0 / (1.0 - x_e))
            if product > 1e18:
                return True
        return len(f_t.rows) >= product

    def _base_case(self, universe: tuple[str, ...],
                   edges: list[_Edge]) -> list[dict]:
        """Line 3: ∩_e R_e over the remaining universe."""
        # seed candidate bindings from the smallest participating edge
        seed = min(edges, key=lambda e: len(e.rows))
        positions = [seed.attributes.index(a) for a in universe
                     if a in seed.attributes]
        attrs_in_seed = [a for a in universe if a in seed.attributes]
        if len(attrs_in_seed) != len(universe):
            # seed does not bind all attributes: cross with the values of
            # the remaining ones from the edges that do bind them
            missing = [a for a in universe if a not in seed.attributes]
            pools = []
            for attribute in missing:
                holders = [e for e in edges if attribute in e.attributes]
                values = set.intersection(
                    *(e.project_values(attribute) for e in holders))
                pools.append(sorted(values))
            partials = {tuple(row[i] for i in positions) for row in seed.rows}
            candidates = set()
            for partial in partials:
                self._expand(partial, pools, 0, candidates)
            ordered_attrs = attrs_in_seed + missing
        else:
            candidates = {tuple(row[i] for i in positions)
                          for row in seed.rows}
            ordered_attrs = attrs_in_seed

        results = []
        for values in candidates:
            binding = dict(zip(ordered_attrs, values))
            self.metrics.lookups += len(edges)
            if all(self._edge_has(edge, binding) for edge in edges):
                results.append(binding)
        return results

    @staticmethod
    def _expand(partial: tuple, pools: list, depth: int,
                out: set) -> None:
        if depth == len(pools):
            out.add(partial)
            return
        for value in pools[depth]:
            RecursiveJoin._expand(partial + (value,), pools, depth + 1, out)

    @staticmethod
    def _edge_has(edge: _Edge, binding: dict) -> bool:
        """Does some row of ``edge`` agree with ``binding`` (a prefixCount>0)?"""
        shared = [i for i, a in enumerate(edge.attributes) if a in binding]
        if not shared:
            return True
        wanted = tuple(binding[edge.attributes[i]] for i in shared)
        for row in edge.rows:
            if tuple(row[i] for i in shared) == wanted:
                return True
        return False
