"""Hash-Trie Join — Umbra's specialized WCOJ (Freitag et al. [22], §5.15).

Hash-Trie Join is the Generic Join specialized under the assumption that
every fractional cover weight equals 1: the *anchor* relation for each
attribute is fixed up front (the smallest relation containing it), which
"avoids the cost of the computations to estimate the size of that
sub-problem" — and, per the paper's §5.15 critique, gives up worst-case
optimality on workloads where the assumption is wrong.

Structurally the driver mirrors :class:`~repro.joins.generic_join.GenericJoin`
with three Umbra-specific traits:

* indexes are always :class:`~repro.indexes.hashtrie.HashTrie` instances
  with lazy expansion and singleton pruning (toggleable for ablation);
* the per-binding seed follows Freitag et al.'s rule — iterate the
  smallest *current-level hash table* — which, unlike the Generic Join's
  prefix counters, sees level widths rather than sub-problem sizes (the
  information gap behind the paper's "does not take into consideration
  the AGM bound for the sub-problems" critique);
* lazy expansion work triggered during probing is surfaced in the metrics
  (``expansions`` / ``redistributed``), quantifying the §5.15 effect where
  skew forces Umbra to "build middle layers at run-time, traverse the
  Hash-Trie twice and re-distribute the tuples".
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.adapter import IndexAdapter
from repro.errors import QueryError
from repro.indexes.hashtrie import HashTrie
from repro.joins.results import JoinMetrics, JoinResult, Stopwatch, make_sink
from repro.obs.observer import NULL_OBSERVER
from repro.planner.qptree import connectivity_order
from repro.planner.query import JoinQuery
from repro.storage.relation import Relation


class HashTrieJoin:
    """Umbra-style WCOJ over lazily-expanded hash tries."""

    def __init__(self, query: JoinQuery, relations: dict[str, Relation],
                 order: Sequence[str] | None = None,
                 lazy: bool = True, singleton_pruning: bool = True,
                 obs=None,
                 adapters: "dict[str, IndexAdapter] | None" = None):
        missing = [a.alias for a in query.atoms if a.alias not in relations]
        if missing:
            raise QueryError(f"no relation bound for atoms {missing}")
        self.query = query
        self.relations = relations
        self.order: tuple[str, ...] = tuple(order) if order else connectivity_order(query)
        self.lazy = lazy
        self.singleton_pruning = singleton_pruning
        self.metrics = JoinMetrics(algorithm="hashtrie_join", index="hashtrie")
        # ``adapters`` (the engine's prepared path) are pre-built tries:
        # the driver skips its build phase and build_seconds stays zero
        self.adapters: dict[str, IndexAdapter] = adapters or {}
        self._built = adapters is not None
        # the anchor relation — the scan side under the weights=1
        # assumption — is the smallest base relation (§5.15)
        self.anchor: str = min((a.alias for a in query.atoms),
                               key=lambda alias: len(relations[alias]))
        self._atoms_per_attribute: list[list[str]] = [
            [atom.alias for atom in query.atoms_with(attribute)]
            for attribute in self.order
        ]
        self.obs = obs if obs is not None else NULL_OBSERVER

    # ------------------------------------------------------------------
    def build(self) -> None:
        """Eagerly build only the first trie level per relation (lazy mode)."""
        if self._built:
            return
        self._built = True
        watch = Stopwatch()
        obs = self.obs
        for atom in self.query.atoms:
            if obs.enabled:
                adapter_t0 = Stopwatch.now_ns()
            relation = self.relations[atom.alias]
            index = HashTrie(relation.arity, lazy=self.lazy,
                             singleton_pruning=self.singleton_pruning)
            adapter = IndexAdapter(relation, index, self.order)
            adapter.build()
            self.adapters[atom.alias] = adapter
            if obs.enabled:
                obs.record_build(atom.alias, Stopwatch.now_ns() - adapter_t0)
        self.metrics.build_seconds += watch.lap()

    # ------------------------------------------------------------------
    def run(self, materialize: bool = False) -> JoinResult:
        self.build()
        sink = make_sink(materialize)
        watch = Stopwatch()
        cursors = {alias: adapter.index.cursor()
                   for alias, adapter in self.adapters.items()}
        obs = self.obs
        if obs.enabled:
            stats = obs.init_levels(self.order, self._atoms_per_attribute)
            with obs.tracer.span("probe", algorithm="hashtrie_join"):
                self._join_level_profiled(0, cursors, [], sink, stats)
        else:
            self._join_level(0, cursors, [], sink)
        self.metrics.probe_seconds += watch.lap()
        self.metrics.result_count = sink.count
        return JoinResult(attributes=self.order, sink=sink, metrics=self.metrics)

    def _join_level(self, depth: int, cursors: dict, binding: list, sink) -> None:
        if depth == len(self.order):
            sink.emit(tuple(binding))
            return
        aliases = self._atoms_per_attribute[depth]
        # Freitag et al.'s iteration rule: the smallest current-level hash
        # table drives the intersection (ties broken toward the anchor)
        seed = min(aliases,
                   key=lambda alias: (cursors[alias].count(),
                                      alias != self.anchor))
        seed_cursor = cursors[seed]
        others = [cursors[alias] for alias in aliases if alias != seed]

        self.metrics.lookups += 1
        for value in seed_cursor.child_values():
            self.metrics.lookups += 1
            if not seed_cursor.try_descend(value):
                continue
            survived = [seed_cursor]
            ok = True
            for cursor in others:
                self.metrics.lookups += 1
                if cursor.try_descend(value):
                    survived.append(cursor)
                else:
                    ok = False
                    break
            if ok:
                self.metrics.intermediate_tuples += 1
                binding.append(value)
                self._join_level(depth + 1, cursors, binding, sink)
                binding.pop()
            for cursor in survived:
                cursor.ascend()

    def _join_level_profiled(self, depth: int, cursors: dict, binding: list,
                             sink, stats: list) -> None:
        """The instrumented twin of :meth:`_join_level` (same pattern as
        the Generic Join's: local counters flushed once per invocation,
        inclusive ``time_ns``).  Keep the twins in sync."""
        if depth == len(self.order):
            sink.emit(tuple(binding))
            return
        st = stats[depth]
        t0 = Stopwatch.now_ns()
        aliases = self._atoms_per_attribute[depth]
        seed = min(aliases,
                   key=lambda alias: (cursors[alias].count(),
                                      alias != self.anchor))
        seed_cursor = cursors[seed]
        # mirrors _join_level's baselined per-binding participant list
        others = [cursors[alias] for alias in aliases if alias != seed]  # repro: noqa[RA501]
        st.seed_counts[seed] += 1
        candidates = survivors = descends = ascends = 0

        self.metrics.lookups += 1
        for value in seed_cursor.child_values():
            candidates += 1
            self.metrics.lookups += 1
            if not seed_cursor.try_descend(value):
                continue
            descends += 1
            # mirrors _join_level's baselined ascend-bookkeeping list
            survived = [seed_cursor]  # repro: noqa[RA501]
            ok = True
            for cursor in others:
                self.metrics.lookups += 1
                if cursor.try_descend(value):
                    descends += 1
                    survived.append(cursor)
                else:
                    ok = False
                    break
            if ok:
                survivors += 1
                self.metrics.intermediate_tuples += 1
                binding.append(value)
                self._join_level_profiled(depth + 1, cursors, binding, sink,
                                          stats)
                binding.pop()
            for cursor in survived:
                cursor.ascend()
                ascends += 1
        st.candidates += candidates
        st.survivors += survivors
        st.descends += descends
        st.ascends += ascends
        st.time_ns += Stopwatch.now_ns() - t0

    # ------------------------------------------------------------------
    def expansion_stats(self) -> dict[str, int]:
        """Lazy-expansion work done during probing (the §5.15 cost)."""
        expansions = 0
        redistributed = 0
        for adapter in self.adapters.values():
            index = adapter.index
            assert isinstance(index, HashTrie)
            expansions += index.expansions
            redistributed += index.redistributed_tuples
        return {"expansions": expansions, "redistributed": redistributed}
