"""Pipelined binary hash joins — the classical baseline (§1, §5.14).

The paper's baseline is "a sequence of (fully inlined) binary hash-joins
(based on Abseil's hash-set)": a left-deep pipeline where every relation
except the leftmost gets a hash table on its join key, and probe results
flow tuple-at-a-time (no materialization between operators — the paper
explicitly avoids materializing joins "due to their poor cache locality").

The join order comes from :func:`repro.planner.optimizer.greedy_join_order`
unless the caller pins one — which the Fig 1 bench does to demonstrate the
order-sensitivity WCOJ algorithms are immune to.  The intermediate-tuple
counter in the metrics is the quantity that explodes under adversarial
data.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import QueryError
from repro.joins.results import JoinMetrics, JoinResult, Stopwatch, make_sink
from repro.obs.observer import NULL_OBSERVER
from repro.planner.cardinality import Statistics
from repro.planner.optimizer import greedy_join_order
from repro.planner.query import JoinQuery
from repro.storage.relation import Relation


def plan_pipeline(query: JoinQuery, relations: dict[str, Relation],
                  order: Sequence[str]) -> tuple[list[dict], tuple[str, ...]]:
    """Stage descriptors for a pinned atom order (no tables built yet).

    Each descriptor carries the stage's alias, its key/payload attribute
    split under the attributes bound so far, and the corresponding column
    positions in the stage relation's schema — everything a hash-table
    build (or an index-cache key) needs.  Returns ``(stages,
    output_attrs)``; the leading atom contributes no stage.
    """
    bound = list(query.attributes_of(order[0]))
    bound_set = set(bound)
    stages: list[dict] = []
    for alias in order[1:]:
        attrs = query.attributes_of(alias)
        key_attrs = tuple(a for a in attrs if a in bound_set)
        payload_attrs = tuple(a for a in attrs if a not in bound_set)
        relation = relations[alias]
        positions = relation.schema.project_positions(attrs)
        stages.append({
            "alias": alias,
            "key_attrs": key_attrs,
            "payload_attrs": payload_attrs,
            "key_positions": tuple(positions[attrs.index(a)]
                                   for a in key_attrs),
            "payload_positions": tuple(positions[attrs.index(a)]
                                       for a in payload_attrs),
        })
        for attribute in payload_attrs:
            bound.append(attribute)
            bound_set.add(attribute)
    return stages, tuple(bound)


def build_stage_table(relation: Relation, key_positions: Sequence[int],
                      payload_positions: Sequence[int],
                      ) -> dict[tuple, list[tuple]]:
    """One stage's hash table: key columns → list of payload projections.

    Standalone so the engine's prepare stage can build (and the session
    cache can reuse) a stage table outside any driver instance.
    """
    table: dict[tuple, list[tuple]] = {}
    for row in relation:
        key = tuple(row[p] for p in key_positions)
        table.setdefault(key, []).append(
            tuple(row[p] for p in payload_positions))
    return table


class BinaryHashJoin:
    """Left-deep pipeline of hash joins over a query.

    ``prebuilt`` (the engine's prepared path) is ``(stages,
    output_attrs)`` where every stage descriptor already carries its
    ``"table"``; the driver then skips the build phase entirely and
    ``metrics.build_seconds`` stays zero — the prepare stage owns the
    build accounting.
    """

    def __init__(self, query: JoinQuery, relations: dict[str, Relation],
                 order: Sequence[str] | None = None,
                 stats: Statistics | None = None, obs=None,
                 prebuilt: "tuple[list[dict], tuple[str, ...]] | None" = None):
        missing = [a.alias for a in query.atoms if a.alias not in relations]
        if missing:
            raise QueryError(f"no relation bound for atoms {missing}")
        self.query = query
        self.relations = relations
        if order is not None:
            order = list(order)
            if sorted(order) != sorted(a.alias for a in query.atoms):
                raise QueryError(f"join order {order} does not cover the query atoms")
        else:
            if stats is None:
                stats = Statistics.collect(relations.values())
            order = greedy_join_order(query, stats)
        self.order = order
        self.metrics = JoinMetrics(algorithm="binary_join", index="hashmap")
        self._plan: list[dict] = []
        self._built = False
        self._output_attrs: tuple[str, ...] = ()
        self.obs = obs if obs is not None else NULL_OBSERVER
        if prebuilt is not None:
            self._plan, self._output_attrs = prebuilt
            self._built = True

    # ------------------------------------------------------------------
    # Build phase: one hash table per non-leading atom
    # ------------------------------------------------------------------
    def build(self) -> None:
        if self._built:
            return
        self._built = True
        watch = Stopwatch()
        obs = self.obs
        stages, self._output_attrs = plan_pipeline(self.query, self.relations,
                                                   self.order)
        self._plan = stages
        for stage in stages:
            if obs.enabled:
                table_t0 = Stopwatch.now_ns()
            stage["table"] = build_stage_table(
                self.relations[stage["alias"]],
                stage["key_positions"], stage["payload_positions"])
            if obs.enabled:
                obs.record_build(stage["alias"],
                                 Stopwatch.now_ns() - table_t0)
        self.metrics.build_seconds += watch.lap()

    # ------------------------------------------------------------------
    # Probe phase: tuple-at-a-time pipeline
    # ------------------------------------------------------------------
    def run(self, materialize: bool = False) -> JoinResult:
        self.build()
        sink = make_sink(materialize)
        watch = Stopwatch()
        leading = self.relations[self.order[0]]
        lead_attrs = self.query.attributes_of(self.order[0])
        binding: dict[str, object] = {}
        obs = self.obs
        if obs.enabled:
            # one profile level per pipeline stage: the leading scan,
            # then each hash probe (label = the stage's atom alias)
            stats = obs.init_levels(self.order, [[a] for a in self.order])
            st0 = stats[0]
            st0.seed_counts[self.order[0]] += 1
            probe_t0 = Stopwatch.now_ns()
            with obs.tracer.span("probe", algorithm="binary_join"):
                for row in leading:
                    for attribute, value in zip(lead_attrs, row):
                        binding[attribute] = value
                    self._probe_profiled(0, binding, sink, stats)
            scanned = len(leading)
            st0.candidates += scanned
            st0.survivors += scanned
            st0.time_ns += Stopwatch.now_ns() - probe_t0
        else:
            for row in leading:
                for attribute, value in zip(lead_attrs, row):
                    binding[attribute] = value
                self._probe(0, binding, sink)
        self.metrics.probe_seconds += watch.lap()
        self.metrics.result_count = sink.count
        return JoinResult(attributes=self._output_attrs, sink=sink,
                          metrics=self.metrics)

    def _probe_profiled(self, stage: int, binding: dict[str, object], sink,
                        stats: list) -> None:
        """The instrumented twin of :meth:`_probe` (stage *i* writes into
        ``stats[i + 1]``; level 0 is the leading scan, accounted by
        :meth:`run`).  ``candidates`` counts probes arriving at the stage,
        ``survivors`` the matching payload expansions flowing on.  Keep
        the twins in sync when touching either."""
        if stage == len(self._plan):
            # mirrors _probe's baselined result-tuple construction
            sink.emit(tuple(binding[a] for a in self._output_attrs))  # repro: noqa[RA502]
            return
        st = stats[stage + 1]
        t0 = Stopwatch.now_ns()
        step = self._plan[stage]
        self.metrics.lookups += 1
        st.candidates += 1
        st.seed_counts[step["alias"]] += 1
        # mirrors _probe's baselined per-probe key construction
        key = tuple(binding[a] for a in step["key_attrs"])  # repro: noqa[RA502]
        matches = step["table"].get(key)
        if not matches:
            st.time_ns += Stopwatch.now_ns() - t0
            return
        payload_attrs = step["payload_attrs"]
        st.survivors += len(matches)
        for payload in matches:
            for attribute, value in zip(payload_attrs, payload):
                binding[attribute] = value
            self.metrics.intermediate_tuples += 1
            self._probe_profiled(stage + 1, binding, sink, stats)
        for attribute in payload_attrs:
            binding.pop(attribute, None)
        st.time_ns += Stopwatch.now_ns() - t0

    def _probe(self, stage: int, binding: dict[str, object], sink) -> None:
        if stage == len(self._plan):
            sink.emit(tuple(binding[a] for a in self._output_attrs))
            return
        step = self._plan[stage]
        self.metrics.lookups += 1
        key = tuple(binding[a] for a in step["key_attrs"])
        matches = step["table"].get(key)
        if not matches:
            return
        payload_attrs = step["payload_attrs"]
        for payload in matches:
            for attribute, value in zip(payload_attrs, payload):
                binding[attribute] = value
            self.metrics.intermediate_tuples += 1
            self._probe(stage + 1, binding, sink)
        for attribute in payload_attrs:
            binding.pop(attribute, None)
