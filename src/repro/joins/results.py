"""Join result handling: counting vs materializing sinks, and run metrics.

Cycle *counting* (the paper's graph workloads) never materializes result
tuples; relational queries do.  Join drivers emit bindings into a
:class:`ResultSink`; :class:`CountingSink` tallies, :class:`MaterializingSink`
collects tuples in total-order attribute sequence.

:class:`JoinMetrics` carries the timing breakdown the paper's Fig 15
reports (build vs probe time) plus the intermediate-result counter that
tells the Fig 1 story (binary joins exploding, WCOJ not).
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field


class ResultSink:
    """Receives one result binding per call."""

    def emit(self, row: tuple) -> None:
        raise NotImplementedError

    def emit_suffixes(self, prefix: tuple, values: Sequence) -> None:
        """Emit ``prefix + (value,)`` for every value — the batch engine's
        last-level fast path.  Sinks that never materialize override this
        to skip per-result tuple construction entirely."""
        for value in values:
            # each emitted result IS a fresh tuple; counting sinks override
            self.emit(prefix + (value,))  # repro: noqa[RA501]

    @property
    def count(self) -> int:
        raise NotImplementedError


class CountingSink(ResultSink):
    """Counts results without materializing them."""

    def __init__(self):
        self._count = 0

    def emit(self, row: tuple) -> None:
        self._count += 1

    def emit_suffixes(self, prefix: tuple, values: Sequence) -> None:
        self._count += len(values)

    @property
    def count(self) -> int:
        return self._count


class MaterializingSink(ResultSink):
    """Collects result tuples."""

    def __init__(self):
        self.rows: list[tuple] = []

    def emit(self, row: tuple) -> None:
        self.rows.append(row)

    @property
    def count(self) -> int:
        return len(self.rows)


@dataclass
class JoinMetrics:
    """Per-run instrumentation (Fig 1 / Fig 15 breakdowns)."""

    algorithm: str = ""
    index: str = ""
    build_seconds: float = 0.0
    probe_seconds: float = 0.0
    intermediate_tuples: int = 0    # tuples flowing between operators / levels
    lookups: int = 0                # prefix/point probes issued
    result_count: int = 0

    @property
    def total_seconds(self) -> float:
        return self.build_seconds + self.probe_seconds

    def as_row(self) -> dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "index": self.index,
            "build_s": round(self.build_seconds, 6),
            "probe_s": round(self.probe_seconds, 6),
            "total_s": round(self.total_seconds, 6),
            "intermediates": self.intermediate_tuples,
            "lookups": self.lookups,
            "results": self.result_count,
        }


@dataclass
class JoinResult:
    """What every join driver returns."""

    attributes: tuple[str, ...]           # result schema, in total order
    sink: ResultSink
    metrics: JoinMetrics = field(default_factory=JoinMetrics)
    #: EXPLAIN ANALYZE report, set by ``join(..., profile=True)``
    profile: "JoinProfile | None" = None  # noqa: F821 - repro.obs.profile

    @property
    def count(self) -> int:
        return self.sink.count

    @property
    def rows(self) -> list[tuple]:
        if isinstance(self.sink, MaterializingSink):
            return self.sink.rows
        raise AttributeError("join ran in counting mode; no rows materialized")

    def rows_as_dicts(self) -> list[dict[str, object]]:
        return [dict(zip(self.attributes, row)) for row in self.rows]


class Stopwatch:
    """Tiny phase timer used by the join drivers.

    Internally integer nanoseconds (``time.perf_counter_ns`` — no float
    accumulation error across laps); float seconds only at the API
    boundary.  :meth:`now_ns` is the single monotonic clock source shared
    with :class:`repro.obs.trace.Tracer`, so span timestamps and phase
    timings are directly comparable.
    """

    #: the shared monotonic clock (integer nanoseconds)
    now_ns = staticmethod(time.perf_counter_ns)

    def __init__(self):
        self._start = time.perf_counter_ns()

    def lap(self) -> float:
        now = time.perf_counter_ns()
        elapsed = now - self._start
        self._start = now
        return elapsed * 1e-9


def make_sink(materialize: bool) -> ResultSink:
    return MaterializingSink() if materialize else CountingSink()


def project_binding(binding: dict[str, object],
                    attributes: Sequence[str]) -> tuple:
    """Order a bound-attribute dict into a result tuple."""
    return tuple(binding[a] for a in attributes)
