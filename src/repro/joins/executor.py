"""The top-level join API — the runtime analogue of the paper's Listing 1.

The C++ framework pairs relations with index adapters and instantiates a
fully-inlined join at compile time; :func:`join` does the same wiring at
runtime, now as a thin wrapper over the staged engine pipeline
(:mod:`repro.engine.pipeline`): **bind** each atom to its relation,
**plan** the algorithm/engine/total-order/index-spec decisions into a
:class:`~repro.engine.ir.JoinPlan`, **prepare** the supporting
structures (timed — ad-hoc index build is part of every WCOJ run,
§5.15), and **execute**.  Each ``join()`` call is a one-shot cold
session: no index cache, so results *and* timing semantics are
identical to the seed's monolithic implementation.  For repeated
queries over the same relations, use :class:`repro.engine.Session`,
whose prepared joins skip the rebuild.

>>> from repro import join, Relation, parse_query
>>> edges = Relation("E", ("src", "dst"), [(0, 1), (1, 2), (2, 0)])
>>> q = parse_query("E1=E(a,b), E2=E(b,c), E3=E(c,a)")
>>> join(q, {"E1": edges, "E2": edges, "E3": edges}, index="sonic").count
3

Algorithms: ``"generic"`` (Generic Join over any registered index),
``"binary"`` (pipelined hash joins), ``"hashtrie"`` (Umbra-style),
``"leapfrog"`` (LFTJ), or ``"auto"`` (the hybrid optimizer chooses
binary vs generic, §6/[22]).

This module also remains the home of the shared building blocks the
pipeline stages (and the test suite) use directly:
:func:`resolve_relations`, :func:`build_adapters`,
:func:`attach_profile`, and the ``ALGORITHMS`` / ``ENGINES`` domains.
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from pathlib import Path

from repro.core.adapter import IndexAdapter
from repro.core.config import SonicConfig
from repro.core.envflag import resolve_flag, resolve_str
from repro.errors import QueryError
from repro.indexes.registry import make_index
from repro.joins.results import JoinResult, Stopwatch
from repro.obs.observer import JoinObserver, NULL_OBSERVER
from repro.obs.profile import build_profile
from repro.planner.query import JoinQuery, parse_query
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation

ALGORITHMS = ("generic", "binary", "hashtrie", "leapfrog", "recursive",
              "unified", "auto")

#: execution models for the Generic Join driver: tuple-at-a-time (the
#: paper's Alg. 1 rendering), batch-at-a-time (vectorized candidate
#: intersection), or auto (batch iff every adapter has a native kernel)
ENGINES = ("tuple", "batch", "auto")


def _debug_enabled(debug: "bool | None") -> bool:
    """Resolve the debug flag: explicit argument wins, else ``REPRO_DEBUG``."""
    return resolve_flag(debug, "REPRO_DEBUG")


def _profile_enabled(profile: "bool | None") -> bool:
    """Resolve the profile flag: explicit argument wins, else ``REPRO_PROFILE``."""
    return resolve_flag(profile, "REPRO_PROFILE")


def attach_profile(query, result: JoinResult, observer, choice, order,
                   engine: "str | None" = None,
                   trace_out: "str | None" = None) -> JoinResult:
    """Fold the observer into ``result.profile`` (enabled runs only) and
    write the Chrome trace if ``trace_out``/``REPRO_TRACE_OUT`` asks."""
    if not observer.enabled:
        return result
    profile = build_profile(
        query=str(query),
        algorithm=result.metrics.algorithm,
        index=result.metrics.index or "none",
        order=order,
        metrics=result.metrics,
        observer=observer,
        engine=engine,
        choice=choice,
    )
    result.profile = profile
    out = resolve_str(trace_out, "REPRO_TRACE_OUT")
    if out:
        Path(out).write_text(
            json.dumps(profile.to_chrome_trace(), indent=2) + "\n")
    return result


#: back-compat alias for the pre-engine private name
_attach_profile = attach_profile


def resolve_relations(query: JoinQuery,
                      source: "Catalog | Mapping[str, Relation]",
                      ) -> dict[str, Relation]:
    """Map each atom alias to its relation, viewed through query attributes.

    A mapping may be keyed by alias or by relation name; a catalog is
    looked up by the atom's relation name (aliases share the physical
    relation, the usual self-join case).  Each resolved relation is a
    zero-copy :meth:`~repro.storage.relation.Relation.renamed` view whose
    schema carries the atom's query attributes — the form every join
    driver expects.  (This is the work of the engine's **bind** stage;
    the view shares its backing rows and version counter with the stored
    relation, so its fingerprint doubles as the cache identity.)
    """
    resolved: dict[str, Relation] = {}
    for atom in query.atoms:
        if isinstance(source, Catalog):
            relation = source.get(atom.relation)
        elif atom.alias in source:
            relation = source[atom.alias]
        elif atom.relation in source:
            relation = source[atom.relation]
        else:
            raise QueryError(
                f"no relation for atom {atom} (keys: {sorted(source)})"
            )
        if relation.arity != atom.arity:
            raise QueryError(
                f"atom {atom} has arity {atom.arity} but relation "
                f"{relation.name!r} has arity {relation.arity}"
            )
        resolved[atom.alias] = relation.renamed(atom.attributes, name=atom.alias)
    return resolved


def build_adapters(query: JoinQuery, relations: Mapping[str, Relation],
                   order: Sequence[str], index: str = "sonic",
                   sonic_overallocation: float = 2.0,
                   sonic_bucket_size: int = 8,
                   index_options: Mapping[str, object] | None = None,
                   obs=None) -> dict[str, IndexAdapter]:
    """One freshly-built index adapter per atom (the WCOJ build phase).

    With an enabled observer, each adapter's build is timed individually
    (``profile.build_breakdown``) and recorded as a ``build_index`` span.
    """
    adapters: dict[str, IndexAdapter] = {}
    options = dict(index_options or {})
    observer = obs if obs is not None else NULL_OBSERVER
    obs_enabled = observer.enabled
    for atom in query.atoms:
        if obs_enabled:
            adapter_t0 = Stopwatch.now_ns()
        relation = relations[atom.alias]
        if index == "sonic":
            config = SonicConfig.for_tuples(
                max(len(relation), 1),
                bucket_size=sonic_bucket_size,
                overallocation=sonic_overallocation,
            )
            idx = make_index("sonic", relation.arity, config=config, **options)
        else:
            idx = make_index(index, relation.arity, **options)
        adapter = IndexAdapter(relation, idx, order)
        adapter.build()
        adapters[atom.alias] = adapter
        if obs_enabled:
            duration = Stopwatch.now_ns() - adapter_t0
            observer.record_build(atom.alias, duration)
            observer.tracer.add_span("build_index", adapter_t0, duration,
                                     alias=atom.alias, index=index,
                                     tuples=len(relation))
    return adapters


def join(query: "JoinQuery | str",
         source: "Catalog | Mapping[str, Relation]",
         algorithm: str = "generic",
         index: str = "sonic",
         order: Sequence[str] | None = None,
         materialize: bool = False,
         dynamic_seed: bool = True,
         binary_order: Sequence[str] | None = None,
         engine: str = "tuple",
         debug: "bool | None" = None,
         profile: "bool | None" = None,
         obs: "JoinObserver | None" = None,
         trace_out: "str | None" = None,
         parallel: "int | None" = None,
         **index_kwargs) -> JoinResult:
    """Plan, build and execute a join query; returns a :class:`JoinResult`.

    Parameters mirror the paper's experimental axes: ``algorithm`` picks
    the join driver, ``index`` the supporting structure for the Generic
    Join, ``order`` overrides the total attribute order (the default is
    the connectivity-aware heuristic of
    :func:`repro.planner.qptree.connectivity_order`; pass
    ``repro.planner.total_order(query)`` for the paper's raw QP-tree
    order), ``dynamic_seed`` ablates the AGM-guided anchor selection,
    ``binary_order`` pins the binary pipeline's join order (Fig 1's
    order-sensitivity axis).

    ``engine`` selects the Generic Join execution model: ``"tuple"``
    (default, the paper's tuple-at-a-time Alg. 1), ``"batch"``
    (vectorized candidate intersection,
    :class:`~repro.joins.batch.GenericJoinBatch`; every index works —
    structures without a native kernel run through the per-value
    fallback shim), or ``"auto"`` (batch iff the index advertises
    ``SUPPORTS_BATCH``).  Both engines produce identical results; only
    constant factors differ.  The knob is ignored by the non-generic
    algorithms, which have no batch rendering.

    ``**index_kwargs`` carries per-algorithm index options
    (``sonic_bucket_size`` / ``sonic_overallocation`` / ``index_options``
    for the Generic Join, ``lazy`` / ``singleton_pruning`` for
    Hash-Trie Join).  Options the chosen algorithm cannot honor raise
    :class:`~repro.errors.ConfigurationError` at plan time — the seed
    silently swallowed them.

    ``debug`` (default: the ``REPRO_DEBUG`` environment variable) runs the
    static plan validator (:mod:`repro.analysis.plancheck`) on the
    resolved plan — including the RA306/RA307 IR checks — before
    execution, raising :class:`~repro.errors.PlanValidationError`
    instead of silently executing a malformed plan.

    ``parallel`` (default: the ``REPRO_WORKERS`` environment variable;
    0 / unset keeps the single-process path) runs the join as ``K``
    hash-sharded worker processes over shared-memory columns
    (:mod:`repro.parallel`): the plan gains a
    :class:`~repro.engine.ir.ShardingSpec` on its leading attribute,
    relations are partitioned into ``/dev/shm`` during prepare, and
    each worker runs the same staged pipeline over its shard before
    the results are merged deterministically.  Counts and rows are
    identical to the single-process run; the worker pool and shared
    memory are torn down before this function returns (one-shot
    semantics — use :meth:`repro.engine.Session.prepare` with
    ``parallel=K`` to keep a pool warm across executions).

    ``profile`` (default: the ``REPRO_PROFILE`` environment variable)
    runs the join under a live :class:`~repro.obs.observer.JoinObserver`
    and attaches the EXPLAIN ANALYZE report to ``result.profile`` (a
    :class:`~repro.obs.profile.JoinProfile`: per-level candidates /
    survivors / seed choices / time, the hybrid optimizer's estimated vs
    actual cardinalities, counters, spans).  ``obs`` threads a caller-
    supplied observer instead (e.g. a shared metrics registry, or
    ``JoinObserver.disabled()`` to pin the un-instrumented path);
    ``trace_out`` (default: ``REPRO_TRACE_OUT``) additionally writes the
    span trace as Chrome ``trace_event`` JSON to that path.

    Every call runs the full cold pipeline — **bind → plan →
    prepare(no cache) → execute** — so the ad-hoc index build is part
    of the reported timing, exactly as the paper measures (§5.15).
    """
    # imported here, not at module level: the engine pipeline imports
    # this module's shared helpers (resolve_relations, attach_profile),
    # so the package-level dependency must stay one-directional
    from repro.engine.pipeline import bind, plan, prepare

    if obs is not None:
        observer = obs
    elif _profile_enabled(profile):
        observer = JoinObserver()
    else:
        observer = NULL_OBSERVER
    bound = bind(query, source, debug=debug, obs=observer)
    join_plan = plan(bound, algorithm=algorithm, index=index, order=order,
                     binary_order=binary_order, engine=engine,
                     dynamic_seed=dynamic_seed, debug=debug, obs=observer,
                     index_kwargs=index_kwargs, parallel=parallel)
    prepared = prepare(bound, join_plan, cache=None, obs=observer)
    try:
        return prepared.execute(materialize=materialize, obs=observer,
                                trace_out=trace_out)
    finally:
        # releases the worker pool and shared memory of a sharded run;
        # a no-op for ordinary single-process plans
        prepared.close()


def triangle_count(edges: Relation, algorithm: str = "generic",
                   index: str = "sonic", **kwargs) -> int:
    """Count directed triangles in an edge relation (the paper's Fig 1 query)."""
    query = parse_query("E1=E(a,b), E2=E(b,c), E3=E(c,a)")
    result = join(query, {"E1": edges, "E2": edges, "E3": edges},
                  algorithm=algorithm, index=index, **kwargs)
    return result.count
