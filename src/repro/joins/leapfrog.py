"""Leapfrog Triejoin (Veldhuizen [46]) — the paper's §7 extension.

The paper's future work proposes supporting LFTJ through "a trie-like
interface … provided in a straight-forward manner by sorting the input".
This module implements exactly that: relations are sorted into
:class:`~repro.indexes.sorted_trie.SortedTrie` instances (per the query's
total order) and joined with the classic leapfrog algorithm:

for each attribute in the total order, the iterators of all relations
containing it repeatedly *seek* to the maximum of their current keys; when
all keys agree the value is in the intersection, the join recurses one
attribute deeper, and on exhaustion the iterators pop back ``up``.

LFTJ is worst-case optimal like the Generic Join (both are instances of
the same general algorithm [39, 40]); its unit of work is the logarithmic
``seek`` rather than hash probes.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.adapter import IndexAdapter
from repro.errors import QueryError
from repro.indexes.sorted_trie import SortedTrie, TrieIterator
from repro.joins.results import JoinMetrics, JoinResult, Stopwatch, make_sink
from repro.obs.observer import NULL_OBSERVER
from repro.planner.qptree import connectivity_order
from repro.planner.query import JoinQuery
from repro.storage.relation import Relation


class LeapfrogTrieJoin:
    """LFTJ over sorted-array tries."""

    def __init__(self, query: JoinQuery, relations: dict[str, Relation],
                 order: Sequence[str] | None = None, obs=None,
                 tries: "dict[str, SortedTrie] | None" = None):
        missing = [a.alias for a in query.atoms if a.alias not in relations]
        if missing:
            raise QueryError(f"no relation bound for atoms {missing}")
        self.query = query
        self.relations = relations
        self.order: tuple[str, ...] = tuple(order) if order else connectivity_order(query)
        self.metrics = JoinMetrics(algorithm="leapfrog", index="sortedtrie")
        # pre-sorted tries (the engine's prepared path) skip the build
        # phase; build_seconds stays zero — prepare owns that accounting
        self._built = tries is not None
        self._tries: dict[str, SortedTrie] = tries or {}
        # which aliases participate at each attribute depth, and at which
        # of their own depths (their attribute's rank in their own order)
        self._participants: list[list[str]] = [
            [atom.alias for atom in query.atoms_with(attribute)]
            for attribute in self.order
        ]
        self.obs = obs if obs is not None else NULL_OBSERVER

    def build(self) -> None:
        if self._built:
            return
        self._built = True
        watch = Stopwatch()
        obs = self.obs
        for atom in self.query.atoms:
            if obs.enabled:
                adapter_t0 = Stopwatch.now_ns()
            relation = self.relations[atom.alias]
            trie = SortedTrie(relation.arity)
            adapter = IndexAdapter(relation, trie, self.order)
            adapter.build()
            trie.rows  # force the sort inside the build phase
            self._tries[atom.alias] = trie
            if obs.enabled:
                obs.record_build(atom.alias, Stopwatch.now_ns() - adapter_t0)
        self.metrics.build_seconds += watch.lap()

    def run(self, materialize: bool = False) -> JoinResult:
        self.build()
        sink = make_sink(materialize)
        watch = Stopwatch()
        iterators = {alias: trie.iterator() for alias, trie in self._tries.items()}
        # per-depth iterator lists, hoisted out of the probe path:
        # _join_level runs once per partial binding and must not
        # allocate per call
        levels: list[list[TrieIterator]] = [
            [iterators[a] for a in aliases] for aliases in self._participants
        ]
        obs = self.obs
        if all(len(trie) for trie in self._tries.values()):
            if obs.enabled:
                stats = obs.init_levels(self.order, self._participants)
                with obs.tracer.span("probe", algorithm="leapfrog"):
                    self._join_level_profiled(0, levels, [], sink, stats)
            else:
                self._join_level(0, levels, [], sink)
        elif obs.enabled:
            obs.init_levels(self.order, self._participants)
        self.metrics.probe_seconds += watch.lap()
        self.metrics.result_count = sink.count
        return JoinResult(attributes=self.order, sink=sink, metrics=self.metrics)

    # ------------------------------------------------------------------
    def _join_level(self, depth: int, levels: list[list[TrieIterator]],
                    binding: list, sink) -> None:
        if depth == len(self.order):
            sink.emit(tuple(binding))
            return
        participants = levels[depth]
        for cursor in participants:
            cursor.open()
        try:
            for value in self._leapfrog(participants):
                binding.append(value)
                self.metrics.intermediate_tuples += 1
                self._join_level(depth + 1, levels, binding, sink)
                binding.pop()
        finally:
            for cursor in participants:
                cursor.up()

    def _join_level_profiled(self, depth: int,
                             levels: list[list[TrieIterator]],
                             binding: list, sink, stats: list) -> None:
        """The instrumented twin of :meth:`_join_level`.  ``descends`` /
        ``ascends`` count iterator ``open()``/``up()`` calls; survivors
        are the intersection values the leapfrog yields.  Keep the twins
        in sync."""
        if depth == len(self.order):
            sink.emit(tuple(binding))
            return
        st = stats[depth]
        t0 = Stopwatch.now_ns()
        participants = levels[depth]
        for cursor in participants:
            cursor.open()
        st.descends += len(participants)
        try:
            for value in self._leapfrog_profiled(participants, st):
                st.survivors += 1
                binding.append(value)
                self.metrics.intermediate_tuples += 1
                self._join_level_profiled(depth + 1, levels, binding, sink,
                                          stats)
                binding.pop()
        finally:
            for cursor in participants:
                cursor.up()
            st.ascends += len(participants)
            st.time_ns += Stopwatch.now_ns() - t0

    def _leapfrog_profiled(self, cursors: list[TrieIterator], st):
        """The instrumented twin of :meth:`_leapfrog`: ``st.candidates``
        counts keys examined (one per leapfrog step, matching or not)."""
        if any(c.at_end() for c in cursors):
            return
        cursors.sort(key=lambda c: c.key())
        index = 0
        max_key = cursors[-1].key()
        while True:
            cursor = cursors[index]
            key = cursor.key()
            st.candidates += 1
            if key == max_key:
                yield key
                self.metrics.lookups += 1
                cursor.next()
                if cursor.at_end():
                    return
                max_key = cursor.key()
            else:
                self.metrics.lookups += 1
                cursor.seek(max_key)
                if cursor.at_end():
                    return
                max_key = max(max_key, cursor.key())
            index = (index + 1) % len(cursors)

    def _leapfrog(self, cursors: list[TrieIterator]):
        """Yield the intersection of the cursors' key streams (Veldhuizen §3)."""
        if any(c.at_end() for c in cursors):
            return
        # in place: `cursors` is this depth's reusable participant list
        # and its internal order is free, so no per-call copy is needed
        cursors.sort(key=lambda c: c.key())
        index = 0
        max_key = cursors[-1].key()
        while True:
            cursor = cursors[index]
            key = cursor.key()
            if key == max_key:
                # all cursors agree
                yield key
                self.metrics.lookups += 1
                cursor.next()
                if cursor.at_end():
                    return
                max_key = cursor.key()
            else:
                self.metrics.lookups += 1
                cursor.seek(max_key)
                if cursor.at_end():
                    return
                max_key = max(max_key, cursor.key())
            index = (index + 1) % len(cursors)
