"""The Generic Join — worst-case optimal, index-agnostic (§2.3, Alg. 1).

This is the attribute-at-a-time rendering of Ngo, Porat, Ré and Rudra's
Generic Join, the form every practical WCOJ system implements (LFTJ,
EmptyHeaded, Umbra are all specializations [39]).  For the total order
``γ = A_1 … A_n`` the algorithm binds one attribute at a time:

1. among the atoms containing the current attribute, pick the one whose
   residual count under the current binding is smallest — the paper's
   Alg. 1 line 9/10 size comparison that makes the join work-efficient
   and distinguishes it from Hash-Trie Join (§5.15: Umbra "does not take
   into consideration the AGM bound for the sub-problems", i.e. it skips
   exactly this per-binding comparison);
2. enumerate that atom's candidate values for the attribute (a child walk
   in its index);
3. keep a candidate only if **every** atom containing the attribute
   descends successfully into it (Alg. 1 line 15's ``prefixCount``);
4. recurse; a full binding is a result tuple.

Worst-case optimality follows from the intersection-at-every-attribute
discipline: the number of partial bindings alive at depth *i* is bounded
by the AGM bound of the sub-query on ``A_1..A_i`` (see Ngo et al. [39]).

**Execution model.**  The driver holds one
:class:`~repro.indexes.base.PrefixCursor` per atom and performs O(1)-ish
*incremental* descents — the cost model of the paper's Alg. 3 — rather
than re-probing whole prefixes per binding.  Inner-depth descents may
accept an index's rare false positives (Sonic's patch ambiguity, §3.3);
cursors are exact at their final depth, where stored payloads verify the
whole path, so results are always exact — "false results are filtered
out" exactly as the paper prescribes.

The per-binding seed re-selection is the Generic Join's knob; construct
with ``dynamic_seed=False`` to ablate it (choosing the seed statically
per attribute by relation size — the Hash-Trie-Join-like behaviour).

The driver is fully index-agnostic: anything built through
:class:`~repro.core.adapter.IndexAdapter` joins on a level playing field,
the Python equivalent of the paper's C++ template framework (§4.1).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.adapter import IndexAdapter
from repro.errors import QueryError
from repro.joins.results import JoinMetrics, JoinResult, Stopwatch, make_sink
from repro.obs.observer import NULL_OBSERVER
from repro.planner.qptree import connectivity_order
from repro.planner.query import JoinQuery


class GenericJoin:
    """Generic Join over pre-built index adapters.

    **Observability.**  ``obs`` is a
    :class:`~repro.obs.observer.JoinObserver` (default: the shared
    disabled one).  The driver branches on ``obs.enabled`` exactly once
    per run: the un-profiled recursion (:meth:`_join_level`) carries no
    instrumentation at all, while the enabled path runs its instrumented
    twin (:meth:`_join_level_profiled`) that accumulates per-level
    candidates/survivors/cursor movements into ``obs.levels``.
    """

    def __init__(self, query: JoinQuery, adapters: dict[str, IndexAdapter],
                 order: Sequence[str] | None = None,
                 dynamic_seed: bool = True, obs=None):
        missing = [a.alias for a in query.atoms if a.alias not in adapters]
        if missing:
            raise QueryError(f"no index adapter for atoms {missing}")
        self.query = query
        self.adapters = adapters
        self.order: tuple[str, ...] = tuple(order) if order else connectivity_order(query)
        if set(self.order) != set(query.attributes):
            raise QueryError(
                f"total order {self.order} does not cover query attributes "
                f"{query.attributes}"
            )
        self.dynamic_seed = dynamic_seed
        #: per attribute depth: aliases of the atoms binding it
        self._atoms_per_attribute: list[list[str]] = [
            [atom.alias for atom in query.atoms_with(attribute)]
            for attribute in self.order
        ]
        #: static seed per attribute (by base relation size), used when
        #: dynamic selection is ablated or as the tie-breaking default
        self._static_seed: list[str] = [
            min(aliases, key=lambda a: len(self.adapters[a].relation))
            for aliases in self._atoms_per_attribute
        ]
        #: position of the static seed within its depth's participant list
        self._static_seed_pos: list[int] = [
            aliases.index(seed)
            for aliases, seed in zip(self._atoms_per_attribute,
                                     self._static_seed)
        ]
        self.metrics = JoinMetrics(algorithm="generic_join")
        self.obs = obs if obs is not None else NULL_OBSERVER

    # ------------------------------------------------------------------
    def run(self, materialize: bool = False) -> JoinResult:
        """Execute the join phase (indexes must already be built)."""
        sink = make_sink(materialize)
        watch = Stopwatch()
        cursors = {alias: adapter.index.cursor()
                   for alias, adapter in self.adapters.items()}
        # per-depth participant cursor lists, hoisted out of the probe
        # path: _join_level runs once per partial binding and must not
        # allocate per call (the paper's Alg. 3 cost model)
        levels: list[list] = [
            [cursors[alias] for alias in aliases]
            for aliases in self._atoms_per_attribute
        ]
        binding: list = []
        obs = self.obs
        if obs.enabled:
            stats = obs.init_levels(self.order, self._atoms_per_attribute)
            with obs.tracer.span("probe", algorithm="generic_join",
                                 engine="tuple"):
                self._join_level_profiled(0, levels, binding, sink, stats)
        else:
            self._join_level(0, levels, binding, sink)
        self.metrics.probe_seconds += watch.lap()
        self.metrics.result_count = sink.count
        return JoinResult(attributes=self.order, sink=sink, metrics=self.metrics)

    # ------------------------------------------------------------------
    def _join_level(self, depth: int, levels: list, binding: list,
                    sink) -> None:
        if depth == len(self.order):
            sink.emit(tuple(binding))
            return
        participants = levels[depth]
        seed_cursor = participants[self._choose_seed_pos(depth, participants)]

        self.metrics.lookups += 1
        for value in seed_cursor.child_values():
            # every participating atom must accept the candidate — the
            # intersection step (Alg. 1 line 15); the seed re-descends too,
            # verifying candidates its own child walk may have surfaced
            # as inner-level false positives.
            self.metrics.lookups += 1
            if not seed_cursor.try_descend(value):
                continue
            descended = 1
            ok = True
            for cursor in participants:
                if cursor is seed_cursor:
                    continue
                self.metrics.lookups += 1
                if cursor.try_descend(value):
                    descended += 1
                else:
                    ok = False
                    break
            if ok:
                self.metrics.intermediate_tuples += 1
                binding.append(value)
                self._join_level(depth + 1, levels, binding, sink)
                binding.pop()
            # pop exactly the cursors that descended: the seed, then the
            # leading non-seed participants up to the first failure
            seed_cursor.ascend()
            descended -= 1
            for cursor in participants:
                if descended == 0:
                    break
                if cursor is seed_cursor:
                    continue
                cursor.ascend()
                descended -= 1

    def _join_level_profiled(self, depth: int, levels: list, binding: list,
                             sink, stats: list) -> None:
        """The instrumented twin of :meth:`_join_level`.

        Byte-for-byte the same join logic plus per-level accumulation
        into ``stats[depth]`` (local ints, flushed once per invocation —
        never a method call per candidate).  ``time_ns`` is *inclusive*;
        the profile derives exclusive time by subtracting the next
        level's total.  Keep the twins in sync when touching either.
        """
        if depth == len(self.order):
            sink.emit(tuple(binding))
            return
        st = stats[depth]
        t0 = Stopwatch.now_ns()
        participants = levels[depth]
        seed_pos = self._choose_seed_pos(depth, participants)
        seed_cursor = participants[seed_pos]
        st.seed_counts[self._atoms_per_attribute[depth][seed_pos]] += 1
        candidates = survivors = descends = ascends = 0

        self.metrics.lookups += 1
        for value in seed_cursor.child_values():
            candidates += 1
            self.metrics.lookups += 1
            if not seed_cursor.try_descend(value):
                continue
            descends += 1
            descended = 1
            ok = True
            for cursor in participants:
                if cursor is seed_cursor:
                    continue
                self.metrics.lookups += 1
                if cursor.try_descend(value):
                    descends += 1
                    descended += 1
                else:
                    ok = False
                    break
            if ok:
                survivors += 1
                self.metrics.intermediate_tuples += 1
                binding.append(value)
                self._join_level_profiled(depth + 1, levels, binding, sink,
                                          stats)
                binding.pop()
            seed_cursor.ascend()
            ascends += 1
            descended -= 1
            for cursor in participants:
                if descended == 0:
                    break
                if cursor is seed_cursor:
                    continue
                cursor.ascend()
                ascends += 1
                descended -= 1
        st.candidates += candidates
        st.survivors += survivors
        st.descends += descends
        st.ascends += ascends
        st.time_ns += Stopwatch.now_ns() - t0

    def _choose_seed_pos(self, depth: int, participants: list) -> int:
        """Pick the enumeration seed among the atoms binding this attribute.

        Dynamic mode compares the atoms' residual sizes *under the current
        binding* via the cursors' advisory counts (the paper's motivation
        for making count-prefix fast); static mode uses base relation
        sizes only (the Hash-Trie Join simplification).  Returns the
        seed's position in ``participants``.
        """
        if len(participants) == 1 or not self.dynamic_seed:
            return self._static_seed_pos[depth]
        best_pos = 0
        best_count = None
        for pos, cursor in enumerate(participants):
            self.metrics.lookups += 1
            count = cursor.count()
            if best_count is None or count < best_count:
                best_pos, best_count = pos, count
        return best_pos
