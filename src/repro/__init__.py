"""SonicJoin reproduction — the Sonic index and worst-case optimal joins.

A from-scratch Python implementation of *SonicJoin: Fast, Robust and
Worst-case Optimal* (Khazaie & Pirk, EDBT 2023): the Sonic index structure,
an index-agnostic Generic Join, the full baseline index set of the paper's
comparative study, binary-join / Hash-Trie-Join / Leapfrog baselines, the
AGM-bound planning machinery, and the workload generators behind every
figure and table of the evaluation.

Quickstart::

    from repro import Relation, join, parse_query

    edges = Relation("E", ("src", "dst"), [(0, 1), (1, 2), (2, 0)])
    query = parse_query("E1=E(a,b), E2=E(b,c), E3=E(c,a)")
    print(join(query, {"E1": edges, "E2": edges, "E3": edges}).count)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.core import SonicConfig, SonicIndex
from repro.core.adapter import IndexAdapter
from repro.engine import (
    IndexCache,
    JoinPlan,
    PreparedJoin,
    Session,
    ShardingSpec,
)
from repro.errors import (
    CapacityError,
    ConfigurationError,
    ExecutionError,
    PlanValidationError,
    QueryError,
    ReproError,
    SchemaError,
    UnsupportedOperationError,
)
from repro.joins import (
    BinaryHashJoin,
    GenericJoin,
    HashTrieJoin,
    JoinResult,
    LeapfrogTrieJoin,
    join,
    triangle_count,
)
from repro.planner import (
    Hypergraph,
    JoinQuery,
    agm_bound,
    clique_query,
    cycle_query,
    fractional_cover,
    parse_query,
    total_order,
)
from repro.storage import Catalog, Relation, Schema

__version__ = "1.0.0"

__all__ = [
    "BinaryHashJoin",
    "CapacityError",
    "Catalog",
    "ConfigurationError",
    "ExecutionError",
    "GenericJoin",
    "HashTrieJoin",
    "Hypergraph",
    "IndexAdapter",
    "IndexCache",
    "JoinPlan",
    "JoinQuery",
    "JoinResult",
    "LeapfrogTrieJoin",
    "PlanValidationError",
    "PreparedJoin",
    "QueryError",
    "Relation",
    "ReproError",
    "Schema",
    "SchemaError",
    "Session",
    "ShardingSpec",
    "SonicConfig",
    "SonicIndex",
    "UnsupportedOperationError",
    "agm_bound",
    "clique_query",
    "cycle_query",
    "fractional_cover",
    "join",
    "parse_query",
    "total_order",
    "triangle_count",
]
