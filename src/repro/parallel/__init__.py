"""Multiprocess sharded execution of the join engine (§3.4.2, for real).

The paper's parallel story is simulated elsewhere in this repo
(:mod:`repro.core.parallel` reproduces the §3.4.2 *locking protocol*
under the GIL, where wall-clock speedup is unobservable); this package
is the measured counterpart: **escape the GIL by sharding across
processes over shared-memory columns**.

The decomposition is the standard one for Generic Join: hash-partition
on the first attribute of the total order (every result binds it to
exactly one value, so shard result sets are disjoint), replicate
relations that never bind it, run the unmodified staged engine per
shard in a worker process, and concatenate.  Layers, parent → worker:

* :mod:`repro.parallel.partition` — deterministic vectorized hash
  split of :meth:`~repro.storage.relation.Relation.columns` arrays;
* :mod:`repro.parallel.shm` — shared-memory column transport (only
  segment *names* and dtype/length headers cross the boundary);
* :mod:`repro.parallel.runner` / :mod:`repro.parallel.pool` — the
  parent-side fan-out over a long-lived worker pool;
* :mod:`repro.parallel.worker` — the in-process shard executor
  (attach → rebuild relations → bind/plan/prepare/execute);
* :mod:`repro.parallel.merge` — deterministic concatenation, counter
  fold-in via :meth:`repro.obs.metrics.Metrics.merge`.

Users never touch these classes directly: ``join(..., parallel=K)``
(or ``REPRO_WORKERS=K``) plants a
:class:`~repro.engine.ir.ShardingSpec` in the plan, and the engine's
prepare/execute stages route through here.
"""

from repro.parallel.merge import merge_shard_results
from repro.parallel.partition import (
    build_sharded_columns,
    partition_order,
    shard_ids,
    shard_of,
)
from repro.parallel.pool import WorkerPool, resolve_workers, start_method
from repro.parallel.runner import ShardedRunner
from repro.parallel.shm import (
    SEGMENT_PREFIX,
    ColumnHandle,
    Segment,
    ShardedColumns,
    attach_array,
    export_array,
)
from repro.parallel.worker import run_shard_task, worker_main

__all__ = [
    "SEGMENT_PREFIX",
    "ColumnHandle",
    "Segment",
    "ShardedColumns",
    "ShardedRunner",
    "WorkerPool",
    "attach_array",
    "build_sharded_columns",
    "export_array",
    "merge_shard_results",
    "partition_order",
    "resolve_workers",
    "run_shard_task",
    "shard_ids",
    "shard_of",
    "start_method",
    "worker_main",
]
