"""Hash partitioning of relations on the first total-order attribute.

Generic Join shards on the leading attribute of the total order: every
result tuple binds it to exactly one value, so routing each value to
``hash(value) % K`` splits the result set into K disjoint pieces (the
classic distribution argument for Leapfrog Triejoin / NPRR).  Relations
that carry the attribute are split row-wise by that hash; relations
that never bind it are replicated to all shards.

The hash must be deterministic **across processes** — workers never
re-partition, but the equivalence tests re-derive shard membership, and
``PYTHONHASHSEED`` must not be able to skew the split.  Integer columns
(the int64-canonical :meth:`~repro.storage.relation.Relation.columns`
fast path) go through a vectorized :func:`repro.core.hashing.fmix64`;
object columns fall back to the same scalar :func:`hash_key` the
indexes use, so both paths agree on integer values.
"""

from __future__ import annotations

import numpy as np

from repro.core.hashing import hash_key
from repro.parallel.shm import ShardedColumns, export_array
from repro.storage.relation import Relation

_M1 = np.uint64(0xFF51AFD7ED558CCD)
_M2 = np.uint64(0xC4CEB9FE1A85EC53)
_S33 = np.uint64(33)


def _fmix64_array(values: np.ndarray) -> np.ndarray:
    """Vectorized Murmur3 finalizer, bit-identical to ``fmix64``."""
    v = values.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        v ^= v >> _S33
        v *= _M1
        v ^= v >> _S33
        v *= _M2
        v ^= v >> _S33
    return v


def _hash_value(value: object) -> int:
    """Deterministic scalar hash for object-dtype column values.

    Values outside :func:`hash_key`'s domain (floats, None, tuples...)
    hash by their ``repr`` — stable across processes, which is all a
    partitioner needs.
    """
    try:
        return hash_key(value)
    except TypeError:
        return hash_key(repr(value))


def shard_ids(column: np.ndarray, workers: int) -> np.ndarray:
    """Shard id (``0..workers-1``) of every row, from one column."""
    if workers <= 1:
        return np.zeros(len(column), dtype=np.int64)
    if column.dtype == np.int64:
        mixed = _fmix64_array(column)
        return (mixed % np.uint64(workers)).astype(np.int64)
    ids = np.empty(len(column), dtype=np.int64)
    for i, value in enumerate(column.tolist()):
        ids[i] = _hash_value(value) % workers
    return ids


def shard_of(value: object, workers: int) -> int:
    """The shard one attribute value routes to (test/debug helper)."""
    if workers <= 1:
        return 0
    if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
        return int(_fmix64_array(np.asarray([value], dtype=np.int64))[0]
                   % np.uint64(workers))
    return _hash_value(value) % workers


def partition_order(column: np.ndarray, workers: int,
                    ) -> "tuple[np.ndarray, np.ndarray]":
    """``(row_order, boundaries)`` grouping rows by shard id.

    ``row_order`` is a stable permutation of row positions sorted by
    shard id (rows within a shard keep relation order — determinism the
    merge layer leans on); ``boundaries`` has ``workers + 1`` entries,
    shard ``s`` owning ``row_order[boundaries[s]:boundaries[s+1]]``.
    """
    ids = shard_ids(column, workers)
    row_order = np.argsort(ids, kind="stable")
    boundaries = np.searchsorted(ids[row_order],
                                 np.arange(workers + 1, dtype=np.int64))
    return row_order, boundaries


def build_sharded_columns(relation: Relation, partition_position: "int | None",
                          workers: int) -> ShardedColumns:
    """Partition one relation's columns into K shards of shared memory.

    ``partition_position`` is the storage position of the partition
    attribute, or ``None`` when this relation does not bind it — then
    the columns are exported once and every shard references the same
    segments (replication by aliasing, not copying).
    """
    arrays = relation.columns()
    segments = []
    if partition_position is None:
        handles = []
        for array in arrays:
            handle, segment = export_array(array)
            handles.append(handle)
            if segment is not None:
                segments.append(segment)
        shard_handles = tuple(tuple(handles) for _ in range(workers))
        lengths = (len(relation),) * workers
    else:
        row_order, bounds = partition_order(arrays[partition_position],
                                            workers)
        per_shard = []
        lengths_list = []
        for shard in range(workers):
            rows = row_order[bounds[shard]:bounds[shard + 1]]
            lengths_list.append(int(len(rows)))
            handles = []
            for array in arrays:
                handle, segment = export_array(array.take(rows))
                handles.append(handle)
                if segment is not None:
                    segments.append(segment)
            per_shard.append(tuple(handles))
        shard_handles = tuple(per_shard)
        lengths = tuple(lengths_list)
    return ShardedColumns(
        workers=workers,
        partition_position=partition_position,
        shard_handles=shard_handles,
        lengths=lengths,
        segments=tuple(segments),
    )
