"""The parent-side sharded executor: fan out, collect, merge.

A :class:`ShardedRunner` is what a :class:`~repro.engine.prepared.PreparedJoin`
holds instead of driver adapters when its plan carries a
:class:`~repro.engine.ir.ShardingSpec`: the prepare stage has already
partitioned every relation's columns into shared memory
(:class:`~repro.parallel.shm.ShardedColumns`), and each execution
builds K picklable shard tasks — column handles, query text, and the
frozen plan decisions, nothing live — dispatches them over a lazily
started :class:`~repro.parallel.pool.WorkerPool`, and merges the
shard results deterministically (:mod:`repro.parallel.merge`).

Shards whose partitioned input is empty are skipped without crossing
the process boundary: a shard's results all bind the partition
attribute to values of that shard, so an empty partitioned relation
means an empty shard result.
"""

from __future__ import annotations

import uuid

from repro.joins.results import JoinResult, Stopwatch
from repro.obs.distributed import TraceContext, attach_sharded_profile
from repro.obs.flightrec import FLIGHT_RECORDER
from repro.obs.observer import NULL_OBSERVER
from repro.parallel.merge import add_shard_spans, merge_shard_results
from repro.parallel.pool import WorkerPool
from repro.parallel.shm import ShardedColumns


def query_text(query) -> str:
    """The query in canonical parseable form (what crosses the boundary)."""
    return ", ".join(
        f"{atom.alias}={atom.relation}({','.join(atom.attributes)})"
        for atom in query.atoms
    )


def plan_index_kwargs(plan) -> dict:
    """Reconstruct the ``**index_kwargs`` a worker re-plans with.

    Inverts what the per-algorithm planners folded into the first
    spec's options (every spec of a plan shares one option dict); plan
    -internal markers (the leapfrog ``sorted`` presort) are dropped —
    the worker's own planner re-derives them.
    """
    if not plan.index_specs:
        return {}
    options = dict(plan.index_specs[0].options)
    if plan.algorithm == "generic":
        kwargs: dict = {}
        if plan.index == "sonic":
            kwargs["sonic_bucket_size"] = options.pop("bucket_size", 8)
            kwargs["sonic_overallocation"] = options.pop("overallocation", 2.0)
        if options:
            kwargs["index_options"] = options
        return kwargs
    if plan.algorithm == "hashtrie":
        return {"lazy": options.get("lazy", True),
                "singleton_pruning": options.get("singleton_pruning", True)}
    return {}


def _empty_shard_result(shard: int) -> dict:
    return {"ok": True, "shard": shard, "skipped": True, "count": 0,
            "rows": [], "attributes": (), "algorithm": None, "build_s": 0.0,
            "probe_s": 0.0, "lookups": 0, "intermediates": 0,
            "counters": None}


class ShardedRunner:
    """Executes one sharded plan against its partitioned columns."""

    def __init__(self, bound, plan,
                 shard_columns: "dict[str, ShardedColumns]",
                 owned: bool = False):
        self.bound = bound
        self.plan = plan
        self.shard_columns = shard_columns
        #: whether close() should release the shared-memory segments
        #: (the cold one-shot path); session-cached columns are released
        #: by cache-entry garbage collection instead
        self.owned = owned
        self._pool: "WorkerPool | None" = None
        self._task_template = self._build_template()

    # ------------------------------------------------------------------
    def _build_template(self) -> dict:
        plan = self.plan
        return {
            "query": query_text(self.bound.query),
            "algorithm": plan.algorithm,
            "index": plan.index,
            "engine": plan.engine,
            "order": list(plan.total_order),
            "atom_order": list(plan.atom_order),
            "dynamic_seed": plan.dynamic_seed,
            "index_kwargs": plan_index_kwargs(plan),
        }

    def _plan_signature(self) -> tuple:
        template = self._task_template
        return (template["query"], template["algorithm"], template["index"],
                template["engine"], tuple(template["order"]),
                tuple(template["atom_order"]), template["dynamic_seed"],
                repr(sorted(template["index_kwargs"].items())))

    def _shard_task(self, shard: int, materialize: bool,
                    with_counters: bool) -> "dict | None":
        """The task for one shard, or ``None`` when the shard is empty."""
        relations = {}
        signature_parts = [self._plan_signature(), shard]
        for alias, columns in self.shard_columns.items():
            if (columns.partition_position is not None
                    and columns.lengths[shard] == 0):
                return None
            handles = columns.handles_for(shard)
            relations[alias] = {
                "name": alias,
                "attributes": list(
                    self.bound.relations[alias].schema.attributes),
                "handles": handles,
            }
            signature_parts.append(
                (alias, tuple(h.signature() for h in handles)))
        task = dict(self._task_template)
        task.update({
            "shard": shard,
            "signature": tuple(signature_parts),
            "relations": relations,
            "materialize": materialize,
            "with_counters": with_counters,
        })
        return task

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None or not self._pool.alive():
            if self._pool is not None:
                self._pool.close()
            self._pool = WorkerPool(self.plan.sharding.workers)
        return self._pool

    def execute(self, materialize: bool = False, obs=None,
                build_charge: float = 0.0,
                trace_out: "str | None" = None) -> JoinResult:
        """Run every shard and merge; parent wall clock is the probe.

        Every dispatched task carries a :class:`TraceContext` (one trace
        id per execution, a per-task parent-clock dispatch stamp), so
        profiled workers answer with calibratable spans and a full
        per-shard profile; with an enabled observer the merged result
        carries a :class:`~repro.obs.profile.ShardedJoinProfile` and
        ``trace_out``/``REPRO_TRACE_OUT`` gets the merged multi-pid
        Chrome trace.
        """
        observer = obs if obs is not None else NULL_OBSERVER
        workers = self.plan.sharding.workers
        trace_id = uuid.uuid4().hex[:16]
        window_start = Stopwatch.now_ns()
        watch = Stopwatch()
        with observer.tracer.span("shard_fanout", workers=workers,
                                  trace_id=trace_id):
            tasks = []
            shard_results: "list[dict]" = []
            for shard in range(workers):
                task = self._shard_task(shard, materialize, observer.enabled)
                if task is None:
                    shard_results.append(_empty_shard_result(shard))
                else:
                    task["trace"] = TraceContext(
                        trace_id, "shard_fanout",
                        Stopwatch.now_ns()).to_wire()
                    shard_results.append(task)  # placeholder, filled below
                    tasks.append(task)
            FLIGHT_RECORDER.record("runner.fanout", trace_id=trace_id,
                                   workers=workers, tasks=len(tasks))
            if tasks:
                pool = self._ensure_pool()
                for result in pool.run(tasks):
                    shard_results[result["shard"]] = result
        probe_seconds = watch.lap()

        executed = [r for r in shard_results if r.get("algorithm")]
        algorithm = (executed[0]["algorithm"] if executed
                     else self.plan.algorithm)
        attributes = (tuple(executed[0]["attributes"]) if executed
                      else self._fallback_attributes())
        if observer.enabled:
            observer.metrics.inc("parallel.executions")
            observer.metrics.inc("parallel.shards", workers)
            observer.metrics.inc("parallel.shards_skipped",
                                 workers - len(tasks))
            add_shard_spans(executed, observer, window_start)
        with observer.tracer.span("merge_shards", shards=len(shard_results),
                                  trace_id=trace_id):
            result = merge_shard_results(
                shard_results, attributes, materialize,
                algorithm=algorithm, index=self.plan.index,
                build_seconds=build_charge, probe_seconds=probe_seconds,
                observer=observer)
        FLIGHT_RECORDER.record("runner.merged", trace_id=trace_id,
                               results=result.count)
        if observer.enabled:
            attach_sharded_profile(self.bound.query, result, observer,
                                   self.plan, shard_results,
                                   trace_out=trace_out)
        return result

    def _fallback_attributes(self) -> "tuple[str, ...]":
        """Result schema when every shard was skipped (empty inputs)."""
        plan = self.plan
        if plan.algorithm != "binary":
            return plan.total_order
        output = list(self.bound.query.attributes_of(plan.atom_order[0]))
        for spec in plan.index_specs:
            key_arity = spec.key_arity or 0
            output.extend(spec.attribute_order[key_arity:])
        return tuple(output)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the pool; release owned shared memory (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self.owned:
            for columns in self.shard_columns.values():
                columns.close()

    def __repr__(self) -> str:
        pooled = "live" if self._pool is not None else "cold"
        return (f"ShardedRunner(workers={self.plan.sharding.workers}, "
                f"aliases={sorted(self.shard_columns)}, pool={pooled})")
