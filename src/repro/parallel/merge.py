"""Merging shard results back into one :class:`JoinResult`.

Shards partition the result set disjointly (each result tuple binds
the partition attribute to exactly one value, which hashes to exactly
one shard), so the merge is a concatenation: counts sum, materialized
rows append **in shard-id order** — and within a shard, workers emit
rows in the same order the single-process driver would over that
shard's rows — so repeated runs of the same sharded plan produce the
same sequence, which is what the equivalence tests sort-and-compare
against.

Worker-side counters fold into the parent's observer registry through
the thread-safe :meth:`repro.obs.metrics.Metrics.merge`, and every
shard contributes one ``shard`` span to the parent trace, so a
profiled sharded run reads like a profiled single-process run plus a
fan-out layer.
"""

from __future__ import annotations

from repro.joins.results import (
    CountingSink,
    JoinMetrics,
    JoinResult,
    MaterializingSink,
)
from repro.obs.metrics import Metrics


def merge_shard_results(shard_results: "list[dict]",
                        attributes: "tuple[str, ...]",
                        materialize: bool,
                        algorithm: str,
                        index: str,
                        build_seconds: float,
                        probe_seconds: float,
                        observer=None) -> JoinResult:
    """Fold per-shard result dicts into one parent :class:`JoinResult`.

    ``shard_results`` must already be in shard-id order (the pool
    returns task order).  ``build_seconds`` is the parent's §5.15
    charge (partition + transport on the first execution, 0 after);
    ``probe_seconds`` is the parent-side wall clock of the
    dispatch→collect→merge window, which *includes* the workers' index
    builds — per-shard build/probe splits stay visible through the
    shard spans and counters.
    """
    if materialize:
        sink = MaterializingSink()
        for result in shard_results:
            rows = result.get("rows") or ()
            sink.rows.extend(rows)
    else:
        sink = CountingSink()
        for result in shard_results:
            # counting sinks tally len(values) without materializing, so
            # a range stands in for the shard's (never-shipped) rows
            sink.emit_suffixes((), range(result["count"]))
    metrics = JoinMetrics(
        algorithm=algorithm,
        index=index,
        build_seconds=build_seconds,
        probe_seconds=probe_seconds,
        intermediate_tuples=sum(r["intermediates"] for r in shard_results),
        lookups=sum(r["lookups"] for r in shard_results),
        result_count=sink.count,
    )
    if observer is not None and observer.enabled:
        fold_shard_counters(shard_results, observer.metrics)
    return JoinResult(attributes=attributes, sink=sink, metrics=metrics)


def fold_shard_counters(shard_results: "list[dict]",
                        registry: Metrics) -> None:
    """Merge worker counter snapshots into the parent registry.

    Each worker snapshot becomes a throwaway :class:`Metrics` folded in
    via :meth:`~repro.obs.metrics.Metrics.merge` — one locked bulk fold
    per shard instead of one locked ``inc`` per counter — with every
    key prefixed ``shard.`` so parent-side counters stay separable.
    """
    for result in shard_results:
        counters = result.get("counters")
        if not counters:
            continue
        snapshot = Metrics()
        for name, value in counters.items():
            snapshot.counters[f"shard.{name}"] = value
        registry.merge(snapshot)


def add_shard_spans(shard_results: "list[dict]", observer,
                    window_start_ns: int) -> None:
    """One ``shard`` span per shard in the parent trace.

    Worker clocks are not aligned with the parent's, so spans are
    anchored at the parent's dispatch timestamp with the worker's own
    build+probe duration — good enough to see shard skew in a trace.
    """
    if observer is None or not observer.enabled:
        return
    for result in shard_results:
        duration_s = (result.get("build_s", 0.0)
                      + result.get("probe_s", 0.0))
        # the in-loop guard looks redundant under the early return, but
        # RA601 (now scoped over parallel/ too) reasons per loop body —
        # and K iterations make it free anyway
        if observer.enabled:
            observer.tracer.add_span(
                "shard", window_start_ns, int(duration_s * 1e9),
                shard=result.get("shard"),
                results=result.get("count"),
                algorithm=result.get("algorithm"),
            )
