"""The shard worker: runs one shard of a sharded plan per task.

Everything in this module runs **inside a worker process**.  The
process boundary is deliberately narrow: a task carries shared-memory
column handles, the query text, and the frozen plan decisions
(algorithm / index / engine / orders / options) — never a live index,
relation, driver, or lock.  The worker maps the columns, rebuilds
per-shard relations, and runs the **standard** staged pipeline
(:mod:`repro.engine.pipeline`) end to end, so a shard executes exactly
the code path the single-process engine does — which is what makes the
shard-equivalence property tests meaningful.

Entry points (:func:`worker_main`, :func:`run_shard_task`) are plain
module-level functions that capture no module state, so they survive
both ``fork`` and ``spawn`` start methods and pickle cleanly; the
process-model rows of the concurrency manifest
(``python -m repro.analysis --concurrency-manifest``) verify that
contract statically.

Workers keep a small LRU of prepared state keyed on the task's
segment-name signature: re-executing an unchanged sharded plan (the
session warm path) skips the attach/build work the same way the
parent's index cache does.
"""

from __future__ import annotations

import os
import threading
import traceback
from collections import OrderedDict

import numpy as np

from repro.parallel.shm import ColumnHandle, attach_array
from repro.storage.relation import Relation
from repro.storage.schema import Schema

#: prepared-state entries one worker keeps alive (per process, LRU)
STATE_CACHE_ENTRIES = 8


class _ColumnRows:
    """Lazy read-only row view over attached column arrays.

    Fills the ``Relation._rows`` slot of a worker-side relation: the
    drivers only iterate, measure and (rarely) membership-test rows,
    so tuples are materialized on demand from the columns instead of
    being shipped across the process boundary.
    """

    __slots__ = ("_arrays", "_length", "_materialized")

    def __init__(self, arrays: "tuple[np.ndarray, ...]", length: int):
        self._arrays = arrays
        self._length = length
        self._materialized: "list[tuple] | None" = None

    def _rows(self) -> "list[tuple]":
        rows = self._materialized
        if rows is None:
            columns = [array.tolist() for array in self._arrays]
            rows = list(zip(*columns)) if columns else []
            self._materialized = rows
        return rows

    def __len__(self) -> int:
        return self._length

    def __iter__(self):
        return iter(self._rows())

    def __contains__(self, row: object) -> bool:
        return row in self._rows()

    def __getitem__(self, item):
        return self._rows()[item]


def relation_from_handles(name: str, attributes: "tuple[str, ...]",
                          handles: "tuple[ColumnHandle, ...]",
                          ) -> "tuple[Relation, list]":
    """Reconstruct one shard relation from its column handles.

    Returns the relation plus the attached ``SharedMemory`` objects,
    which must stay referenced for as long as the relation is used
    (the arrays borrow their buffers).
    """
    arrays = []
    attachments = []
    for handle in handles:
        array, shm = attach_array(handle)
        arrays.append(array)
        if shm is not None:
            attachments.append(shm)
    length = handles[0].length if handles else 0
    relation = Relation.__new__(Relation)
    relation.name = name
    relation.schema = Schema(attributes)
    relation._mutlock = threading.Lock()
    relation._rows = _ColumnRows(tuple(arrays), length)
    relation._columns = {}
    relation._arrays = {i: array for i, array in enumerate(arrays)}
    relation._dtype_classes = {
        i: ("int64" if array.dtype == np.int64 else "object")
        for i, array in enumerate(arrays)
    }
    relation._version = [0]
    return relation, attachments


def _prepare_task(task: dict, obs=None) -> "tuple[object, list]":
    """bind → plan → prepare for one shard; returns prepared state.

    ``obs`` (the per-task observer, when the run is profiled) is
    threaded through every stage so the shard's bind/plan/prepare and
    ``build_index`` spans land in the per-shard trace the parent will
    rebase — a warm re-execution skips this function entirely, which is
    exactly why its profile carries no build spans.
    """
    # imported here, not at module level: the engine pipeline is the
    # parent-facing layer above this package, and the import must stay
    # one-directional (pipeline → runner → worker) at module scope
    from repro.engine.pipeline import bind, plan, prepare

    relations = {}
    attachments: list = []
    for alias, spec in task["relations"].items():
        relation, attached = relation_from_handles(
            spec["name"], tuple(spec["attributes"]),
            tuple(spec["handles"]))
        relations[alias] = relation
        attachments.extend(attached)
    bound = bind(task["query"], relations, obs=obs)
    join_plan = plan(
        bound,
        algorithm=task["algorithm"],
        index=task["index"] or "sonic",
        order=tuple(task["order"]) if task["order"] else None,
        binary_order=(tuple(task["atom_order"])
                      if task["atom_order"] else None),
        engine=task["engine"] or "tuple",
        dynamic_seed=task["dynamic_seed"],
        index_kwargs=task["index_kwargs"] or None,
        obs=obs,
        # a shard always runs single-process: without the explicit 0 an
        # inherited REPRO_WORKERS would shard the shard, recursively
        parallel=0,
    )
    prepared = prepare(bound, join_plan, cache=None, obs=obs)
    return prepared, attachments


def _shard_trace_path(out: str, shard: int) -> str:
    """A per-shard variant of an inherited ``REPRO_TRACE_OUT`` path.

    Every worker inherits the same environment; writing the parent's
    path verbatim would have K processes clobbering one file, so
    ``trace.json`` becomes ``trace.shard0.json`` etc.  (The parent
    separately writes the *merged* multi-pid document to the original
    path.)
    """
    from pathlib import PurePath

    path = PurePath(out)
    suffix = path.suffix or ".json"
    return str(path.with_name(f"{path.stem}.shard{shard}{suffix}"))


def run_shard_task(task: dict, state_cache: "OrderedDict | None" = None,
                   ) -> dict:
    """Execute one shard task; returns a picklable result dict.

    ``state_cache`` (signature → prepared state) lets a long-lived
    worker reuse the attach/build work across repeat executions of the
    same sharded plan; evicted entries close their shared-memory
    attachments.  Pass ``None`` for one-shot execution.

    Observability follows the repo's envflag convention rather than
    being pinned off: the task's ``with_counters`` request (the parent
    ran profiled) *or* an inherited ``REPRO_PROFILE``/``REPRO_TRACE_OUT``
    turns the worker-side observer on.  A profiled shard answers with
    its raw spans (worker-clock ns, for parent-side rebasing), its full
    per-shard profile payload, its pid, and the clock-calibration
    stamps; an inherited trace path is honored per shard
    (``trace.json`` → ``trace.shard0.json``), never clobbered.
    """
    from repro.core.envflag import resolve_flag, resolve_str
    from repro.joins.results import Stopwatch
    from repro.obs.observer import JoinObserver, NULL_OBSERVER

    received_ns = Stopwatch.now_ns()
    trace = task.get("trace") or {}
    with_obs = (task.get("with_counters", False)
                or resolve_flag(None, "REPRO_PROFILE")
                or bool(resolve_str(None, "REPRO_TRACE_OUT")))
    observer = JoinObserver() if with_obs else NULL_OBSERVER

    signature = task["signature"]
    entry = state_cache.get(signature) if state_cache is not None else None
    if entry is not None:
        state_cache.move_to_end(signature)
    else:
        entry = _prepare_task(task, obs=observer if with_obs else None)
        if state_cache is not None:
            state_cache[signature] = entry
            while len(state_cache) > STATE_CACHE_ENTRIES:
                _, (_, old_attachments) = state_cache.popitem(last=False)
                for shm in old_attachments:
                    shm.close()
    prepared, _attachments = entry

    inherited_out = resolve_str(None, "REPRO_TRACE_OUT")
    trace_out = (_shard_trace_path(inherited_out, task["shard"])
                 if inherited_out and with_obs else None)
    result = prepared.execute(materialize=task["materialize"], obs=observer,
                              trace_out=trace_out)
    metrics = result.metrics
    response = {
        "ok": True,
        "shard": task["shard"],
        "count": result.count,
        "rows": result.rows if task["materialize"] else None,
        "attributes": tuple(result.attributes),
        "algorithm": metrics.algorithm,
        "build_s": metrics.build_seconds,
        "probe_s": metrics.probe_seconds,
        "lookups": metrics.lookups,
        "intermediates": metrics.intermediate_tuples,
        "counters": (dict(observer.metrics.counters) if with_obs else None),
    }
    if with_obs:
        response["pid"] = os.getpid()
        response["trace_id"] = trace.get("trace_id")
        response["spans"] = observer.tracer.export_spans()
        response["profile"] = (result.profile.as_dict()
                               if result.profile is not None else None)
        response["clock"] = {
            "issued_ns": trace.get("issued_ns"),
            "received_ns": received_ns,
            "responded_ns": Stopwatch.now_ns(),
        }
    return response


def worker_main(conn) -> None:
    """One worker process's request loop (the pool's process target).

    Receives ``("run", task)`` messages on ``conn``, answers with
    result dicts, and exits on ``("shutdown", None)`` or a closed pipe.
    A failing task is reported (with its traceback) instead of killing
    the worker; only the connection itself failing ends the loop.
    """
    state_cache: OrderedDict = OrderedDict()
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if not message or message[0] == "shutdown":
                break
            _, task = message
            try:
                response = run_shard_task(task, state_cache)
            except BaseException as exc:  # report, don't die
                response = {
                    "ok": False,
                    "shard": task.get("shard"),
                    "error": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(),
                }
            conn.send(response)
    finally:
        for _, attachments in state_cache.values():
            for shm in attachments:
                shm.close()
        conn.close()
