"""Shared-memory column transport between the parent and shard workers.

The partitioner writes each shard's column arrays into POSIX shared
memory (``multiprocessing.shared_memory``); only the **names** of the
segments — wrapped in :class:`ColumnHandle` descriptors with the dtype
and length header a worker needs to map the bytes back into a numpy
array — cross the process boundary.  Workers attach read-only and
zero-copy; no tuple is ever pickled for an int64 column.  Object-dtype
columns (the non-int64 fallback of
:meth:`~repro.storage.relation.Relation.columns`) have no stable byte
representation, so they ride **inline** in the handle as a pickled
value list — correct for any hashable value, just not zero-copy.

**Lifecycle.**  Every segment is owned by exactly one
:class:`Segment` in the creating process; ``close()`` (or garbage
collection of the owner, via ``weakref.finalize``) unmaps and unlinks
it.  Workers attach by name and never unlink.  Two guards keep a
crashing or forked process from tearing down segments it does not own:
the finalizer checks it runs in the creating process (a fork inherits
the ``Segment`` objects; its exit must not unlink the parent's
segments), and worker attaches leave their automatic
``resource_tracker`` registration in place — workers share the
parent's tracker daemon, where the duplicate add is a set no-op and
the parent's unlink retires the name exactly once (see
:func:`attach_array`).  All names carry the :data:`SEGMENT_PREFIX`, so
a test or CI job can assert ``/dev/shm`` holds no leaked
``repro_shm_*`` entries.
"""

from __future__ import annotations

import os
import pickle
import secrets
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

#: every segment name starts with this — the leak-detection hook
SEGMENT_PREFIX = "repro_shm_"


def _new_segment_name() -> str:
    return f"{SEGMENT_PREFIX}{os.getpid():x}_{secrets.token_hex(8)}"


@dataclass(frozen=True)
class ColumnHandle:
    """Process-crossing descriptor of one shard column.

    ``kind="shm"``: ``name`` is a shared-memory segment holding
    ``length`` items of ``dtype`` — the zero-copy path.
    ``kind="inline"``: ``payload`` is a pickled value list (object
    columns and zero-length columns, where a segment is not worth its
    page).  Handles are plain frozen data — safe to pickle into a
    worker task, hashable for cache signatures.
    """

    kind: str
    dtype: str
    length: int
    name: "str | None" = None
    payload: "bytes | None" = None

    def signature(self) -> tuple:
        """A cheap identity for worker-side prepared-state caching."""
        if self.kind == "shm":
            return ("shm", self.name, self.length)
        payload = self.payload or b""
        return ("inline", self.length, len(payload), hash(payload))


def _release_segment(shm: shared_memory.SharedMemory, owner_pid: int) -> None:
    """Unmap, and unlink iff running in the process that created it."""
    try:
        shm.close()
    except (OSError, BufferError):
        pass
    if os.getpid() != owner_pid:
        return
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


class Segment:
    """Owning wrapper of one created segment; unlinks exactly once."""

    __slots__ = ("name", "nbytes", "_finalizer", "__weakref__")

    def __init__(self, shm: shared_memory.SharedMemory):
        self.name = shm.name
        self.nbytes = shm.size
        self._finalizer = weakref.finalize(self, _release_segment, shm,
                                           os.getpid())

    def close(self) -> None:
        self._finalizer()

    @property
    def released(self) -> bool:
        return not self._finalizer.alive

    def __repr__(self) -> str:
        state = "released" if self.released else f"{self.nbytes}B"
        return f"Segment({self.name!r}, {state})"


def export_array(array: np.ndarray) -> "tuple[ColumnHandle, Segment | None]":
    """One column array → a handle (and the owning segment, if any)."""
    if array.dtype == object or array.nbytes == 0:
        payload = pickle.dumps(array.tolist(),
                               protocol=pickle.HIGHEST_PROTOCOL)
        handle = ColumnHandle(kind="inline", dtype=str(array.dtype),
                              length=len(array), payload=payload)
        return handle, None
    shm = shared_memory.SharedMemory(create=True, size=array.nbytes,
                                     name=_new_segment_name())
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
    view[:] = array
    handle = ColumnHandle(kind="shm", dtype=str(array.dtype),
                          length=len(array), name=shm.name)
    return handle, Segment(shm)


def attach_array(handle: ColumnHandle,
                 ) -> "tuple[np.ndarray, shared_memory.SharedMemory | None]":
    """A handle → a read-only array (worker side).

    The returned ``SharedMemory`` must stay referenced as long as the
    array is used — the array borrows its buffer.  ``None`` for inline
    handles.
    """
    if handle.kind == "inline":
        values = pickle.loads(handle.payload or b"")
        if handle.dtype == "object":
            array = np.empty(len(values), dtype=object)
            array[:] = values
        else:
            array = np.asarray(values, dtype=np.dtype(handle.dtype))
        array.flags.writeable = False
        return array, None
    shm = shared_memory.SharedMemory(name=handle.name)
    # Python ≤ 3.12 registers attaches with the resource tracker as if
    # they were creations.  Workers share the parent's tracker daemon
    # (fork inherits its fd; spawn passes it in the preparation data)
    # and registrations live in a set, so the duplicate add is a no-op
    # and the parent's eventual unlink retires the name exactly once —
    # unregistering here instead would cancel the parent's registration
    # and turn that unlink into tracker KeyError noise.
    array = np.ndarray((handle.length,), dtype=np.dtype(handle.dtype),
                       buffer=shm.buf)
    array.flags.writeable = False
    return array, shm


class ShardedColumns:
    """One relation's columns, partitioned into K shards of shared memory.

    The prepare-stage artifact the session cache holds for a sharded
    plan (in place of a built index): per-shard
    :class:`ColumnHandle` rows plus the owning :class:`Segment` set.
    ``partition_position`` is the storage position the rows were
    hash-split on, or ``None`` when the relation is replicated to all
    shards (then every shard's handles alias the same segments).
    Attribute names are deliberately absent — renamed views share one
    fingerprint and therefore one cache entry; the worker task carries
    each alias's query attributes separately.
    """

    def __init__(self, workers: int, partition_position: "int | None",
                 shard_handles: "tuple[tuple[ColumnHandle, ...], ...]",
                 lengths: "tuple[int, ...]",
                 segments: "tuple[Segment, ...]"):
        self.workers = workers
        self.partition_position = partition_position
        self.shard_handles = shard_handles
        self.lengths = lengths
        self._segments = segments

    def handles_for(self, shard: int) -> "tuple[ColumnHandle, ...]":
        return self.shard_handles[shard]

    def memory_usage(self) -> int:
        """Transport bytes: owned segments plus inline payloads."""
        total = sum(segment.nbytes for segment in self._segments)
        seen_inline = 0
        for handles in self.shard_handles:
            for handle in handles:
                if handle.kind == "inline" and handle.payload:
                    seen_inline += len(handle.payload)
            if self.partition_position is None:
                break  # replicated shards alias one handle row
        return total + seen_inline

    def close(self) -> None:
        """Release every owned segment (idempotent)."""
        for segment in self._segments:
            segment.close()

    def __repr__(self) -> str:
        kind = ("replicated" if self.partition_position is None
                else f"split@{self.partition_position}")
        return (f"ShardedColumns(workers={self.workers}, {kind}, "
                f"lengths={list(self.lengths)})")
