"""A small long-lived pool of shard worker processes.

One :class:`WorkerPool` owns K processes, each running
:func:`repro.parallel.worker.worker_main` over a private duplex pipe.
Tasks are dispatched round-robin (shard ``i`` → worker ``i % K``; with
the usual one-task-per-worker fan-out that is an exact assignment) and
results collected in task order, so the merge layer sees a
deterministic sequence regardless of worker finishing order.

The start method comes from ``REPRO_MP_START`` when set, else ``fork``
where available (cheap on Linux — workers inherit the imported engine)
with ``spawn`` as the portable fallback.  Workers are daemons: an
abandoned pool cannot outlive its parent.  A worker death or task
timeout surfaces as :class:`~repro.errors.ExecutionError` carrying the
worker-side traceback when there is one — plus the parent's
flight-recorder tail (``exc.flight_log``), so the dispatch/collect
history leading up to the failure travels with the report.

Every collected result is stamped with the parent-clock receive time
(``collected_ns``) — the fourth stamp of the NTP-style clock
calibration :mod:`repro.obs.distributed` runs per task round trip.
"""

from __future__ import annotations

import multiprocessing as mp

from repro.core.envflag import env_int, env_str
from repro.errors import ConfigurationError, ExecutionError
from repro.obs.flightrec import FLIGHT_RECORDER
from repro.parallel.worker import worker_main


def _execution_error(message: str, **fields) -> ExecutionError:
    """An :class:`ExecutionError` carrying the flight-recorder tail.

    The failure itself is recorded first, so the dump's last line names
    what went wrong; the full tail rides on ``exc.flight_log`` for
    post-mortem reading without bloating ``str(exc)``.
    """
    FLIGHT_RECORDER.record("pool.error", message.splitlines()[0], **fields)
    exc = ExecutionError(message)
    exc.flight_log = FLIGHT_RECORDER.dump_text()
    return exc

#: seconds the parent waits on one shard result before giving up
DEFAULT_TASK_TIMEOUT = 300.0


def resolve_workers(parallel: "int | None") -> int:
    """The effective worker count: explicit arg wins, else ``REPRO_WORKERS``.

    Returns 0 for "no sharding" (the single-process path); explicit
    non-positive values other than 0/None are configuration errors.
    """
    workers = parallel if parallel is not None else env_int("REPRO_WORKERS", 0)
    if workers is None or workers == 0:
        return 0
    if workers < 0:
        raise ConfigurationError(
            f"parallel={workers}: worker count must be >= 1")
    return int(workers)


def start_method() -> str:
    """The multiprocessing start method the pool will use."""
    explicit = env_str("REPRO_MP_START")
    if explicit:
        return explicit
    methods = mp.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class WorkerPool:
    """K worker processes answering shard tasks over private pipes."""

    def __init__(self, workers: int, method: "str | None" = None):
        if workers < 1:
            raise ConfigurationError(
                f"worker pool needs >= 1 worker, got {workers}")
        self.workers = workers
        self.method = method or start_method()
        context = mp.get_context(self.method)
        self._processes = []
        self._connections = []
        for i in range(workers):
            parent_end, child_end = context.Pipe(duplex=True)
            process = context.Process(target=worker_main, args=(child_end,),
                                      name=f"repro-shard-{i}", daemon=True)
            process.start()
            child_end.close()
            self._processes.append(process)
            self._connections.append(parent_end)
        self._closed = False
        FLIGHT_RECORDER.record("pool.start", workers=workers,
                               method=self.method)

    # ------------------------------------------------------------------
    def run(self, tasks: "list[dict]",
            timeout: "float | None" = None) -> "list[dict]":
        """Dispatch tasks round-robin, return results in task order.

        Task payloads are small (handles and plan decisions), so every
        task is sent before any result is read — the pipe buffer
        comfortably holds the requests while workers stream answers.
        """
        if self._closed:
            raise _execution_error("worker pool is closed")
        if timeout is None:
            timeout = float(env_int("REPRO_SHARD_TIMEOUT",
                                    int(DEFAULT_TASK_TIMEOUT)))
        FLIGHT_RECORDER.record("pool.dispatch", tasks=len(tasks),
                               workers=self.workers)
        assignment = [[] for _ in range(self.workers)]
        for position, task in enumerate(tasks):
            assignment[position % self.workers].append(position)
        for worker_id, positions in enumerate(assignment):
            for position in positions:
                if FLIGHT_RECORDER.enabled:
                    FLIGHT_RECORDER.record(
                        "task.send", worker=worker_id,
                        shard=tasks[position].get("shard"))
                try:
                    self._connections[worker_id].send(("run", tasks[position]))
                except (BrokenPipeError, OSError):
                    exitcode = self._processes[worker_id].exitcode
                    self.close()
                    raise _execution_error(
                        f"shard worker {worker_id} died (exitcode "
                        f"{exitcode}) before accepting a task",
                        worker=worker_id, exitcode=exitcode) from None
        results: "list[dict | None]" = [None] * len(tasks)
        for worker_id, positions in enumerate(assignment):
            for position in positions:
                results[position] = self._collect(worker_id, timeout)
        failures = [r for r in results if not r.get("ok")]
        if failures:
            first = failures[0]
            detail = first.get("traceback") or first.get("error", "unknown")
            raise _execution_error(
                f"shard {first.get('shard')} failed in worker process:\n"
                f"{detail}", shard=first.get("shard"))
        return results  # type: ignore[return-value]

    def _collect(self, worker_id: int, timeout: float) -> dict:
        connection = self._connections[worker_id]
        if not connection.poll(timeout):
            self.close()
            raise _execution_error(
                f"shard worker {worker_id} produced no result within "
                f"{timeout:.0f}s (REPRO_SHARD_TIMEOUT)",
                worker=worker_id, timeout_s=timeout)
        try:
            result = connection.recv()
        except (EOFError, OSError):
            exitcode = self._processes[worker_id].exitcode
            self.close()
            raise _execution_error(
                f"shard worker {worker_id} died (exitcode {exitcode}) "
                "before answering",
                worker=worker_id, exitcode=exitcode) from None
        if isinstance(result, dict):
            # parent-clock receive stamp: the T1 of the NTP-style clock
            # calibration (repro.obs.distributed.calibrate_clock_offset)
            from repro.joins.results import Stopwatch

            result["collected_ns"] = Stopwatch.now_ns()
            if FLIGHT_RECORDER.enabled:
                FLIGHT_RECORDER.record("task.collect", worker=worker_id,
                                       shard=result.get("shard"),
                                       ok=result.get("ok"))
        return result

    # ------------------------------------------------------------------
    def alive(self) -> bool:
        return (not self._closed
                and all(p.is_alive() for p in self._processes))

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        FLIGHT_RECORDER.record("pool.close", workers=self.workers)
        for connection in self._connections:
            try:
                connection.send(("shutdown", None))
            except (OSError, ValueError, BrokenPipeError):
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for connection in self._connections:
            try:
                connection.close()
            except OSError:
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{self.workers} workers"
        return f"WorkerPool({state}, method={self.method!r})"
