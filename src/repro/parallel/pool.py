"""A small long-lived pool of shard worker processes.

One :class:`WorkerPool` owns K processes, each running
:func:`repro.parallel.worker.worker_main` over a private duplex pipe.
Tasks are dispatched round-robin (shard ``i`` → worker ``i % K``; with
the usual one-task-per-worker fan-out that is an exact assignment) and
results collected in task order, so the merge layer sees a
deterministic sequence regardless of worker finishing order.

The start method comes from ``REPRO_MP_START`` when set, else ``fork``
where available (cheap on Linux — workers inherit the imported engine)
with ``spawn`` as the portable fallback.  Workers are daemons: an
abandoned pool cannot outlive its parent.  A worker death or task
timeout surfaces as :class:`~repro.errors.ExecutionError` carrying the
worker-side traceback when there is one.
"""

from __future__ import annotations

import multiprocessing as mp

from repro.core.envflag import env_int, env_str
from repro.errors import ConfigurationError, ExecutionError
from repro.parallel.worker import worker_main

#: seconds the parent waits on one shard result before giving up
DEFAULT_TASK_TIMEOUT = 300.0


def resolve_workers(parallel: "int | None") -> int:
    """The effective worker count: explicit arg wins, else ``REPRO_WORKERS``.

    Returns 0 for "no sharding" (the single-process path); explicit
    non-positive values other than 0/None are configuration errors.
    """
    workers = parallel if parallel is not None else env_int("REPRO_WORKERS", 0)
    if workers is None or workers == 0:
        return 0
    if workers < 0:
        raise ConfigurationError(
            f"parallel={workers}: worker count must be >= 1")
    return int(workers)


def start_method() -> str:
    """The multiprocessing start method the pool will use."""
    explicit = env_str("REPRO_MP_START")
    if explicit:
        return explicit
    methods = mp.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class WorkerPool:
    """K worker processes answering shard tasks over private pipes."""

    def __init__(self, workers: int, method: "str | None" = None):
        if workers < 1:
            raise ConfigurationError(
                f"worker pool needs >= 1 worker, got {workers}")
        self.workers = workers
        self.method = method or start_method()
        context = mp.get_context(self.method)
        self._processes = []
        self._connections = []
        for i in range(workers):
            parent_end, child_end = context.Pipe(duplex=True)
            process = context.Process(target=worker_main, args=(child_end,),
                                      name=f"repro-shard-{i}", daemon=True)
            process.start()
            child_end.close()
            self._processes.append(process)
            self._connections.append(parent_end)
        self._closed = False

    # ------------------------------------------------------------------
    def run(self, tasks: "list[dict]",
            timeout: "float | None" = None) -> "list[dict]":
        """Dispatch tasks round-robin, return results in task order.

        Task payloads are small (handles and plan decisions), so every
        task is sent before any result is read — the pipe buffer
        comfortably holds the requests while workers stream answers.
        """
        if self._closed:
            raise ExecutionError("worker pool is closed")
        if timeout is None:
            timeout = float(env_int("REPRO_SHARD_TIMEOUT",
                                    int(DEFAULT_TASK_TIMEOUT)))
        assignment = [[] for _ in range(self.workers)]
        for position, task in enumerate(tasks):
            assignment[position % self.workers].append(position)
        for worker_id, positions in enumerate(assignment):
            for position in positions:
                try:
                    self._connections[worker_id].send(("run", tasks[position]))
                except (BrokenPipeError, OSError):
                    exitcode = self._processes[worker_id].exitcode
                    self.close()
                    raise ExecutionError(
                        f"shard worker {worker_id} died (exitcode "
                        f"{exitcode}) before accepting a task") from None
        results: "list[dict | None]" = [None] * len(tasks)
        for worker_id, positions in enumerate(assignment):
            for position in positions:
                results[position] = self._collect(worker_id, timeout)
        failures = [r for r in results if not r.get("ok")]
        if failures:
            first = failures[0]
            detail = first.get("traceback") or first.get("error", "unknown")
            raise ExecutionError(
                f"shard {first.get('shard')} failed in worker process:\n"
                f"{detail}")
        return results  # type: ignore[return-value]

    def _collect(self, worker_id: int, timeout: float) -> dict:
        connection = self._connections[worker_id]
        if not connection.poll(timeout):
            self.close()
            raise ExecutionError(
                f"shard worker {worker_id} produced no result within "
                f"{timeout:.0f}s (REPRO_SHARD_TIMEOUT)")
        try:
            return connection.recv()
        except (EOFError, OSError):
            exitcode = self._processes[worker_id].exitcode
            self.close()
            raise ExecutionError(
                f"shard worker {worker_id} died (exitcode {exitcode}) "
                "before answering") from None

    # ------------------------------------------------------------------
    def alive(self) -> bool:
        return (not self._closed
                and all(p.is_alive() for p in self._processes))

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for connection in self._connections:
            try:
                connection.send(("shutdown", None))
            except (OSError, ValueError, BrokenPipeError):
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for connection in self._connections:
            try:
                connection.close()
            except OSError:
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{self.workers} workers"
        return f"WorkerPool({state}, method={self.method!r})"
