"""``python -m repro`` — self-check demo plus tooling subcommands.

With no arguments (or ``selfcheck``) this builds a small graph, runs the
triangle query through every join algorithm and every prefix-capable
index, checks the results against a brute-force oracle, and prints a
one-screen summary.  Exits non-zero on any disagreement, so it doubles as
a smoke test for packaging.

Subcommands::

    python -m repro selfcheck          # the default: algorithm/index sweep
    python -m repro analysis [args…]   # static analysis (see repro.analysis)
    python -m repro obs [args…]        # join profiler (see repro.obs)
"""

from __future__ import annotations

import sys
import time


def selfcheck() -> int:
    from repro import __version__, join, parse_query
    from repro.data import random_edge_relation, triangle_count_truth
    from repro.indexes import prefix_capable_indexes
    from repro.planner import Hypergraph, fractional_cover

    print(f"repro {__version__} — SonicJoin reproduction self-check")
    edges = random_edge_relation(45, 300, seed=42)
    truth = triangle_count_truth(edges)
    query = parse_query("E1=E(a,b), E2=E(b,c), E3=E(c,a)")
    source = {"E1": edges, "E2": edges, "E3": edges}

    cover = fractional_cover(Hypergraph.from_query(query),
                             {a.alias: len(edges) for a in query})
    print(f"graph: {len(edges)} edges; triangles (oracle): {truth}; "
          f"AGM bound: {cover.bound:.0f}")

    failures = 0
    for algorithm in ("generic", "binary", "hashtrie", "leapfrog", "auto"):
        start = time.perf_counter()
        count = join(query, source, algorithm=algorithm).count
        elapsed = (time.perf_counter() - start) * 1e3
        status = "ok" if count == truth else f"MISMATCH (got {count})"
        failures += count != truth
        print(f"  algorithm {algorithm:9s} {elapsed:7.1f} ms  {status}")
    for index in prefix_capable_indexes():
        start = time.perf_counter()
        count = join(query, source, algorithm="generic", index=index).count
        elapsed = (time.perf_counter() - start) * 1e3
        status = "ok" if count == truth else f"MISMATCH (got {count})"
        failures += count != truth
        print(f"  GJ index  {index:9s} {elapsed:7.1f} ms  {status}")

    if failures:
        print(f"self-check FAILED: {failures} disagreement(s)")
        return 1
    print("self-check passed; see examples/ and benchmarks/ for more")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] == "selfcheck":
        return selfcheck()
    if argv[0] == "analysis":
        from repro.analysis.cli import main as analysis_main

        return analysis_main(argv[1:])
    if argv[0] == "obs":
        from repro.obs.cli import main as obs_main

        return obs_main(argv[1:])
    print(f"unknown subcommand {argv[0]!r}; "
          "usage: python -m repro [selfcheck | analysis | obs …]",
          file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
