"""Query Plan Tree and total attribute order (§2.3.1, Fig 2).

The Generic Join requires every relation indexed in an order aligned with
one global *total order* γ of the query attributes.  Ngo et al. derive γ
from a **Query Plan Tree**: a binary tree over the query's hyperedges where

* each node carries a hyperedge (an atom) and a *universe* (a subset of
  query attributes);
* the root's universe is all query attributes;
* given a node with universe *u* and edge attributes *A*, the next edge
  (in an arbitrary edge order) labels both children — the *right* child's
  universe is ``u ∩ A`` and the *left* child's universe is ``u \\ A``;
* leaves are reached when the universe is empty or the edge list is
  exhausted.

The total order is read off the tree so that attributes resolved deeper in
the recursion (the right-spine intersections) come later — the paper's
Fig 2 walks the construction for a five-relation query and obtains
``γ = ⟨g,i,b,a,d,e,f,c,h⟩``.  The paper also notes the resulting γ need
not be *compatible* with every relation (no relation's attribute set need
be a suffix of γ); :func:`is_compatible` checks the suffix property and
the join driver simply permutes each relation into γ-order regardless,
which is all prefix lookups need.

This module is the faithful Python rendering the paper itself resorts to
(§4.3: "we implemented the total order algorithm in a Python script").
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.planner.query import JoinQuery


@dataclass
class QPNode:
    """One node of the Query Plan Tree."""

    edge: str                      # atom alias labelling this node
    attributes: frozenset[str]     # the edge's attributes
    universe: frozenset[str]       # attributes this subtree must order
    left: "QPNode | None" = None
    right: "QPNode | None" = None
    depth: int = 0
    _resolved: tuple[str, ...] = field(default_factory=tuple)

    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


def build_qp_tree(query: JoinQuery) -> QPNode:
    """Construct the QP-tree for ``query`` using the atoms' given order."""
    atoms = list(query.atoms)
    if not atoms:
        raise QueryError("cannot build a QP-tree for an empty query")
    universe = frozenset(query.attributes)
    return _build(atoms, 0, universe, 0)


def _build(atoms: list, index: int, universe: frozenset[str], depth: int) -> QPNode:
    atom = atoms[index]
    node = QPNode(
        edge=atom.alias,
        attributes=frozenset(atom.attributes),
        universe=universe,
        depth=depth,
    )
    if index + 1 < len(atoms) and universe:
        right_universe = universe & node.attributes
        left_universe = universe - node.attributes
        # both children are labelled by the *next* hyperedge (§2.3.1)
        if left_universe:
            node.left = _build(atoms, index + 1, left_universe, depth + 1)
        if right_universe:
            node.right = _build(atoms, index + 1, right_universe, depth + 1)
    return node


def total_order(query: JoinQuery) -> tuple[str, ...]:
    """The total attribute order γ for ``query`` (§2.3.1).

    Attributes are emitted leaf-first along the left spine (the residual
    universes, resolved outside-in), with each node's intersection
    attributes following — attributes settled deeper in the recursion come
    earlier within their group.  The paper leaves the intra-group emission
    order unspecified (its Fig 2 example, like ours, yields an order that
    is *incompatible* with the query and relies on per-relation
    permutation); the properties that matter — every attribute appears
    exactly once, and attributes outside an edge's universe never precede
    the universe they separate — are what the tests pin down.
    """
    root = build_qp_tree(query)
    ordered: list[str] = []
    emitted: set[str] = set()

    def emit(attributes) -> None:
        for attribute in attributes:
            if attribute not in emitted:
                emitted.add(attribute)
                ordered.append(attribute)

    def visit(node: QPNode | None) -> None:
        if node is None:
            return
        # left subtree first: attributes outside this edge's coverage are
        # resolved before the edge's own intersection attributes
        visit(node.left)
        if node.is_leaf():
            emit(sorted(node.universe))
            return
        visit(node.right)
        emit(sorted(node.universe & node.attributes))
        emit(sorted(node.universe))

    visit(root)
    # safety net: any attribute the traversal missed goes last
    emit(query.attributes)
    return tuple(ordered)


def is_compatible(order: Sequence[str], query: JoinQuery) -> bool:
    """Does some atom's attribute set form a suffix of ``order`` (§2.3.1)?

    The paper's Fig 2 example is *not* compatible; the Generic Join then
    relies on per-relation permutation rather than shared suffixes.
    """
    order = list(order)
    for atom in query.atoms:
        want = set(atom.attributes)
        suffix = order[len(order) - len(want):]
        if set(suffix) == want:
            return True
    return False


def connectivity_order(query: JoinQuery) -> tuple[str, ...]:
    """Total order for attribute-at-a-time execution: join keys first.

    The QP-tree order of :func:`total_order` follows Ngo et al.'s
    construction, which is stated for the *relation-recursive* Generic
    Join (Alg. 1 decomposes by relations).  The attribute-at-a-time form
    every practical system executes (see
    :class:`repro.joins.generic_join.GenericJoin`) additionally needs the
    order to stay *connected*: binding attributes private to different
    relations before any shared attribute enumerates their cross product.
    This heuristic — highest-degree attribute first, then always an
    attribute sharing an atom with the bound set, ties broken by degree —
    is the standard practice ([34]) and is the execution default in
    :func:`repro.joins.executor.join`.
    """
    degree = {attribute: len(query.atoms_with(attribute))
              for attribute in query.attributes}
    remaining = list(query.attributes)
    order: list[str] = []
    bound_atoms: set[str] = set()

    def connected(attribute: str) -> bool:
        return any(atom.alias in bound_atoms
                   for atom in query.atoms_with(attribute))

    while remaining:
        if order:
            candidates = [a for a in remaining if connected(a)] or remaining
        else:
            candidates = remaining
        best = max(candidates, key=lambda a: (degree[a], -remaining.index(a)))
        order.append(best)
        remaining.remove(best)
        for atom in query.atoms_with(best):
            bound_atoms.add(atom.alias)
    return tuple(order)


def order_heuristic_cardinality(query: JoinQuery,
                                cardinalities: dict[str, int]) -> tuple[str, ...]:
    """Alternative total order: greedy by ascending attribute selectivity.

    Orders attributes by the minimum cardinality of the relations binding
    them (most selective first), a common heuristic in WCOJ systems [34].
    Exposed so the ablation bench can compare order policies.
    """
    def score(attribute: str) -> tuple[int, str]:
        sizes = [cardinalities.get(atom.alias, 0)
                 for atom in query.atoms_with(attribute)]
        return (min(sizes) if sizes else 0, attribute)

    return tuple(sorted(query.attributes, key=score))
