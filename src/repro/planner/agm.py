"""Fractional edge covers and the AGM bound (§2.1–2.2).

Given a query hypergraph ``H(V, E)`` and relation cardinalities ``N_e``,
the tightest AGM bound solves the linear program

.. math::

    \\min \\sum_{e \\in E} \\log(N_e)\\, u_e
    \\quad\\text{s.t.}\\quad \\sum_{e \\ni v} u_e \\ge 1 \\;\\forall v \\in V,
    \\qquad u_e \\ge 0,

whose optimum yields ``|Q| ≤ ∏ N_e^{u_e}`` (the paper reproduces this LP
verbatim in §2.2).  We solve it with :func:`scipy.optimize.linprog`
(HiGHS), returning the cover weights and the bound.  For the paper's
triangle example with ``|R|=|S|=|T|=n`` this produces
``u = (1/2, 1/2, 1/2)`` and the famous ``n^{3/2}``.

The Generic Join also needs AGM bounds for *sub-problems* with rescaled
cover weights (Alg. 1); :func:`agm_bound` accepts any hypergraph, so the
join driver simply restricts the hypergraph and re-solves (results are
memoized per (structure, sizes) key by the caller).
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass
from functools import lru_cache

import numpy as np
from scipy.optimize import linprog

from repro.errors import QueryError
from repro.planner.hypergraph import Hypergraph

_LOG_FLOOR = 1e-12


@dataclass(frozen=True)
class FractionalCover:
    """An optimal fractional edge cover and the bound it certifies."""

    weights: dict[str, float]
    bound: float
    log_bound: float

    def weight(self, edge: str) -> float:
        return self.weights.get(edge, 0.0)


def fractional_cover(hypergraph: Hypergraph,
                     cardinalities: Mapping[str, int]) -> FractionalCover:
    """Solve the AGM LP for ``hypergraph`` with the given relation sizes.

    Relations of size 0 or 1 contribute ``log N = 0`` to the objective;
    the LP then freely assigns them weight, which is fine — the bound is
    what matters and empty relations drive it to ≤ 1.

    Solutions are memoized on the (structure, sizes) key: the scipy LP
    setup dominates plan time for small queries, and both re-planned
    queries and the Generic Join's per-level sub-problems hit the same
    handful of keys over and over.
    """
    edge_names = list(hypergraph.edges)
    missing = [e for e in edge_names if e not in cardinalities]
    if missing:
        raise QueryError(f"no cardinality provided for edges {missing}")
    structure = (
        hypergraph.vertices,
        tuple((name, tuple(sorted(hypergraph.edges[name])))
              for name in edge_names),
    )
    sizes = tuple(int(cardinalities[name]) for name in edge_names)
    return _solve_cover(structure, sizes)


@lru_cache(maxsize=1024)
def _solve_cover(structure, sizes) -> FractionalCover:
    vertices, edges = structure
    edge_names = [name for name, _ in edges]
    covers = [frozenset(attrs) for _, attrs in edges]
    costs = np.array([math.log(max(n, 1)) + _LOG_FLOOR for n in sizes])
    # constraints: for each vertex v, -sum_{e ∋ v} u_e <= -1
    rows = [[-1.0 if vertex in cover else 0.0 for cover in covers]
            for vertex in vertices]
    result = linprog(
        c=costs,
        A_ub=np.array(rows),
        b_ub=-np.ones(len(rows)),
        bounds=[(0.0, None)] * len(edge_names),
        method="highs",
    )
    if not result.success:
        raise QueryError(
            f"AGM LP infeasible for edges {edge_names}: {result.message}"
        )
    weights = {name: float(w) for name, w in zip(edge_names, result.x)}
    log_bound = sum(
        weights[name] * math.log(max(n, 1))
        for name, n in zip(edge_names, sizes)
    )
    bound = math.exp(log_bound)
    return FractionalCover(weights=weights, bound=bound, log_bound=log_bound)


def agm_bound(hypergraph: Hypergraph, cardinalities: Mapping[str, int]) -> float:
    """The AGM output-size bound ``∏ N_e^{u_e}`` at the optimal cover."""
    return fractional_cover(hypergraph, cardinalities).bound


def integral_cover_bound(hypergraph: Hypergraph,
                         cardinalities: Mapping[str, int]) -> float:
    """Best *integral* edge-cover bound (what binary join plans achieve).

    Exhaustive over subsets for small queries — this is a diagnostic used
    by the benchmarks to show the gap between integral and fractional
    covers (the reason WCOJ wins on cyclic queries).
    """
    names = list(hypergraph.edges)
    if len(names) > 20:
        raise QueryError("integral cover enumeration capped at 20 edges")
    best = math.inf
    for mask in range(1, 1 << len(names)):
        chosen = [names[i] for i in range(len(names)) if mask >> i & 1]
        if not hypergraph.is_edge_cover(chosen):
            continue
        size = 1.0
        for name in chosen:
            size *= max(cardinalities[name], 1)
        best = min(best, size)
    if math.isinf(best):
        raise QueryError(f"no integral edge cover for {hypergraph!r}")
    return best


def verify_cover(hypergraph: Hypergraph, weights: Mapping[str, float],
                 tolerance: float = 1e-9) -> bool:
    """Check that ``weights`` is a feasible fractional edge cover."""
    for vertex in hypergraph.vertices:
        total = sum(weights.get(name, 0.0)
                    for name in hypergraph.edges_with(vertex))
        if total < 1.0 - tolerance:
            return False
    return all(w >= -tolerance for w in weights.values())
