"""Cardinality estimation for the binary-join optimizer.

The binary-join baseline needs a join order; join ordering needs output
cardinality estimates.  We implement the textbook System-R style model the
paper's baseline implicitly relies on: per-attribute distinct counts with
independence and preservation assumptions,

.. math::

    |R \\bowtie S| = \\frac{|R|\\,|S|}{\\prod_{a \\in A(R) \\cap A(S)}
                      \\max(d_R(a), d_S(a))}

where ``d_X(a)`` is the distinct count of attribute ``a`` in ``X``.  The
model is deliberately fallible — mis-estimation under correlation and skew
is precisely what produces the exploding intermediate results WCOJ
algorithms are robust against (Fig 1), and the benches exploit that.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from repro.storage.relation import Relation


class Statistics:
    """Collected statistics: cardinality and per-attribute distinct counts."""

    def __init__(self):
        self._cardinality: dict[str, int] = {}
        self._distinct: dict[str, dict[str, int]] = {}

    @classmethod
    def collect(cls, relations: Iterable[Relation],
                aliases: Mapping[str, str] | None = None) -> "Statistics":
        """Scan ``relations`` once; ``aliases`` maps alias → relation name.

        When an alias map is given, statistics are registered per alias so
        self-joins can reference the same physical relation several times.
        """
        stats = cls()
        by_name = {}
        for relation in relations:
            by_name[relation.name] = relation
            stats.register(relation.name, relation)
        if aliases:
            for alias, name in aliases.items():
                if alias not in stats._cardinality:
                    stats.register(alias, by_name[name])
        return stats

    def register(self, key: str, relation: Relation) -> None:
        self._cardinality[key] = len(relation)
        distinct = {}
        for attribute in relation.schema:
            column = relation.column_array(attribute)
            if column.dtype == object:
                # object columns may hold mutually-incomparable values,
                # which np.unique's sort cannot handle
                distinct[attribute] = len(set(column.tolist()))
            else:
                distinct[attribute] = int(np.unique(column).size)
        self._distinct[key] = distinct

    def cardinality(self, key: str) -> int:
        return self._cardinality[key]

    def distinct(self, key: str, attribute: str) -> int:
        """Distinct values of ``attribute`` (1 if unknown, the safe floor)."""
        return max(self._distinct.get(key, {}).get(attribute, 1), 1)

    def cardinalities(self) -> dict[str, int]:
        return dict(self._cardinality)


def estimate_join_size(left_size: float, right_size: float,
                       left_key: str, right_key: str,
                       join_attributes: Iterable[str],
                       stats: Statistics,
                       left_distinct_override: Mapping[str, int] | None = None,
                       ) -> float:
    """System-R estimate of a binary join's output size.

    ``left_distinct_override`` carries distinct counts for an intermediate
    result (distinct counts are assumed preserved through joins, capped by
    the estimated size).
    """
    size = left_size * right_size
    for attribute in join_attributes:
        if left_distinct_override and attribute in left_distinct_override:
            left_d = left_distinct_override[attribute]
        else:
            left_d = stats.distinct(left_key, attribute)
        right_d = stats.distinct(right_key, attribute)
        size /= max(left_d, right_d, 1)
    return max(size, 0.0)
