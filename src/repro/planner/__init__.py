"""Planning substrate: hypergraphs, AGM bounds, total orders, optimizers."""

from repro.planner.agm import (
    FractionalCover,
    agm_bound,
    fractional_cover,
    integral_cover_bound,
    verify_cover,
)
from repro.planner.cardinality import Statistics, estimate_join_size
from repro.planner.hypergraph import Hypergraph
from repro.planner.optimizer import (
    HybridOptimizer,
    PlanChoice,
    greedy_join_order,
    is_alpha_acyclic,
)
from repro.planner.qptree import (
    QPNode,
    build_qp_tree,
    connectivity_order,
    is_compatible,
    order_heuristic_cardinality,
    total_order,
)
from repro.planner.query import (
    Atom,
    JoinQuery,
    clique_query,
    cycle_query,
    parse_query,
)

__all__ = [
    "Atom",
    "FractionalCover",
    "HybridOptimizer",
    "Hypergraph",
    "JoinQuery",
    "PlanChoice",
    "QPNode",
    "Statistics",
    "agm_bound",
    "build_qp_tree",
    "clique_query",
    "connectivity_order",
    "cycle_query",
    "estimate_join_size",
    "fractional_cover",
    "greedy_join_order",
    "integral_cover_bound",
    "is_alpha_acyclic",
    "is_compatible",
    "order_heuristic_cardinality",
    "parse_query",
    "total_order",
    "verify_cover",
]
