"""Join-order optimization and the hybrid binary/WCOJ chooser.

Two planners live here:

* :func:`greedy_join_order` — the binary-join baseline's optimizer: a
  System-R style greedy chain (smallest estimated intermediate first,
  avoiding cross products when possible).  Deliberately classical; its
  failure mode under adversarial data is the paper's Fig 1 motivation.
* :class:`HybridOptimizer` — Umbra's idea ([22], §6): run cyclic /
  growth-prone parts of a query with a worst-case optimal join and the
  rest with binary joins.  Our rendering chooses per-query: if the
  query's hypergraph is cyclic, or the optimal fractional cover is
  genuinely fractional (some weight strictly between 0 and 1), WCOJ is
  selected; for acyclic (α-acyclic, GYO-reducible) queries the binary
  pipeline wins (Table 1's JOB column shows exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError
from repro.planner.agm import fractional_cover
from repro.planner.cardinality import Statistics, estimate_join_size
from repro.planner.hypergraph import Hypergraph
from repro.planner.query import JoinQuery


def greedy_join_order(query: JoinQuery, stats: Statistics) -> list[str]:
    """A left-deep join order (atom aliases) by greedy size estimation.

    Starts from the smallest atom; at each step joins the atom whose
    estimated result with the current intermediate is smallest, preferring
    connected (non-cross-product) extensions.
    """
    remaining = {atom.alias for atom in query.atoms}
    if not remaining:
        raise QueryError("cannot order an empty query")

    start = min(remaining, key=stats.cardinality)
    order = [start]
    remaining.discard(start)
    bound_attributes = set(query.attributes_of(start))
    current_size = float(stats.cardinality(start))

    while remaining:
        best_alias = None
        best_size = None
        best_connected = False
        for alias in sorted(remaining):
            attrs = set(query.attributes_of(alias))
            shared = attrs & bound_attributes
            connected = bool(shared)
            size = estimate_join_size(
                current_size, stats.cardinality(alias),
                order[-1], alias, shared, stats,
            )
            better = (
                best_alias is None
                or (connected and not best_connected)
                or (connected == best_connected and size < best_size)
            )
            if better:
                best_alias, best_size, best_connected = alias, size, connected
        order.append(best_alias)
        remaining.discard(best_alias)
        bound_attributes |= set(query.attributes_of(best_alias))
        current_size = max(best_size, 1.0)
    return order


def is_alpha_acyclic(hypergraph: Hypergraph) -> bool:
    """GYO reduction: repeatedly remove ear vertices/edges; acyclic iff empty.

    An *ear* is an edge whose vertices are either exclusive to it or all
    contained in some other single edge.  Acyclic queries are exactly the
    ones binary join plans handle without blow-up risk (given good orders).
    """
    edges = {name: set(attrs) for name, attrs in hypergraph.edges.items()}
    changed = True
    while changed and len(edges) > 1:
        changed = False
        # remove vertices appearing in only one edge
        counts: dict[str, int] = {}
        for attrs in edges.values():
            for vertex in attrs:
                counts[vertex] = counts.get(vertex, 0) + 1
        for attrs in edges.values():
            lonely = {v for v in attrs if counts[v] == 1}
            if lonely:
                attrs -= lonely
                changed = True
        # remove edges contained in another edge (or emptied)
        names = list(edges)
        for name in names:
            if name not in edges:
                continue
            attrs = edges[name]
            if not attrs:
                del edges[name]
                changed = True
                continue
            absorbed = any(other != name and attrs <= other_attrs
                           for other, other_attrs in edges.items())
            if absorbed:
                del edges[name]
                changed = True
    if not edges:
        return True
    if len(edges) == 1:
        return True
    return False


def cyclic_core(hypergraph: Hypergraph) -> set[str]:
    """Edge names surviving GYO reduction — the query's cyclic core.

    The same ear-removal loop as :func:`is_alpha_acyclic`, but keeping
    track of *which* edges survive: for an acyclic hypergraph the result
    is empty; for a cyclic one it is the minimal sub-hypergraph that
    actually needs worst-case optimal treatment.  The removed edges are
    the GYO ears — acyclic attachments a binary pipeline handles without
    blow-up risk — which is exactly the per-component split the unified
    stage-tree planner builds on (core → Generic Join sub-plan, ears →
    binary stages over the core's output).
    """
    edges = {name: set(attrs) for name, attrs in hypergraph.edges.items()}
    changed = True
    while changed and len(edges) > 1:
        changed = False
        counts: dict[str, int] = {}
        for attrs in edges.values():
            for vertex in attrs:
                counts[vertex] = counts.get(vertex, 0) + 1
        for attrs in edges.values():
            lonely = {v for v in attrs if counts[v] == 1}
            if lonely:
                attrs -= lonely
                changed = True
        names = list(edges)
        for name in names:
            if name not in edges:
                continue
            attrs = edges[name]
            if not attrs:
                del edges[name]
                changed = True
                continue
            absorbed = any(other != name and attrs <= other_attrs
                           for other, other_attrs in edges.items())
            if absorbed:
                del edges[name]
                changed = True
    if len(edges) <= 1:
        return set()
    return set(edges)


@dataclass(frozen=True)
class PlanChoice:
    """The hybrid optimizer's decision and its rationale."""

    algorithm: str          # "binary" or "wcoj"
    reason: str
    agm_bound: float
    binary_estimate: float


class HybridOptimizer:
    """Chooses binary vs worst-case optimal execution per query (§6, [22])."""

    def __init__(self, growth_threshold: float = 4.0):
        #: how much larger the binary plan's worst intermediate estimate
        #: must be than the AGM bound before WCOJ is preferred for acyclic
        #: queries (cyclic queries always go to WCOJ)
        self.growth_threshold = growth_threshold

    def choose(self, query: JoinQuery, stats: Statistics) -> PlanChoice:
        hypergraph = Hypergraph.from_query(query)
        cover = fractional_cover(hypergraph, stats.cardinalities())
        binary_estimate = self._binary_peak_estimate(query, stats)

        if len(query) == 1:
            return PlanChoice("binary", "single atom: a scan", cover.bound,
                              binary_estimate)
        if not is_alpha_acyclic(hypergraph):
            return PlanChoice(
                "wcoj",
                "cyclic hypergraph: binary plans risk intermediate blow-up",
                cover.bound, binary_estimate,
            )
        if binary_estimate > self.growth_threshold * max(cover.bound, 1.0):
            return PlanChoice(
                "wcoj",
                "estimated binary intermediates exceed the AGM bound "
                f"by more than {self.growth_threshold}x",
                cover.bound, binary_estimate,
            )
        return PlanChoice(
            "binary",
            "acyclic query with tame intermediate estimates: "
            "binary hash joins win on build cost",
            cover.bound, binary_estimate,
        )

    def _binary_peak_estimate(self, query: JoinQuery, stats: Statistics) -> float:
        """Largest estimated intermediate along the greedy binary order."""
        order = greedy_join_order(query, stats)
        bound_attributes = set(query.attributes_of(order[0]))
        size = float(stats.cardinality(order[0]))
        peak = size
        for alias in order[1:]:
            attrs = set(query.attributes_of(alias))
            shared = attrs & bound_attributes
            size = estimate_join_size(size, stats.cardinality(alias),
                                      order[0], alias, shared, stats)
            size = max(size, 1.0)
            peak = max(peak, size)
            bound_attributes |= attrs
        return peak
