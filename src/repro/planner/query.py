"""Conjunctive (natural-join) queries.

A join query is a set of *atoms*, each naming a relation and the query
attributes its columns bind — the datalog-style notation the paper's
Listing 1 encodes through ``AttributeIndex`` template parameters
("attributes with the same ID are joined").  ``triangle: R(a,b), S(b,c),
T(c,a)`` is the paper's running example.

:func:`parse_query` accepts that textual form; programmatic construction
goes through :class:`Atom`/:class:`JoinQuery` directly.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.errors import QueryError

_ATOM_RE = re.compile(r"\s*(\w+)\s*\(([^)]*)\)\s*")


@dataclass(frozen=True)
class Atom:
    """One relation occurrence: ``relation(attr_1, …, attr_n)``.

    ``alias`` distinguishes repeated occurrences of the same stored
    relation (self-joins), e.g. the three edge-relation copies of a
    triangle query.  It defaults to the relation name.
    """

    relation: str
    attributes: tuple[str, ...]
    alias: str = ""

    def __post_init__(self):
        if not self.attributes:
            raise QueryError(f"atom over {self.relation!r} binds no attributes")
        if len(set(self.attributes)) != len(self.attributes):
            raise QueryError(
                f"atom {self.relation}{self.attributes} repeats an attribute; "
                f"pre-filter the relation instead"
            )
        if not self.alias:
            object.__setattr__(self, "alias", self.relation)

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def __str__(self) -> str:
        body = ", ".join(self.attributes)
        if self.alias != self.relation:
            return f"{self.alias}={self.relation}({body})"
        return f"{self.relation}({body})"


class JoinQuery:
    """A natural join of atoms: ``Q = ⋈_e R_e`` (§2.1)."""

    def __init__(self, atoms: Iterable[Atom]):
        atoms = tuple(atoms)
        if not atoms:
            raise QueryError("a join query needs at least one atom")
        aliases = [a.alias for a in atoms]
        if len(set(aliases)) != len(aliases):
            raise QueryError(f"duplicate atom aliases: {aliases} "
                             f"(give self-join occurrences distinct aliases)")
        self.atoms = atoms
        seen: dict[str, None] = {}
        for atom in atoms:
            for attribute in atom.attributes:
                seen.setdefault(attribute)
        #: all query attributes, in first-appearance order (the paper's V)
        self.attributes: tuple[str, ...] = tuple(seen)

    def __len__(self) -> int:
        return len(self.atoms)

    def __iter__(self):
        return iter(self.atoms)

    def __str__(self) -> str:
        return " ⋈ ".join(str(a) for a in self.atoms)

    def atom_by_alias(self, alias: str) -> Atom:
        """The atom registered under ``alias``; raises if unknown."""
        for atom in self.atoms:
            if atom.alias == alias:
                return atom
        raise QueryError(f"no atom with alias {alias!r} in {self}")

    def attributes_of(self, alias: str) -> tuple[str, ...]:
        """Attributes bound by the atom ``alias``."""
        return self.atom_by_alias(alias).attributes

    def atoms_with(self, attribute: str) -> list[Atom]:
        """All atoms binding ``attribute``."""
        return [a for a in self.atoms if attribute in a.attributes]

    def validate_connected(self) -> None:
        """Raise if the query hypergraph is disconnected (cartesian product).

        The join algorithms handle disconnected queries (the result is a
        cross product of components) but callers usually want to know.
        """
        remaining = set(range(len(self.atoms)))
        frontier = {0}
        remaining.discard(0)
        covered = set(self.atoms[0].attributes)
        while frontier:
            frontier = {
                i for i in remaining
                if covered.intersection(self.atoms[i].attributes)
            }
            for i in frontier:
                covered.update(self.atoms[i].attributes)
            remaining -= frontier
        if remaining:
            raise QueryError(
                f"query {self} is disconnected (cartesian product between "
                f"atom groups)"
            )


def parse_query(text: str) -> JoinQuery:
    """Parse ``"R(a,b), S(b,c), T(c,a)"`` into a :class:`JoinQuery`.

    Self-joins may use ``alias=Relation(attrs)``:
    ``"E1=edges(a,b), E2=edges(b,c), E3=edges(c,a)"``.
    """
    atoms = []
    for piece in _split_atoms(text):
        alias = ""
        if "=" in piece.split("(", 1)[0]:
            alias, piece = piece.split("=", 1)
            alias = alias.strip()
        match = _ATOM_RE.fullmatch(piece)
        if not match:
            raise QueryError(f"cannot parse atom {piece!r}")
        relation, body = match.groups()
        attributes = tuple(a.strip() for a in body.split(",") if a.strip())
        atoms.append(Atom(relation, attributes, alias=alias or relation))
    return JoinQuery(atoms)


def _split_atoms(text: str) -> list[str]:
    """Split on commas *outside* parentheses."""
    pieces = []
    depth = 0
    current = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise QueryError(f"unbalanced parentheses in query {text!r}")
        if char == "," and depth == 0:
            pieces.append("".join(current))
            current = []
        else:
            current.append(char)
    if depth:
        raise QueryError(f"unbalanced parentheses in query {text!r}")
    last = "".join(current).strip()
    if last:
        pieces.append(last)
    if not pieces:
        raise QueryError(f"empty query text {text!r}")
    return pieces


def cycle_query(length: int, relation: str = "E",
                attribute_prefix: str = "v") -> JoinQuery:
    """The ``length``-cycle query over a binary edge relation (§5.14).

    ``cycle_query(3)`` is the triangle query
    ``E1=E(v0,v1), E2=E(v1,v2), E3=E(v2,v0)``; lengths 4 and 5 give the
    paper's rectangle and pentagon cycle-counting workloads (Fig 14).
    """
    if length < 2:
        raise QueryError(f"cycles need length >= 2, got {length}")
    atoms = []
    for i in range(length):
        a = f"{attribute_prefix}{i}"
        b = f"{attribute_prefix}{(i + 1) % length}"
        atoms.append(Atom(relation, (a, b), alias=f"{relation}{i + 1}"))
    return JoinQuery(atoms)


def clique_query(size: int, relation: str = "E",
                 attribute_prefix: str = "v") -> JoinQuery:
    """The ``size``-clique query (every vertex pair joined through edges)."""
    if size < 2:
        raise QueryError(f"cliques need size >= 2, got {size}")
    atoms = []
    counter = 0
    for i in range(size):
        for j in range(i + 1, size):
            counter += 1
            atoms.append(Atom(relation,
                              (f"{attribute_prefix}{i}", f"{attribute_prefix}{j}"),
                              alias=f"{relation}{counter}"))
    return JoinQuery(atoms)
