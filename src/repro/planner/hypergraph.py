"""Query hypergraphs (§2.1).

Atserias, Grohe and Marx analyze a join query through its *hypergraph*
``H(V, E)``: vertices are the query attributes, hyperedges are the atoms
(each edge containing the attributes its relation binds).  Everything the
AGM machinery needs — edge covers, connectivity, vertex incidence — lives
here; the LP itself is in :mod:`repro.planner.agm`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import networkx as nx

from repro.errors import QueryError
from repro.planner.query import JoinQuery


class Hypergraph:
    """``H(V, E)`` with named hyperedges.

    ``edges`` maps an edge name (the atom alias) to the frozenset of
    attributes the edge covers.
    """

    def __init__(self, vertices: Iterable[str], edges: Mapping[str, Iterable[str]]):
        self.vertices: tuple[str, ...] = tuple(dict.fromkeys(vertices))
        self.edges: dict[str, frozenset[str]] = {
            name: frozenset(attrs) for name, attrs in edges.items()
        }
        if not self.vertices:
            raise QueryError("hypergraph needs at least one vertex")
        if not self.edges:
            raise QueryError("hypergraph needs at least one edge")
        vertex_set = set(self.vertices)
        for name, attrs in self.edges.items():
            stray = attrs - vertex_set
            if stray:
                raise QueryError(f"edge {name!r} covers unknown vertices {sorted(stray)}")
        uncovered = vertex_set - set().union(*self.edges.values())
        if uncovered:
            raise QueryError(
                f"vertices {sorted(uncovered)} appear in no edge: no edge "
                f"cover exists (the AGM bound is undefined)"
            )

    @classmethod
    def from_query(cls, query: JoinQuery) -> "Hypergraph":
        return cls(query.attributes,
                   {atom.alias: atom.attributes for atom in query.atoms})

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def edges_with(self, vertex: str) -> list[str]:
        """Names of edges incident to ``vertex``."""
        return [name for name, attrs in self.edges.items() if vertex in attrs]

    def degree(self, vertex: str) -> int:
        """Number of edges incident to ``vertex``."""
        return len(self.edges_with(vertex))

    def is_edge_cover(self, names: Iterable[str]) -> bool:
        """Do the named edges cover every vertex (integral cover check)?"""
        chosen = set()
        for name in names:
            chosen |= self.edges[name]
        return chosen >= set(self.vertices)

    def restricted_to(self, vertices: Iterable[str]) -> "Hypergraph":
        """Sub-hypergraph induced on ``vertices`` (for GJ sub-problems).

        Edges are intersected with the vertex set; empty intersections are
        dropped.
        """
        keep = set(vertices)
        edges = {}
        for name, attrs in self.edges.items():
            shared = attrs & keep
            if shared:
                edges[name] = shared
        order = [v for v in self.vertices if v in keep]
        return Hypergraph(order, edges)

    def is_connected(self) -> bool:
        """Is the hypergraph connected (no cartesian-product components)?"""
        graph = self.intersection_graph()
        if graph.number_of_nodes() <= 1:
            return True
        return nx.is_connected(graph)

    def intersection_graph(self) -> nx.Graph:
        """Edges as nodes, linked when they share a vertex (the line graph)."""
        graph = nx.Graph()
        names = list(self.edges)
        graph.add_nodes_from(names)
        for i, left in enumerate(names):
            for right in names[i + 1:]:
                if self.edges[left] & self.edges[right]:
                    graph.add_edge(left, right)
        return graph

    def covered_by_single_edge(self) -> bool:
        """Is some edge a superset of all vertices (trivial query)?"""
        full = set(self.vertices)
        return any(attrs >= full for attrs in self.edges.values())

    def __repr__(self) -> str:
        edges = ", ".join(f"{n}:{sorted(a)}" for n, a in self.edges.items())
        return f"Hypergraph(V={list(self.vertices)}, E=[{edges}])"
