"""Concurrency-safety lint rules (RA701–RA708).

Thin adapters plugging :mod:`repro.analysis.concurrency` into the lint
registry so the CLI, noqa table, baseline, SARIF and changed-only
pipelines treat the family exactly like RA1xx/RA4xx/RA5xx:

* **RA701** — module-level mutable state written after import time.
* **RA702** — class-level mutable attribute shared across instances and
  mutated through them.
* **RA703** — write to a designated-shared field outside its guarding
  lock (error when the designation is an explicit annotation, warning
  when inferred from guarded writes elsewhere in the class).
* **RA704** — raw ``acquire()``/``release()`` imbalance or a release
  not protected by ``finally``.
* **RA705** — lock-ordering cycle (potential deadlock).
* **RA706** — public method of an annotated class classified unsafe.
* **RA707** — ``# repro: borrows-lock[X]`` helper called without ``X``.
* **RA708** — check-then-act dict race in a module using threading.

All eight need the raw source (the annotations live in comments), so
they set :attr:`~repro.analysis.engine.LintRule.wants_source`; the
parsed concurrency model is built once per file and shared through
:func:`repro.analysis.concurrency.model.module_model`'s single-slot
cache, same as the RA4xx/RA5xx passes share theirs.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.concurrency import checkthenact, classify, lockcheck
from repro.analysis.concurrency import shared_state
from repro.analysis.concurrency.model import module_model
from repro.analysis.engine import LintRule, register_rule
from repro.analysis.findings import Finding, Severity


class _ConcurrencyRule(LintRule):
    """Base: concurrency rules read annotation comments from the source."""

    wants_source = True
    severity = Severity.WARNING


@register_rule
class SharedGlobalRule(_ConcurrencyRule):
    """Module-level mutable containers written after import time."""

    code = "RA701"
    title = "module-level mutable state written after import"

    def check(self, tree: ast.AST, path: str, *,
              source: str = "") -> Iterator[Finding]:
        model = module_model(tree, source)
        for write, name in shared_state.scan_module_globals(model):
            yield self.finding(
                path, write.node,
                f"module-level mutable global {name!r} is written after "
                "import time; every importing thread shares it — guard it "
                "with a lock, make it immutable, or scope it per-instance",
            )


@register_rule
class SharedClassStateRule(_ConcurrencyRule):
    """Class-body containers mutated through instances."""

    code = "RA702"
    title = "class-level mutable state mutated through instances"

    def check(self, tree: ast.AST, path: str, *,
              source: str = "") -> Iterator[Finding]:
        model = module_model(tree, source)
        for write, cls, attr in shared_state.scan_class_state(model):
            yield self.finding(
                path, write.node,
                f"{cls}.{attr} is a class-body container never rebound in "
                "__init__: every instance mutates one shared object — "
                "rebind it per-instance or guard it with a lock",
            )


@register_rule
class UnguardedSharedWriteRule(_ConcurrencyRule):
    """Designated-shared fields written outside their lock."""

    code = "RA703"
    title = "shared field written outside its guarding lock"

    def check(self, tree: ast.AST, path: str, *,
              source: str = "") -> Iterator[Finding]:
        model = module_model(tree, source)
        for write, cls, attr, lock, explicit in \
                lockcheck.scan_guarded_writes(model):
            owner = f"{cls}." if cls else ""
            if explicit:
                want = (f"`with self.{lock}:`" if cls
                        else f"`with {lock}:`") if lock else "an owned lock"
                message = (
                    f"{owner}{attr} is annotated `# repro: shared"
                    f"[lock={lock}]`" if lock else
                    f"{owner}{attr} is annotated `# repro: shared`")
                message += (f" but written without holding {want}; take the "
                            "lock or annotate the enclosing method "
                            f"`# repro: borrows-lock[{lock or '<lock>'}]`")
                severity = Severity.ERROR
            else:
                message = (
                    f"{owner}{attr} is written under `{cls}.{lock}` "
                    "elsewhere in this class but bare here; either this "
                    "write races or the field wants an explicit "
                    "`# repro: shared[lock=…]` designation")
                severity = Severity.WARNING
            yield Finding(
                path=path,
                line=getattr(write.node, "lineno", 1),
                column=getattr(write.node, "col_offset", 0) + 1,
                rule=self.code,
                severity=severity,
                message=message,
            )


@register_rule
class AcquireReleaseRule(_ConcurrencyRule):
    """Raw acquire()/release() imbalance or missing finally."""

    code = "RA704"
    title = "raw lock acquire/release imbalance"

    def check(self, tree: ast.AST, path: str, *,
              source: str = "") -> Iterator[Finding]:
        model = module_model(tree, source)
        for node, message in lockcheck.scan_acquire_release(model):
            yield self.finding(path, node, message)


@register_rule
class LockOrderRule(_ConcurrencyRule):
    """Lock-ordering cycles across the module's functions."""

    code = "RA705"
    title = "lock-ordering cycle (potential deadlock)"

    def check(self, tree: ast.AST, path: str, *,
              source: str = "") -> Iterator[Finding]:
        model = module_model(tree, source)
        for node, message in lockcheck.scan_lock_order(model):
            yield self.finding(path, node, message)


@register_rule
class EntryPointSafetyRule(_ConcurrencyRule):
    """Public methods of annotated classes that reach unguarded writes."""

    code = "RA706"
    title = "public entry point of annotated class is not thread-safe"

    def check(self, tree: ast.AST, path: str, *,
              source: str = "") -> Iterator[Finding]:
        model = module_model(tree, source)
        for node, cls, method, writes in classify.scan_entry_points(model):
            fields = sorted({".".join(w.key[:2]) for w in writes})
            yield self.finding(
                path, node,
                f"{cls}.{method} is public on a class with designated "
                f"shared state but reaches unguarded writes to "
                f"{', '.join(fields)}; classification: unsafe — guard the "
                "writes or annotate the method `# repro: borrows-lock[…]`",
            )


@register_rule
class BorrowedLockRule(_ConcurrencyRule):
    """borrows-lock helpers invoked without the documented lock."""

    code = "RA707"
    title = "borrows-lock method called without holding the lock"
    severity = Severity.ERROR

    def check(self, tree: ast.AST, path: str, *,
              source: str = "") -> Iterator[Finding]:
        model = module_model(tree, source)
        for node, cls, method, lock in lockcheck.scan_borrowed_calls(model):
            yield self.finding(
                path, node,
                f"self.{method}() is annotated `# repro: borrows-lock"
                f"[{lock}]` but this call site does not hold "
                f"`self.{lock}`; wrap the call in `with self.{lock}:` or "
                "annotate the caller as borrowing too",
            )


@register_rule
class CheckThenActRule(_ConcurrencyRule):
    """`if k in d: … d[k]` in modules that import threading."""

    code = "RA708"
    title = "check-then-act dict race in a threading module"

    def check(self, tree: ast.AST, path: str, *,
              source: str = "") -> Iterator[Finding]:
        model = module_model(tree, source)
        for node, container, acts in \
                checkthenact.scan_check_then_act(model):
            yield self.finding(
                path, node,
                f"membership test on {container!r} followed by {acts} "
                "keyed access(es) in the branch: the key can appear/"
                "vanish between check and act in this threading module — "
                "use one atomic .get()/.setdefault() or hold the owning "
                "lock across both",
            )
