"""Repo-specific lint rules (RA101–RA105).

Each rule mechanises one invariant the reproduction's benchmark figures
depend on.  The C++ framework the paper builds on gets most of these from
the type system (template contracts, a single Murmur hash functor); in
Python they are enforceable only as AST passes:

* **RA101** — all hashing inside ``indexes/``/``core/`` must route through
  :mod:`repro.core.hashing`; builtin ``hash()`` picks up ``PYTHONHASHSEED``
  nondeterminism and breaks cross-process reproducibility.
* **RA102** — every RNG must be an explicitly seeded generator
  (``random.Random(seed)``, ``np.random.default_rng(seed)``); global or
  unseeded RNG calls make datasets irreproducible.
* **RA103** — mutating a container while iterating it (the classic
  trie-node bug shape: rebucketing a node while walking its children).
* **RA104** — bare ``except:`` and silently swallowed
  ``UnsupportedOperationError``: an index quietly eating the "I cannot do
  prefix lookups" signal corrupts every figure downstream.
* **RA105** — ``time.time()`` used for measurement outside
  ``repro/bench/timer.py``; wall-clock-of-day is not a monotonic interval
  timer.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import PurePath

from repro.analysis.astutil import collect_import_aliases, expr_key, resolve_call
from repro.analysis.engine import LintRule, register_rule
from repro.analysis.findings import Finding

# Shared AST helpers live in repro.analysis.astutil (the dataflow layer
# uses the same import resolution); the old private names remain for the
# rules below and any out-of-tree rule that imported them.
_collect_import_aliases = collect_import_aliases
_resolve_call = resolve_call
_expr_key = expr_key


# ----------------------------------------------------------------------
# RA101 — deterministic hashing
# ----------------------------------------------------------------------
@register_rule
class BuiltinHashRule(LintRule):
    """Builtin ``hash()`` inside the index/core subtrees."""

    code = "RA101"
    title = "builtin hash() bypasses repro.core.hashing"

    _SCOPED_DIRS = frozenset({"indexes", "core"})

    def applies_to(self, path: PurePath) -> bool:
        if path.name == "hashing.py":  # the one module allowed to define hashing
            return False
        return any(part in self._SCOPED_DIRS for part in path.parts)

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_builtin_hash = isinstance(func, ast.Name) and func.id == "hash"
            is_qualified = (isinstance(func, ast.Attribute)
                            and func.attr == "hash"
                            and isinstance(func.value, ast.Name)
                            and func.value.id == "builtins")
            if is_builtin_hash or is_qualified:
                yield self.finding(
                    path, node,
                    "builtin hash() depends on PYTHONHASHSEED; route key "
                    "hashing through repro.core.hashing.hash_key/hash_tuple",
                )


# ----------------------------------------------------------------------
# RA102 — seeded randomness
# ----------------------------------------------------------------------
@register_rule
class UnseededRandomRule(LintRule):
    """Global or unseeded RNG calls."""

    code = "RA102"
    title = "unseeded / global RNG call"

    #: numpy constructors that are fine *when given a seed argument*
    _NUMPY_SEEDED = frozenset({
        "default_rng", "Generator", "SeedSequence", "PCG64", "PCG64DXSM",
        "Philox", "MT19937", "SFC64", "RandomState",
    })

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        aliases = _collect_import_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _resolve_call(node.func, aliases)
            if dotted is None:
                continue
            seeded = bool(node.args or node.keywords)
            if dotted.startswith("random."):
                tail = dotted[len("random."):]
                if tail == "Random":
                    if not seeded:
                        yield self.finding(
                            path, node,
                            "random.Random() without a seed is "
                            "nondeterministic; pass an explicit seed",
                        )
                else:
                    yield self.finding(
                        path, node,
                        f"random.{tail}() uses the global RNG; use a local "
                        "seeded random.Random(seed) instead",
                    )
            elif dotted.startswith("numpy.random."):
                tail = dotted[len("numpy.random."):]
                if tail in self._NUMPY_SEEDED:
                    if not seeded:
                        yield self.finding(
                            path, node,
                            f"numpy.random.{tail}() without a seed is "
                            "nondeterministic; pass an explicit seed",
                        )
                else:
                    yield self.finding(
                        path, node,
                        f"numpy.random.{tail}() uses numpy's global RNG; "
                        "use np.random.default_rng(seed)",
                    )


# ----------------------------------------------------------------------
# RA103 — container mutated while iterated
# ----------------------------------------------------------------------
@register_rule
class MutateWhileIterateRule(LintRule):
    """``for x in c: c.mutate(...)`` — the trie-rebucketing bug shape."""

    code = "RA103"
    title = "container mutated during iteration"

    _MUTATORS = frozenset({
        "append", "extend", "insert", "remove", "pop", "popitem",
        "clear", "add", "discard", "update", "setdefault",
    })
    _VIEW_METHODS = frozenset({"items", "keys", "values"})

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.For):
                yield from self._check_loop(node, path)

    def _iterated_container(self, iter_node: ast.AST) -> "tuple[str, ...] | None":
        # `for x in c` — or `for k, v in c.items()` and friends, which
        # iterate a live view of `c`
        key = _expr_key(iter_node)
        if key is not None:
            return key
        if (isinstance(iter_node, ast.Call)
                and not iter_node.args and not iter_node.keywords
                and isinstance(iter_node.func, ast.Attribute)
                and iter_node.func.attr in self._VIEW_METHODS):
            return _expr_key(iter_node.func.value)
        return None

    def _check_loop(self, loop: ast.For, path: str) -> Iterator[Finding]:
        container = self._iterated_container(loop.iter)
        if container is None:
            return
        for stmt in loop.body:
            for node in ast.walk(stmt):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in self._MUTATORS
                        and _expr_key(node.func.value) == container):
                    yield self.finding(
                        path, node,
                        f"{'.'.join(container)}.{node.func.attr}() mutates "
                        "the container being iterated; iterate over "
                        f"list({'.'.join(container)}) or collect changes "
                        "and apply after the loop",
                    )
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        if (isinstance(target, ast.Subscript)
                                and _expr_key(target.value) == container):
                            yield self.finding(
                                path, node,
                                f"del {'.'.join(container)}[...] mutates the "
                                "container being iterated",
                            )


# ----------------------------------------------------------------------
# RA104 — swallowed errors
# ----------------------------------------------------------------------
@register_rule
class SwallowedErrorRule(LintRule):
    """Bare ``except:`` and silently-passed broad/contract exceptions."""

    code = "RA104"
    title = "bare except / swallowed UnsupportedOperationError"

    _BROAD = frozenset({"UnsupportedOperationError", "Exception", "BaseException"})

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    path, node,
                    "bare except: catches everything including SystemExit; "
                    "name the exception (repro.errors has the hierarchy)",
                )
                continue
            caught = self._caught_names(node.type)
            if caught & self._BROAD and self._is_silent(node.body):
                yield self.finding(
                    path, node,
                    f"silently swallowing {sorted(caught & self._BROAD)}: an "
                    "index's UnsupportedOperationError is a contract signal, "
                    "not noise — handle it or let it propagate",
                )

    @staticmethod
    def _caught_names(type_node: ast.AST) -> frozenset[str]:
        names = set()
        for node in ast.walk(type_node):
            if isinstance(node, ast.Name):
                names.add(node.id)
            elif isinstance(node, ast.Attribute):
                names.add(node.attr)
        return frozenset(names)

    @staticmethod
    def _is_silent(body: list[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)):
                continue  # docstring or `...`
            return False
        return True


# ----------------------------------------------------------------------
# RA105 — wall-clock measurement
# ----------------------------------------------------------------------
@register_rule
class WallClockRule(LintRule):
    """``time.time()`` outside the sanctioned timer module."""

    code = "RA105"
    title = "time.time() used for measurement"

    def applies_to(self, path: PurePath) -> bool:
        # repro/bench/timer.py is the one sanctioned timing module
        return not (path.name == "timer.py" and "bench" in path.parts)

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        aliases = _collect_import_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _resolve_call(node.func, aliases)
            if dotted == "time.time":
                yield self.finding(
                    path, node,
                    "time.time() is wall-clock-of-day, not an interval "
                    "timer; use time.perf_counter() or "
                    "repro.bench.timer.time_callable",
                )


def rule_catalog() -> list[dict]:
    """Every registered rule as a {code, title, severity} record."""
    from repro.analysis.engine import all_rules

    return [
        {"code": rule.code, "title": rule.title,
         "severity": str(rule.severity)}
        for rule in all_rules()
    ]
