"""``--changed-only``: restrict the analysis to files touched vs a base.

The full-tree run stays the CI source of truth; this module powers the
fast local loop (pre-commit hook, editor integration) by intersecting
the requested paths with ``git diff --name-only <base>`` plus untracked
files.  The base resolves to the first of ``origin/main`` / ``main`` /
``HEAD`` that exists, unless overridden with ``--diff-base``.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

_FALLBACK_BASES = ("origin/main", "main", "HEAD")


class GitError(RuntimeError):
    """git is unavailable, not a repository, or the base is unknown."""


def _git(args: "list[str]", cwd: "Path | None") -> str:
    try:
        proc = subprocess.run(
            ["git", *args], cwd=cwd, capture_output=True, text=True,
            timeout=30, check=False,
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise GitError(f"git {' '.join(args)} failed: {exc}") from exc
    if proc.returncode != 0:
        detail = proc.stderr.strip() or f"exit code {proc.returncode}"
        raise GitError(f"git {' '.join(args)} failed: {detail}")
    return proc.stdout


def resolve_base(base: "str | None", cwd: "Path | None" = None) -> str:
    """An explicit base verbatim (verified), else the first fallback
    ref that resolves."""
    candidates = (base,) if base is not None else _FALLBACK_BASES
    last_error = "no candidate base ref"
    for candidate in candidates:
        try:
            _git(["rev-parse", "--verify", "--quiet",
                  f"{candidate}^{{commit}}"], cwd)
            return candidate
        except GitError as exc:
            last_error = str(exc)
    raise GitError(
        f"cannot resolve a diff base (tried {', '.join(filter(None, candidates))}): "
        f"{last_error}"
    )


def changed_files(base: "str | None" = None,
                  cwd: "Path | None" = None) -> list[Path]:
    """Paths changed vs ``base`` (committed, staged or unstaged) plus
    untracked files, relative to the repo toplevel."""
    top = Path(_git(["rev-parse", "--show-toplevel"], cwd).strip())
    ref = resolve_base(base, cwd)
    names = set(_git(["diff", "--name-only", ref], cwd).splitlines())
    names.update(_git(["ls-files", "--others", "--exclude-standard"],
                      cwd).splitlines())
    return [top / name for name in sorted(names) if name]


def restrict_to_changed(paths: "list[str]", base: "str | None" = None,
                        cwd: "Path | None" = None) -> list[Path]:
    """The changed files that fall under any of the requested ``paths``.

    An empty result is a legitimate outcome (nothing relevant changed) —
    the caller reports "clean", it does not analyse the full tree.
    """
    roots = [Path(p).resolve() for p in paths]
    selected: list[Path] = []
    for changed in changed_files(base, cwd):
        if not changed.exists() or changed.suffix != ".py":
            continue
        resolved = changed.resolve()
        for root in roots:
            if resolved == root or root in resolved.parents:
                selected.append(changed)
                break
    return selected
