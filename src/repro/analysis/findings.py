"""Findings: the one currency every analysis engine trades in.

The lint engine, the index-contract checker and the plan validator all
report :class:`Finding` records — a rule code, a severity, a location and
a message — so the CLI, the reporters and the tests can treat the three
engines uniformly (mirroring how a C++ build surfaces template errors,
static_asserts and warnings through one diagnostic stream).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Diagnostic severity; only :attr:`ERROR` gates the CLI exit code."""

    NOTE = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic, sortable by location for stable reports."""

    path: str
    line: int
    column: int
    rule: str
    severity: Severity = field(compare=False)
    message: str = field(compare=False)

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    def render(self) -> str:
        return (f"{self.location}: {self.rule} "
                f"[{self.severity}] {self.message}")

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
        }


def has_errors(findings) -> bool:
    """Does any finding reach :attr:`Severity.ERROR` (the CI gate)?"""
    return any(f.severity >= Severity.ERROR for f in findings)
