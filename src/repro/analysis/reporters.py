"""Rendering findings: text for humans, JSON for CI, SARIF for code scanning."""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Sequence
from pathlib import PurePath

from repro.analysis.findings import Finding, Severity


def summarize(findings: Sequence[Finding]) -> dict:
    """Counts by severity and by rule, plus the overall gate verdict."""
    by_severity = Counter(str(f.severity) for f in findings)
    by_rule = Counter(f.rule for f in findings)
    return {
        "total": len(findings),
        "errors": by_severity.get("error", 0),
        "warnings": by_severity.get("warning", 0),
        "notes": by_severity.get("note", 0),
        "by_rule": dict(sorted(by_rule.items())),
        "ok": not any(f.severity >= Severity.ERROR for f in findings),
    }


def render_text(findings: Sequence[Finding]) -> str:
    """One diagnostic per line plus a one-line summary (compiler style)."""
    lines = [finding.render() for finding in findings]
    summary = summarize(findings)
    if summary["total"] == 0:
        lines.append("analysis clean: no findings")
    else:
        lines.append(
            f"{summary['total']} finding(s): {summary['errors']} error(s), "
            f"{summary['warnings']} warning(s), {summary['notes']} note(s)"
        )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Stable machine-readable report for CI artifact consumers."""
    payload = {
        "findings": [finding.to_dict() for finding in findings],
        "summary": summarize(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


_SARIF_LEVELS = {Severity.NOTE: "note", Severity.WARNING: "warning",
                 Severity.ERROR: "error"}


def render_sarif(findings: Sequence[Finding],
                 tool_version: str = "1.0") -> str:
    """SARIF 2.1.0 log for GitHub code scanning upload.

    One run, one driver; the rule metadata is derived from the findings
    themselves so the log stays valid even for engine-produced codes
    (RA001/RA002, RA2xx contracts, RA3xx plan checks) that are not in
    the lint registry.
    """
    rule_ids = sorted({f.rule for f in findings})
    rule_index = {rule: i for i, rule in enumerate(rule_ids)}
    titles = _rule_titles()
    rules = [
        {
            "id": rule,
            "name": rule,
            "shortDescription": {
                "text": titles.get(rule, f"repro.analysis rule {rule}")
            },
            "helpUri": "https://github.com/" +
                       "sonicjoin-repro/docs/blob/main/docs/analysis.md",
        }
        for rule in rule_ids
    ]
    results = [
        {
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": _SARIF_LEVELS[finding.severity],
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": PurePath(finding.path).as_posix(),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": max(finding.column, 1),
                    },
                },
            }],
        }
        for finding in findings
    ]
    log = {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                   "master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro.analysis",
                    "version": tool_version,
                    "informationUri": "https://github.com/sonicjoin-repro",
                    "rules": rules,
                },
            },
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }
    return json.dumps(log, indent=2, sort_keys=True)


def _rule_titles() -> dict[str, str]:
    """Registered rule titles (plus the engine-reserved codes)."""
    from repro.analysis.engine import all_rules

    titles = {rule.code: rule.title for rule in all_rules()}
    titles.setdefault("RA001", "file does not parse")
    titles.setdefault("RA002", "stale baseline entry")
    return titles
