"""Rendering findings for humans (text) and machines (JSON)."""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Sequence

from repro.analysis.findings import Finding, Severity


def summarize(findings: Sequence[Finding]) -> dict:
    """Counts by severity and by rule, plus the overall gate verdict."""
    by_severity = Counter(str(f.severity) for f in findings)
    by_rule = Counter(f.rule for f in findings)
    return {
        "total": len(findings),
        "errors": by_severity.get("error", 0),
        "warnings": by_severity.get("warning", 0),
        "notes": by_severity.get("note", 0),
        "by_rule": dict(sorted(by_rule.items())),
        "ok": not any(f.severity >= Severity.ERROR for f in findings),
    }


def render_text(findings: Sequence[Finding]) -> str:
    """One diagnostic per line plus a one-line summary (compiler style)."""
    lines = [finding.render() for finding in findings]
    summary = summarize(findings)
    if summary["total"] == 0:
        lines.append("analysis clean: no findings")
    else:
        lines.append(
            f"{summary['total']} finding(s): {summary['errors']} error(s), "
            f"{summary['warnings']} warning(s), {summary['notes']} note(s)"
        )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Stable machine-readable report for CI artifact consumers."""
    payload = {
        "findings": [finding.to_dict() for finding in findings],
        "summary": summarize(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
