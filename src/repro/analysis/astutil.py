"""Shared AST helpers for the lint and dataflow rule families.

Originally private to :mod:`repro.analysis.rules`; promoted here once the
dataflow layer (:mod:`repro.analysis.dataflow`) needed the same import
resolution to recognise index/cursor constructions statically.
"""

from __future__ import annotations

import ast


def collect_import_aliases(tree: ast.AST) -> dict[str, str]:
    """Map local names to the dotted import path they are bound to.

    ``import numpy as np`` yields ``{"np": "numpy"}``;
    ``from random import randrange as rr`` yields
    ``{"rr": "random.randrange"}``.  Only top-level and nested plain
    imports are tracked — attribute rebinding (``r = random``) is not,
    which keeps the passes conservative (no false positives from
    lookalike locals).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = (
                    name.name if name.asname else name.name.split(".")[0]
                )
                if name.asname:
                    aliases[name.asname] = name.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def resolve_call(func: ast.AST, aliases: dict[str, str]) -> "str | None":
    """Dotted path of a call target, resolved through import aliases.

    ``np.random.rand`` with ``np -> numpy`` resolves to
    ``numpy.random.rand``; unresolvable targets (locals, ``self.…``)
    return ``None``.
    """
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = aliases.get(node.id)
    if base is None:
        return None
    return ".".join([base, *reversed(parts)]) if parts else base


def expr_key(node: ast.AST) -> "tuple[str, ...] | None":
    """Canonical key for a name / dotted-attribute expression."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None
