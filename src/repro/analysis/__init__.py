"""Static-analysis subsystem: lint engine, contract checker, plan validator.

Three engines, one diagnostic currency (:class:`~repro.analysis.findings.Finding`):

1. **Lint engine** (:mod:`~repro.analysis.engine`, :mod:`~repro.analysis.rules`)
   — AST rules RA101–RA105 enforcing deterministic hashing, seeded RNGs,
   iteration safety, loud error handling and sanctioned timers, plus the
   dataflow family RA401–RA504 (:mod:`~repro.analysis.dataflow`,
   :mod:`~repro.analysis.rules_dataflow`): CFG/fixpoint typestate checks
   of the cursor protocol and hot-loop hygiene, the concurrency family
   RA701–RA708 (:mod:`~repro.analysis.concurrency`) and the
   numeric-kernel family RA801–RA808 (:mod:`~repro.analysis.numeric`):
   dtype/copy abstract interpretation guarding the int64-canonical
   column contract.  Findings are suppressible per line with
   ``# repro: noqa[RULE]``.
2. **Contract checker** (:mod:`~repro.analysis.contracts`) — RA201–RA205,
   introspecting :mod:`repro.indexes.registry` for the paper's §4.1
   ``TupleIndex``/``PrefixCursor`` plug-in contract.
3. **Plan validator** (:mod:`~repro.analysis.plancheck`) — RA301–RA307,
   static checks on :class:`~repro.planner.query.JoinQuery` plans
   (attribute cover, γ permutation, AGM cover feasibility, schema
   consistency), run by the executor in debug mode.

The CLI gate is ``python -m repro.analysis [paths] [--json] [--rule …]``.

This package root stays import-light (stdlib only); the contract checker,
which needs the index registry and therefore numpy, is loaded lazily.
"""

from __future__ import annotations

from repro.analysis.engine import (
    LintRule,
    all_rules,
    analyze_file,
    analyze_paths,
    analyze_source,
    register_rule,
    select_rules,
)
from repro.analysis.findings import Finding, Severity, has_errors
from repro.analysis.plancheck import (
    PlanIssue,
    check_join_plan,
    check_plan,
    validate_join_plan,
    validate_plan,
)
from repro.analysis.reporters import (
    render_json,
    render_sarif,
    render_text,
    summarize,
)

import repro.analysis.rules  # noqa: F401  (importing registers RA101–RA105)
import repro.analysis.rules_dataflow  # noqa: F401  (registers RA401–RA504)
import repro.analysis.rules_concurrency  # noqa: F401  (registers RA701–RA708)
import repro.analysis.rules_numeric  # noqa: F401  (registers RA801–RA808)

__all__ = [
    "Finding",
    "LintRule",
    "PlanIssue",
    "Severity",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "check_join_plan",
    "check_plan",
    "check_registry",
    "has_errors",
    "register_rule",
    "render_json",
    "render_sarif",
    "render_text",
    "select_rules",
    "summarize",
    "validate_join_plan",
    "validate_plan",
]


def __getattr__(name: str):
    # `check_registry` imports repro.indexes (numpy & friends); keep the
    # lint path importable without the numeric stack.
    if name == "check_registry":
        from repro.analysis.contracts import check_registry

        return check_registry
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
