"""Finding baselines: adopt pre-existing findings, gate only the diff.

Turning a new rule family on over an existing codebase surfaces debt
that cannot all be paid down in the same change.  The baseline makes
that debt *visible but non-blocking*: ``analysis-baseline.json`` is a
committed multiset of ``(path, rule, message)`` triples; findings that
match an entry are demoted to notes (tagged ``[baselined]``), anything
*not* in the baseline gates CI — including warnings, so new debt cannot
accrete silently.  Stale entries (baselined findings that no longer
occur, e.g. because someone fixed them) are reported as **RA002** notes
so the file shrinks instead of fossilising.

Workflow::

    python -m repro.analysis --write-baseline analysis-baseline.json
    git add analysis-baseline.json            # adopt current findings
    python -m repro.analysis --baseline analysis-baseline.json  # CI gate
"""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Sequence
from pathlib import Path, PurePath

from repro.analysis.findings import Finding, Severity

#: rule code for stale baseline entries (RA001 is the parse-error code)
STALE_BASELINE_RULE = "RA002"

_VERSION = 1


def _key(path: str, rule: str, message: str) -> tuple[str, str, str]:
    # normalised posix-relative path so the baseline is OS-independent
    return (PurePath(path).as_posix(), rule, message)


def load_baseline(path: "str | Path") -> Counter:
    """The committed baseline as a multiset of (path, rule, message)."""
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(raw, dict) or raw.get("version") != _VERSION:
        raise ValueError(
            f"{path}: unsupported baseline format (want version {_VERSION})"
        )
    baseline: Counter = Counter()
    for entry in raw.get("entries", []):
        key = _key(entry["path"], entry["rule"], entry["message"])
        baseline[key] += int(entry.get("count", 1))
    return baseline


def write_baseline(findings: Sequence[Finding], path: "str | Path") -> int:
    """Adopt every warning/error into a fresh baseline file.

    Notes are not baselined (they never gate) and parse errors are not
    adoptable (a file that stops parsing must always fail).  Returns the
    number of entries written.
    """
    counts: Counter = Counter()
    for finding in findings:
        if finding.severity < Severity.WARNING:
            continue
        if finding.rule in ("RA001", STALE_BASELINE_RULE):
            continue
        counts[_key(finding.path, finding.rule, finding.message)] += 1
    entries = [
        {"path": key[0], "rule": key[1], "message": key[2], "count": count}
        for key, count in sorted(counts.items())
    ]
    payload = {
        "version": _VERSION,
        "comment": "Adopted findings: visible as notes, not gating. "
                   "Regenerate with --write-baseline; fix entries to "
                   "shrink this file (stale entries surface as RA002).",
        "entries": entries,
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")
    return len(entries)


def apply_baseline(findings: Sequence[Finding], baseline: Counter,
                   baseline_path: str = "analysis-baseline.json",
                   ) -> list[Finding]:
    """Demote baselined findings to notes; surface stale entries as RA002.

    Findings are matched against the multiset in sorted (location) order
    so the outcome is deterministic when a message occurs more often than
    its baselined count: the first ``count`` occurrences are demoted, the
    rest gate.
    """
    remaining = Counter(baseline)
    result: list[Finding] = []
    for finding in sorted(findings):
        key = _key(finding.path, finding.rule, finding.message)
        if remaining.get(key, 0) > 0 and finding.severity >= Severity.WARNING:
            remaining[key] -= 1
            result.append(Finding(
                path=finding.path, line=finding.line, column=finding.column,
                rule=finding.rule, severity=Severity.NOTE,
                message=f"{finding.message} [baselined]",
            ))
        else:
            result.append(finding)
    for key, count in sorted(remaining.items()):
        if count <= 0:
            continue
        path, rule, message = key
        result.append(Finding(
            path=str(baseline_path), line=1, column=1,
            rule=STALE_BASELINE_RULE, severity=Severity.NOTE,
            message=f"stale baseline entry (finding no longer occurs "
                    f"{count}x): {path}: {rule} {message}",
        ))
    result.sort()
    return result


def gates_with_baseline(findings: Sequence[Finding]) -> bool:
    """CI verdict under a baseline: any non-baselined warning or error
    fails — new debt must be fixed or explicitly adopted."""
    return any(f.severity >= Severity.WARNING for f in findings)
