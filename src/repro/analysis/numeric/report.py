"""The ``--numeric-report`` kernel-hygiene summary.

One JSON document over the analysed tree, per module: which arrays enter
kernels and with what dtype class, where copies are allocated, and where
indexes are built bulk-vs-scalar.  The report is *informational* (the
gating lives in the RA8xx rules + baseline); CI uploads it as an
artifact so a PR's kernel hygiene is one download away, mirroring the
thread-safety manifest of the concurrency family.
"""

from __future__ import annotations

import ast
from collections import Counter
from pathlib import Path
from typing import Iterable

from repro.analysis.engine import iter_python_files
from repro.analysis.numeric.model import numeric_model

SCHEMA = "repro/numeric-report/v1"


def module_summary(tree: ast.AST) -> "dict | None":
    """Kernel-hygiene summary of one parsed module (None when empty)."""
    model = numeric_model(tree)
    if not (model.kernel_entries or model.copy_sites
            or model.bulk_sites or model.scalar_sites):
        return None
    histogram = Counter(entry["dtype_class"]
                        for entry in model.kernel_entries)
    return {
        "kernel_entries": sorted(model.kernel_entries,
                                 key=lambda e: (e["line"], e["kernel"])),
        "kernel_dtype_histogram": dict(sorted(histogram.items())),
        "copy_sites": sorted(model.copy_sites,
                             key=lambda e: (e["line"], e["op"])),
        "bulk_build_sites": sorted(model.bulk_sites),
        "scalar_build_sites": sorted(model.scalar_sites),
    }


def build_numeric_report(paths: Iterable["str | Path"]) -> dict:
    """Per-module kernel-hygiene JSON over every Python file in ``paths``."""
    modules: dict[str, dict] = {}
    totals: Counter = Counter()
    dtype_totals: Counter = Counter()
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file_path))
        except (OSError, UnicodeDecodeError, SyntaxError):
            continue  # the lint gate reports unreadable files (RA001)
        summary = module_summary(tree)
        if summary is None:
            continue
        modules[file_path.as_posix()] = summary
        totals["kernel_entries"] += len(summary["kernel_entries"])
        totals["copy_sites"] += len(summary["copy_sites"])
        totals["bulk_build_sites"] += len(summary["bulk_build_sites"])
        totals["scalar_build_sites"] += len(summary["scalar_build_sites"])
        dtype_totals.update(summary["kernel_dtype_histogram"])
    return {
        "schema": SCHEMA,
        "modules": dict(sorted(modules.items())),
        "totals": {
            **{key: totals.get(key, 0)
               for key in ("kernel_entries", "copy_sites",
                           "bulk_build_sites", "scalar_build_sites")},
            "kernel_dtype_histogram": dict(sorted(dtype_totals.items())),
        },
    }
