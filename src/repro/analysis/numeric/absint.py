"""Abstract interpretation of numpy values over the shared CFGs.

:class:`NumericAnalysis` is a
:class:`~repro.analysis.dataflow.solver.ForwardAnalysis`: the state maps
local names to :class:`~repro.analysis.numeric.lattice.ArrayValue` /
:class:`~repro.analysis.numeric.lattice.IndexValue` facts, the transfer
function symbolically evaluates assignments, numpy constructor and
method calls, slicing and fancy indexing, and the reporting sweep (the
second ``transfer`` pass that :func:`report_fixed_point` drives over the
solved states) records **events** instead of findings:

* ``kernel``  — a known array entering a kernel call (``searchsorted``,
  ``lexsort``, ``intersect1d`` and friends, batch-cursor entry points),
  with its dtype class / order / contiguity at the call site.
* ``mix``     — arithmetic or comparison between arrays of two
  *definite, different* dtype classes (RA802's raw material).
* ``alloc``   — an allocation-producing numpy op (fancy index,
  ``astype`` without ``copy=False``, ``np.concatenate``/``np.append``…).
* ``tolist`` / ``foriter`` — scalarisation of an array (``.tolist()``,
  per-element ``for`` iteration).

:mod:`~repro.analysis.numeric.model` turns events into RA801–RA805
findings; keeping the interpreter finding-free keeps it reusable for the
``--numeric-report`` hygiene summary, which wants the *clean* kernel
entries too.

The evaluator is deliberately conservative: parameters, attributes and
anything it cannot prove to be an array stay untracked, so every rule
fed from here only fires on locally-provable facts (no false positives
from lookalike locals).  Comprehensions are their own scope and are not
descended into, matching the reaching-defs pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Any

from repro.analysis.astutil import resolve_call
from repro.analysis.dataflow.cfg import (
    KIND_FORHEAD,
    KIND_HANDLER,
    KIND_STMT,
    KIND_TEST,
    KIND_WITHHEAD,
    Node,
)
from repro.analysis.dataflow.solver import ForwardAnalysis
from repro.analysis.numeric.lattice import (
    DT_INT64,
    DT_NUMERIC,
    DT_OBJECT,
    DT_UNKNOWN,
    ORD_SORTED,
    ORD_UNKNOWN,
    ORD_UNSORTED,
    PROV_FRESH,
    PROV_UNKNOWN,
    PROV_VIEW,
    ArrayValue,
    IndexValue,
    join_arrays,
    join_dtypes,
)

_FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)

#: numpy callables whose argument arrays "enter a kernel"
NUMPY_KERNELS = frozenset({
    "searchsorted", "lexsort", "intersect1d", "union1d", "setdiff1d",
    "isin", "in1d",
})
#: kernels whose first argument must be sorted and contiguous (RA805)
SORTED_INPUT_KERNELS = frozenset({"searchsorted"})
#: batch-cursor entry points: their array arguments enter the
#: vectorised probe kernels (repro.indexes.base.SyncedBatchCursor)
BATCH_ENTRY_METHODS = frozenset({"probe_many", "candidates", "count_many"})
#: index constructors recognised by the abstract interpreter (the value
#: becomes an :class:`~repro.analysis.numeric.lattice.IndexValue`)
INDEX_CONSTRUCTORS = frozenset({
    "SonicIndex", "SortedTrie", "HashTrie", "make_index",
})
#: constructions yielding an index with a *vectorized* ``build_bulk``
#: — RA806's scope: the per-row default exists on every index, but a
#: per-tuple loop only leaves speed on the table where the columnar
#: path does better
BULK_CAPABLE_CONSTRUCTORS = frozenset({"SonicIndex", "SortedTrie"})
BULK_CAPABLE_REGISTRY_NAMES = frozenset({"sonic", "sortedtrie"})

#: dtype spellings → dtype class
_INT64_NAMES = frozenset({"int64", "intp", "int_", "longlong", "int"})
_OBJECT_NAMES = frozenset({"object", "object_", "O"})
_NUMERIC_NAMES = frozenset({
    "float64", "float32", "float_", "float", "double", "single",
    "int32", "int16", "int8", "uint64", "uint32", "uint16", "uint8",
    "bool", "bool_", "b1", "f8", "f4",
})


@dataclass(frozen=True)
class Event:
    """One observation from the reporting sweep."""

    kind: str            # kernel | mix | alloc | tolist | foriter
    node: ast.AST        # anchor for line/column
    detail: str = ""     # kernel/op name or dtype-class pair
    value: "ArrayValue | None" = None  # the array fact at the site


def dtype_class_of(node: "ast.AST | None",
                   aliases: dict[str, str]) -> "str | None":
    """Dtype class named by a ``dtype=`` argument, or None if unreadable."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value
    else:
        resolved = resolve_call(node, aliases)
        if resolved is not None:
            name = resolved.split(".")[-1]
        elif isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        else:
            return None
    if name in _INT64_NAMES:
        return DT_INT64
    if name in _OBJECT_NAMES:
        return DT_OBJECT
    if name in _NUMERIC_NAMES:
        return DT_NUMERIC
    return None


class NumericAnalysis(ForwardAnalysis):
    """Forward dtype/provenance abstract interpretation over one CFG."""

    def __init__(self, aliases: dict[str, str]):
        self.aliases = aliases
        self.events: list[Event] = []
        self._seen: set[tuple[str, int, int, str]] = set()

    # ------------------------------------------------------------------
    # solver interface
    # ------------------------------------------------------------------
    def initial(self) -> dict[str, Any]:
        return {}

    def join(self, left: dict, right: dict) -> dict:
        if left == right:
            return left
        out: dict[str, Any] = {}
        for name in left.keys() & right.keys():
            a, b = left[name], right[name]
            if isinstance(a, IndexValue) and isinstance(b, IndexValue):
                out[name] = a
            elif isinstance(a, ArrayValue) and isinstance(b, ArrayValue):
                out[name] = join_arrays(a, b)
        return out

    def transfer(self, node: Node, state: dict, report=None) -> dict:
        # the fixpoint runs with report=None (no events); the reporting
        # sweep passes a callback, which flips event collection on
        emit = self._record if report is not None else None
        if node.kind == KIND_STMT:
            return self._stmt(node.stmt, state, emit)
        if node.kind == KIND_TEST:
            self._eval(node.guard, state, emit)
            return state
        if node.kind == KIND_FORHEAD:
            return self._forhead(node.stmt, state, emit)
        if node.kind == KIND_WITHHEAD:
            new = state
            for item in node.stmt.items:
                self._eval(item.context_expr, state, emit)
                if item.optional_vars is not None:
                    new = self._bind(item.optional_vars, None, new)
            return new
        if node.kind == KIND_HANDLER:
            handler = node.stmt
            if handler.name:
                new = dict(state)
                new.pop(handler.name, None)
                return new
        return state

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _stmt(self, stmt: ast.AST, state: dict, emit) -> dict:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, state, emit)
            new = state
            for target in stmt.targets:
                new = self._bind(target, value, new)
            return new
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value = self._eval(stmt.value, state, emit)
            return self._bind(stmt.target, value, state)
        if isinstance(stmt, ast.AugAssign):
            self._eval(stmt.value, state, emit)
            return self._bind(stmt.target, None, state)
        if isinstance(stmt, ast.Expr):
            mutated = self._inplace_sort(stmt.value, state)
            if mutated is not None:
                self._eval(stmt.value, state, emit)
                return mutated
            self._eval(stmt.value, state, emit)
            return state
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            self._eval(stmt.value, state, emit)
            return state
        if isinstance(stmt, ast.Delete):
            new = dict(state)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    new.pop(target.id, None)
            return new
        if isinstance(stmt, _FUNCS + (ast.ClassDef,)):
            return state  # opaque: nested scopes get their own CFGs
        return state

    def _forhead(self, stmt, state: dict, emit) -> dict:
        iterated = self._eval(stmt.iter, state, emit)
        if emit is not None and isinstance(iterated, ArrayValue):
            emit(Event("foriter", stmt, "for", iterated))
        return self._bind(stmt.target, None, state)

    def _bind(self, target: ast.AST, value, state: dict) -> dict:
        if isinstance(target, ast.Name):
            new = dict(state)
            if value is None:
                new.pop(target.id, None)
            else:
                new[target.id] = value
            return new
        if isinstance(target, (ast.Tuple, ast.List)):
            new = dict(state)
            for elt in target.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                if isinstance(inner, ast.Name):
                    new.pop(inner.id, None)
            return new
        return state  # attribute / subscript targets are not locals

    def _inplace_sort(self, expr: ast.AST, state: dict) -> "dict | None":
        """``x.sort()`` on a tracked array: same binding, now sorted."""
        if (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "sort"
                and isinstance(expr.func.value, ast.Name)):
            current = state.get(expr.func.value.id)
            if isinstance(current, ArrayValue):
                new = dict(state)
                new[expr.func.value.id] = current.with_order(ORD_SORTED)
                return new
        return None

    # ------------------------------------------------------------------
    # expression evaluation
    # ------------------------------------------------------------------
    def _eval(self, expr: "ast.AST | None", state: dict, emit):
        if expr is None:
            return None
        if isinstance(expr, ast.Name):
            return state.get(expr.id)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, state, emit)
        if isinstance(expr, ast.Subscript):
            return self._eval_subscript(expr, state, emit)
        if isinstance(expr, ast.BinOp):
            left = self._eval(expr.left, state, emit)
            right = self._eval(expr.right, state, emit)
            self._check_mix(expr, left, right, emit)
            if isinstance(left, ArrayValue) or isinstance(right, ArrayValue):
                dtypes = [v.dtype for v in (left, right)
                          if isinstance(v, ArrayValue)]
                dtype = dtypes[0] if len(dtypes) == 1 \
                    else join_dtypes(dtypes[0], dtypes[1])
                return ArrayValue(dtype, PROV_FRESH, ORD_UNKNOWN, True)
            return None
        if isinstance(expr, ast.Compare):
            left = self._eval(expr.left, state, emit)
            for comparator in expr.comparators:
                right = self._eval(comparator, state, emit)
                self._check_mix(expr, left, right, emit)
                left = right
            return None
        if isinstance(expr, ast.UnaryOp):
            operand = self._eval(expr.operand, state, emit)
            return operand if isinstance(operand, ArrayValue) else None
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                self._eval(value, state, emit)
            return None
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test, state, emit)
            body = self._eval(expr.body, state, emit)
            orelse = self._eval(expr.orelse, state, emit)
            if isinstance(body, ArrayValue) and isinstance(orelse, ArrayValue):
                return join_arrays(body, orelse)
            return None
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for elt in expr.elts:
                self._eval(elt, state, emit)
            return None
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value, state, emit)
        if isinstance(expr, ast.Attribute):
            self._eval(expr.value, state, emit)
            return None
        if isinstance(expr, _COMPREHENSIONS):
            return None  # own scope; not descended (matches reaching-defs)
        if isinstance(expr, ast.NamedExpr):
            return self._eval(expr.value, state, emit)
        return None

    # -- calls ----------------------------------------------------------
    def _eval_call(self, expr: ast.Call, state: dict, emit):
        argvals = [self._eval(arg, state, emit) for arg in expr.args]
        for keyword in expr.keywords:
            self._eval(keyword.value, state, emit)
        kwargs = {kw.arg: kw.value for kw in expr.keywords if kw.arg}

        resolved = resolve_call(expr.func, self.aliases)
        if resolved is not None and resolved.startswith("numpy"):
            return self._numpy_call(expr, resolved.split(".")[-1],
                                    argvals, kwargs, state, emit)

        if isinstance(expr.func, ast.Attribute):
            return self._method_call(expr, argvals, kwargs, state, emit)

        if isinstance(expr.func, ast.Name):
            if expr.func.id in INDEX_CONSTRUCTORS:
                return IndexValue()
            if expr.func.id == "len" and len(expr.args) == 1:
                return None
        return None

    def _numpy_call(self, expr: ast.Call, name: str, argvals, kwargs,
                    state: dict, emit):
        first = argvals[0] if argvals else None
        explicit = dtype_class_of(kwargs.get("dtype"), self.aliases)
        if explicit is None and name in {"array", "asarray", "fromiter"} \
                and len(expr.args) > 1:
            explicit = dtype_class_of(expr.args[1], self.aliases)

        def inherited(default: str = DT_UNKNOWN) -> str:
            if explicit is not None:
                return explicit
            if isinstance(first, ArrayValue):
                return first.dtype
            return default

        if name in ("array", "asarray", "ascontiguousarray"):
            order = first.order if isinstance(first, ArrayValue) \
                else ORD_UNKNOWN
            if name == "array":
                return ArrayValue(inherited(), PROV_FRESH, order, True)
            contig = True if name == "ascontiguousarray" else (
                first.contiguous if isinstance(first, ArrayValue) else None)
            return ArrayValue(inherited(), PROV_UNKNOWN, order, contig)
        if name in ("empty", "zeros", "ones", "full"):
            dtype = explicit if explicit is not None else DT_NUMERIC
            return ArrayValue(dtype, PROV_FRESH, ORD_UNKNOWN, True)
        if name == "fromiter":
            return ArrayValue(inherited(DT_UNKNOWN), PROV_FRESH,
                              ORD_UNKNOWN, True)
        if name == "arange":
            if explicit is None:
                has_float = any(isinstance(a, ast.Constant)
                                and isinstance(a.value, float)
                                for a in expr.args)
                explicit = DT_NUMERIC if has_float else DT_INT64
            order = ORD_SORTED if len(expr.args) < 3 else ORD_UNKNOWN
            return ArrayValue(explicit, PROV_FRESH, order, True)
        if name in ("concatenate", "append", "hstack", "vstack", "stack"):
            self._emit_alloc(expr, f"np.{name}", emit)
            element_vals = argvals
            if expr.args and isinstance(expr.args[0], (ast.Tuple, ast.List)):
                element_vals = [self._eval(elt, state, None)
                                for elt in expr.args[0].elts]
            dtype = DT_UNKNOWN
            arrays = [v for v in element_vals if isinstance(v, ArrayValue)]
            if arrays:
                dtype = arrays[0].dtype
                for value in arrays[1:]:
                    dtype = join_dtypes(dtype, value.dtype)
            return ArrayValue(dtype, PROV_FRESH, ORD_UNSORTED, True)
        if name == "sort":
            dtype = first.dtype if isinstance(first, ArrayValue) \
                else DT_UNKNOWN
            return ArrayValue(dtype, PROV_FRESH, ORD_SORTED, True)
        if name == "unique":
            dtype = first.dtype if isinstance(first, ArrayValue) \
                else DT_UNKNOWN
            return ArrayValue(dtype, PROV_FRESH, ORD_SORTED, True)
        if name == "lexsort":
            key_vals = argvals
            if expr.args and isinstance(expr.args[0], (ast.Tuple, ast.List)):
                key_vals = [self._eval(elt, state, None)
                            for elt in expr.args[0].elts]
            for value in key_vals:
                if isinstance(value, ArrayValue):
                    self._emit_kernel(expr, "lexsort", value, emit)
            return ArrayValue(DT_INT64, PROV_FRESH, ORD_UNKNOWN, True)
        if name in NUMPY_KERNELS:
            # only the first argument of the searchsorted family must be
            # sorted; later args are tagged so RA805 skips them
            for position, value in enumerate(argvals):
                if isinstance(value, ArrayValue):
                    detail = name if position == 0 else f"{name}:arg{position}"
                    self._emit_kernel(expr, detail, value, emit)
            if name in SORTED_INPUT_KERNELS:
                return ArrayValue(DT_INT64, PROV_FRESH, ORD_UNKNOWN, True)
            return ArrayValue(DT_UNKNOWN, PROV_FRESH, ORD_SORTED, True)
        return None

    def _method_call(self, expr: ast.Call, argvals, kwargs,
                     state: dict, emit):
        func = expr.func
        receiver = self._eval(func.value, state, None)
        method = func.attr

        if method in BATCH_ENTRY_METHODS:
            for value in argvals:
                if isinstance(value, ArrayValue):
                    self._emit_kernel(expr, method, value, emit)
            return None

        if not isinstance(receiver, ArrayValue):
            return None

        if method == "astype":
            copy_kw = kwargs.get("copy")
            no_copy = (isinstance(copy_kw, ast.Constant)
                       and copy_kw.value is False)
            if not no_copy:
                self._emit_alloc(expr, ".astype", emit)
            dtype = dtype_class_of(
                expr.args[0] if expr.args else kwargs.get("dtype"),
                self.aliases)
            prov = receiver.prov if no_copy else PROV_FRESH
            return ArrayValue(dtype if dtype is not None else DT_UNKNOWN,
                              prov, receiver.order, True)
        if method == "searchsorted":
            self._emit_kernel(expr, "searchsorted", receiver, emit)
            for value in argvals:
                if isinstance(value, ArrayValue):
                    self._emit_kernel(expr, "searchsorted:values", value, emit)
            return ArrayValue(DT_INT64, PROV_FRESH, ORD_UNKNOWN, True)
        if method == "tolist":
            if emit is not None:
                emit(Event("tolist", expr, ".tolist", receiver))
            return None
        if method == "copy":
            return ArrayValue(receiver.dtype, PROV_FRESH,
                              receiver.order, True)
        if method in ("reshape", "ravel", "view"):
            return ArrayValue(receiver.dtype, PROV_VIEW,
                              ORD_UNKNOWN, receiver.contiguous)
        return None

    # -- subscripts -----------------------------------------------------
    def _eval_subscript(self, expr: ast.Subscript, state: dict, emit):
        base = self._eval(expr.value, state, emit)
        index = expr.slice
        if not isinstance(base, ArrayValue):
            self._eval(index, state, emit)
            return None
        if isinstance(index, ast.Slice):
            self._eval(index.lower, state, emit)
            self._eval(index.upper, state, emit)
            self._eval(index.step, state, emit)
            unit_step = index.step is None or (
                isinstance(index.step, ast.Constant) and index.step.value == 1)
            contig = base.contiguous if unit_step else False
            order = base.order if unit_step else ORD_UNKNOWN
            return ArrayValue(base.dtype, PROV_VIEW, order, contig)
        if isinstance(index, ast.Constant) and isinstance(index.value, int):
            return None  # scalar element
        # fancy indexing (array/list/bool-mask index): allocates a copy
        self._eval(index, state, emit)
        self._emit_alloc(expr, "fancy index", emit)
        return ArrayValue(base.dtype, PROV_FRESH, ORD_UNKNOWN, True)

    # ------------------------------------------------------------------
    # event emission
    # ------------------------------------------------------------------
    def _record(self, event: Event) -> None:
        key = (event.kind, getattr(event.node, "lineno", 0),
               getattr(event.node, "col_offset", 0), event.detail)
        if key not in self._seen:
            self._seen.add(key)
            self.events.append(event)

    def _emit_kernel(self, node: ast.AST, kernel: str,
                     value: ArrayValue, emit) -> None:
        if emit is not None:
            emit(Event("kernel", node, kernel, value))

    def _emit_alloc(self, node: ast.AST, op: str, emit) -> None:
        if emit is not None:
            emit(Event("alloc", node, op))

    def _check_mix(self, node: ast.AST, left, right, emit) -> None:
        if emit is None:
            return
        if not (isinstance(left, ArrayValue) and isinstance(right, ArrayValue)):
            return
        definite = {DT_INT64, DT_NUMERIC, DT_OBJECT}
        if (left.dtype in definite and right.dtype in definite
                and left.dtype != right.dtype):
            emit(Event("mix", node, f"{left.dtype}×{right.dtype}"))
