"""Numeric-kernel analysis (RA801–RA808): dtype/copy abstract interpretation.

The fourth dataflow family.  Where the typestate pass (RA4xx) tracks
*protocol* state and the concurrency pass (RA7xx) tracks *lock* state,
this package tracks the **numpy value state** the SonicJoin kernels
depend on: every column array that reaches ``searchsorted``/``lexsort``/
the batch-cursor entry points is supposed to be an ``int64``, C-contiguous,
sorted-when-required array — the int64-canonical column contract of
``docs/architecture.md``.  A silent ``object``-dtype fallback, a fancy-
indexing copy in a probe loop, or a per-tuple ``insert()`` build loop all
defeat the paper's vectorised cost model without failing a single test;
these rules make each of them a finding.

Layout:

* :mod:`~repro.analysis.numeric.lattice` — the abstract value: a dtype
  lattice (``int64 | numeric | object | unknown``) × a copy/view
  provenance lattice (``fresh | view | unknown``) plus sortedness and
  contiguity facts.
* :mod:`~repro.analysis.numeric.absint` — the abstract interpreter, a
  :class:`~repro.analysis.dataflow.solver.ForwardAnalysis` over the
  shared CFGs, evaluating numpy constructors, methods, slicing and fancy
  indexing.
* :mod:`~repro.analysis.numeric.model` — one cached pass per file
  combining the interpreter's events with the syntactic contract
  checks (RA806–RA808) into findings for the rule family.
* :mod:`~repro.analysis.numeric.report` — the ``--numeric-report``
  kernel-hygiene JSON (arrays entering kernels by dtype class, copy
  sites, bulk-vs-scalar build sites).

The package root stays import-light (stdlib only), like the rest of
:mod:`repro.analysis`.
"""

from repro.analysis.numeric.lattice import (
    ArrayValue,
    IndexValue,
    join_arrays,
)
from repro.analysis.numeric.model import NumericModel, numeric_model
from repro.analysis.numeric.report import build_numeric_report

__all__ = [
    "ArrayValue",
    "IndexValue",
    "NumericModel",
    "build_numeric_report",
    "join_arrays",
    "numeric_model",
]
