"""The abstract value domain for the numeric pass.

One :class:`ArrayValue` per tracked local: the join-semilattice product
of four small facts about a numpy array —

* **dtype class** — ``int64`` (the canonical column dtype), ``numeric``
  (any other numeric/bool dtype), ``object`` (the fallback the kernels
  must never see) or ``unknown`` (top).
* **provenance** — ``fresh`` (this binding owns a new allocation),
  ``view`` (aliases another array's buffer) or ``unknown``.  Fresh
  allocations inside hot loops are the RA803 signal; views are what
  ``copy=False`` discipline is supposed to preserve.
* **order** — ``sorted`` / ``unsorted`` / ``unknown``; ``searchsorted``
  requires ``sorted`` (RA805).
* **contiguity** — ``True`` / ``False`` / ``None`` (unknown); strided
  slices (``a[::2]``) break it, which also trips RA805.

Joins are fieldwise: equal facts survive a merge point, disagreeing
facts go to the field's top.  There is no bottom element — the state
maps simply drop names the interpreter cannot describe.
"""

from __future__ import annotations

from dataclasses import dataclass

# dtype classes
DT_INT64 = "int64"
DT_NUMERIC = "numeric"
DT_OBJECT = "object"
DT_UNKNOWN = "unknown"

# provenance
PROV_FRESH = "fresh"
PROV_VIEW = "view"
PROV_UNKNOWN = "unknown"

# sortedness
ORD_SORTED = "sorted"
ORD_UNSORTED = "unsorted"
ORD_UNKNOWN = "unknown"


@dataclass(frozen=True)
class ArrayValue:
    """Abstract numpy array: dtype class × provenance × order × contiguity."""

    dtype: str = DT_UNKNOWN
    prov: str = PROV_UNKNOWN
    order: str = ORD_UNKNOWN
    contiguous: "bool | None" = None

    def with_dtype(self, dtype: str) -> "ArrayValue":
        return ArrayValue(dtype, self.prov, self.order, self.contiguous)

    def with_order(self, order: str) -> "ArrayValue":
        return ArrayValue(self.dtype, self.prov, order, self.contiguous)


@dataclass(frozen=True)
class IndexValue:
    """Abstract tuple-index instance (SonicIndex/SortedTrie/make_index).

    Tracked so RA806 can tell a per-tuple ``insert()`` loop on a real
    index apart from ``insert()`` on an arbitrary object.
    """

    kind: str = "index"


def _join_field(left: str, right: str, top: str) -> str:
    return left if left == right else top


def join_arrays(left: ArrayValue, right: ArrayValue) -> ArrayValue:
    """Fieldwise least upper bound of two abstract arrays."""
    if left == right:
        return left
    return ArrayValue(
        dtype=_join_field(left.dtype, right.dtype, DT_UNKNOWN),
        prov=_join_field(left.prov, right.prov, PROV_UNKNOWN),
        order=_join_field(left.order, right.order, ORD_UNKNOWN),
        contiguous=(left.contiguous if left.contiguous == right.contiguous
                    else None),
    )


def join_dtypes(left: str, right: str) -> str:
    return _join_field(left, right, DT_UNKNOWN)
