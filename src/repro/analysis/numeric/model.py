"""Per-file numeric model: events + contract scans → RA801–RA808 findings.

One pass per file, shared by all eight rules and the ``--numeric-report``
summary through a single-slot cache keyed on the tree object identity
(the engine parses each file once and feeds the same tree to every
rule, exactly like the typestate cache in ``rules_dataflow``).

The model combines three layers:

* the abstract interpreter's events
  (:class:`~repro.analysis.numeric.absint.NumericAnalysis`) solved to a
  fixpoint per function CFG — RA801/RA802/RA805 directly, RA803/RA804
  after intersecting with the hot regions of
  :mod:`~repro.analysis.dataflow.hotloop`;
* a flow-insensitive scan for per-tuple ``insert()`` build loops on
  values constructed from the known index constructors — RA806;
* the columnar-contract checks over ``column_array``-style helpers,
  ``SUPPORTS_BATCH`` classes and ``Relation.columns()`` callers —
  RA807 — plus the reaching-defs-powered dead-materialisation check
  (RA808), which reuses :func:`repro.analysis.dataflow.reaching.function_scope`
  to restrict itself to true locals.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.astutil import collect_import_aliases, resolve_call
from repro.analysis.dataflow.cfg import function_cfgs
from repro.analysis.dataflow.hotloop import _walk_region, hot_regions
from repro.analysis.dataflow.reaching import function_scope
from repro.analysis.dataflow.solver import report_fixed_point, solve_forward
from repro.analysis.numeric.absint import (
    BULK_CAPABLE_CONSTRUCTORS,
    BULK_CAPABLE_REGISTRY_NAMES,
    INDEX_CONSTRUCTORS,
    NUMPY_KERNELS,
    SORTED_INPUT_KERNELS,
    NumericAnalysis,
    dtype_class_of,
)
from repro.analysis.numeric.lattice import DT_OBJECT, ORD_UNSORTED

_FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef)
_LOOPS = (ast.For, ast.While, ast.AsyncFor)

#: directories whose innermost loops are RA803's hot scope (the rule's
#: ``applies_to`` enforces this; kept here for the docs/report)
HOT_DIRS = frozenset({"joins", "indexes", "core"})

#: RHS calls that materialise a fresh array (RA808 candidates)
_MATERIALIZERS = frozenset({
    "array", "asarray", "ascontiguousarray", "fromiter", "concatenate",
    "append", "sort", "unique", "empty", "zeros", "ones", "full", "arange",
})
#: attribute reads that only need the array's *shape*, not its contents
_SIZE_ONLY_ATTRS = frozenset({"size", "shape", "nbytes"})


@dataclass
class NumericModel:
    """Findings plus the raw material for the kernel-hygiene report."""

    findings: list  # (ast node, code, severity, message)
    kernel_entries: list = field(default_factory=list)  # {line, kernel, dtype}
    copy_sites: list = field(default_factory=list)      # {line, op}
    bulk_sites: list = field(default_factory=list)      # lines calling build_bulk
    scalar_sites: list = field(default_factory=list)    # lines of insert loops


_MODEL_CACHE: "tuple[ast.AST, NumericModel] | None" = None


def numeric_model(tree: ast.AST) -> NumericModel:
    """The (cached) numeric model of one parsed file."""
    global _MODEL_CACHE
    if _MODEL_CACHE is not None and _MODEL_CACHE[0] is tree:
        return _MODEL_CACHE[1]
    model = _build_model(tree)
    _MODEL_CACHE = (tree, model)
    return model


def _noop_report(node, code, severity, message):  # pragma: no cover
    return None


def _build_model(tree: ast.AST) -> NumericModel:
    aliases = collect_import_aliases(tree)
    findings: list = []
    seen: set[tuple[int, int, str, str]] = set()

    def add(node: ast.AST, code: str, severity: str, message: str) -> None:
        key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0),
               code, message)
        if key not in seen:
            seen.add(key)
            findings.append((node, code, severity, message))

    model = NumericModel(findings)

    # ---- abstract interpretation over every function CFG --------------
    events = []
    for cfg in function_cfgs(tree):
        analysis = NumericAnalysis(aliases)
        states = solve_forward(cfg, analysis)
        report_fixed_point(cfg, analysis, states, _noop_report)
        events.extend(analysis.events)

    hot_ids = _hot_node_ids(tree)
    innermost_ids = _innermost_loop_ids(tree)

    for event in events:
        line = getattr(event.node, "lineno", 0)
        if event.kind == "kernel":
            value = event.value
            model.kernel_entries.append(
                {"line": line, "kernel": event.detail,
                 "dtype_class": value.dtype})
            if value.dtype == DT_OBJECT:
                add(event.node, "RA801", "error",
                    f"object-dtype array reaches kernel call "
                    f"{event.detail.split(':')[0]}(); the int64-canonical "
                    "column contract requires a numeric array here "
                    "(object columns must take the per-value fallback path)")
            if event.detail in SORTED_INPUT_KERNELS:
                if value.order == ORD_UNSORTED:
                    add(event.node, "RA805", "warning",
                        f"array flowing into {event.detail}() is unsorted "
                        "on at least one path (built by concatenation/"
                        "fancy indexing with no sort in between); "
                        "searchsorted silently returns garbage on "
                        "unsorted input")
                elif value.contiguous is False:
                    add(event.node, "RA805", "warning",
                        f"non-contiguous (strided) array flowing into "
                        f"{event.detail}(); copy to a contiguous buffer "
                        "outside the hot path first")
        elif event.kind == "mix":
            add(event.node, "RA802", "warning",
                f"implicit dtype mix ({event.detail}) in array "
                "arithmetic/comparison forces a silent upcast per "
                "element; normalise both sides to one dtype class first")
        elif event.kind == "alloc":
            model.copy_sites.append({"line": line, "op": event.detail})
            if id(event.node) in innermost_ids:
                add(event.node, "RA803", "warning",
                    f"allocation-producing numpy op ({event.detail}) "
                    "inside an innermost loop; hoist it or restructure "
                    "to one vectorised call over the whole batch")
        elif event.kind == "tolist":
            if id(event.node) in hot_ids:
                add(event.node, "RA804", "warning",
                    ".tolist() scalarises an array inside a hot region; "
                    "keep the data vectorised or convert once outside "
                    "the per-binding path")
        elif event.kind == "foriter":
            node = event.node
            if id(node) in hot_ids or _is_innermost_loop(node):
                add(node, "RA804", "warning",
                    "per-element iteration over an array in hot scope; "
                    "each step boxes a numpy scalar — use vectorised "
                    "ops or .tolist() once outside the loop")

    # ---- syntactic / scope-based families ------------------------------
    _scan_insert_loops(tree, model, add)
    _scan_columnar_contract(tree, aliases, add)
    _scan_dead_materialization(tree, aliases, add)
    _scan_bulk_sites(tree, model)
    return model


# ----------------------------------------------------------------------
# hot-region indexing
# ----------------------------------------------------------------------
def _hot_node_ids(tree: ast.AST) -> set[int]:
    """ids of every AST node inside any hot region (loop or recursive fn)."""
    ids: set[int] = set()
    for region in hot_regions(tree):
        for node in _walk_region(region.body):
            ids.add(id(node))
    return ids


def _innermost_loop_ids(tree: ast.AST) -> set[int]:
    """ids of nodes inside innermost loops only (RA803's hot scope)."""
    ids: set[int] = set()
    for region in hot_regions(tree):
        if region.reason == "innermost loop":
            for node in _walk_region(region.body):
                ids.add(id(node))
    return ids


def _is_innermost_loop(node: ast.AST) -> bool:
    if not isinstance(node, _LOOPS):
        return False
    body = list(node.body) + list(getattr(node, "orelse", []))
    return not any(isinstance(sub, _LOOPS)
                   for stmt in body for sub in ast.walk(stmt))


# ----------------------------------------------------------------------
# RA806 — per-tuple insert loops where build_bulk exists
# ----------------------------------------------------------------------
def _constructs_bulk_capable(call: ast.Call, last: str) -> bool:
    """Does this constructor call yield a vectorized-``build_bulk`` index?

    Direct ``SonicIndex``/``SortedTrie`` constructions qualify;
    ``make_index`` only with a literal registry name known to be
    bulk-capable (an unknown or dynamic name could be a hash set, whose
    per-tuple build loop has nothing to vectorize — precision wins).
    """
    if last in BULK_CAPABLE_CONSTRUCTORS:
        return True
    if last != "make_index" or not call.args:
        return False
    name = call.args[0]
    return (isinstance(name, ast.Constant)
            and name.value in BULK_CAPABLE_REGISTRY_NAMES)


def _scan_insert_loops(tree: ast.AST, model: NumericModel, add) -> None:
    constructed: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = node.value.func
            last = callee.attr if isinstance(callee, ast.Attribute) else (
                callee.id if isinstance(callee, ast.Name) else None)
            if (last in INDEX_CONSTRUCTORS
                    and _constructs_bulk_capable(node.value, last)):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        constructed.add(target.id)
    if not constructed:
        return
    for loop in ast.walk(tree):
        if not isinstance(loop, _LOOPS):
            continue
        for stmt in loop.body:
            for sub in ast.walk(stmt):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "insert"
                        and isinstance(sub.func.value, ast.Name)
                        and sub.func.value.id in constructed):
                    model.scalar_sites.append(getattr(sub, "lineno", 0))
                    add(sub, "RA806", "warning",
                        f"per-tuple {sub.func.value.id}.insert() loop; "
                        "these indexes expose build_bulk(columns) — one "
                        "vectorised build from column arrays replaces "
                        "the per-row hash-and-probe work")


# ----------------------------------------------------------------------
# RA807 — the int64-or-object columnar contract
# ----------------------------------------------------------------------
def _scan_columnar_contract(tree: ast.AST, aliases: dict, add) -> None:
    # (a) column_array-style helpers must attempt int64 and fall back
    for node in ast.walk(tree):
        if isinstance(node, _FUNCS) and node.name in (
                "column_array", "_column_array"):
            if _is_pure_delegator(node):
                continue  # e.g. Relation.column_array → self._array(...)
            has_int64 = False
            has_fallback = False
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    last = sub.func.attr \
                        if isinstance(sub.func, ast.Attribute) else (
                            sub.func.id if isinstance(sub.func, ast.Name)
                            else None)
                    kwargs = {kw.arg: kw.value for kw in sub.keywords
                              if kw.arg}
                    dtype = dtype_class_of(kwargs.get("dtype"), aliases)
                    if last == "asarray" and dtype == "int64":
                        has_int64 = True
                    if dtype == "object":
                        has_fallback = True
            has_try = any(isinstance(sub, ast.Try) for sub in ast.walk(node))
            if not (has_int64 and has_fallback and has_try):
                add(node, "RA807", "error",
                    f"columnar contract: {node.name}() must attempt "
                    "np.asarray(values, dtype=np.int64) and fall back to "
                    "an object array in a try/except (the documented "
                    "int64-or-object split)")

    # (b) SUPPORTS_BATCH indexes must accept int64 arrays unconverted
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        declares_batch = any(
            isinstance(stmt, (ast.Assign, ast.AnnAssign))
            and _assigns_true(stmt, "SUPPORTS_BATCH")
            for stmt in cls.body)
        if not declares_batch:
            continue
        for sub in ast.walk(cls):
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "astype"):
                add(sub, "RA807", "error",
                    f"SUPPORTS_BATCH index {cls.name} converts an array "
                    "with .astype(); the batch contract requires "
                    "accepting int64 column arrays without conversion")

    # (c) columns()/column_array callers mixing in kernel calls must
    # branch on the dtype split somewhere in the same function
    for func in ast.walk(tree):
        if not isinstance(func, _FUNCS):
            continue
        calls_columns = False
        calls_kernel = False
        handles_dtype = False
        for sub in ast.walk(func):
            if isinstance(sub, ast.Call) \
                    and isinstance(sub.func, ast.Attribute):
                if sub.func.attr in ("columns", "column_array"):
                    calls_columns = True
                if sub.func.attr in ("column_dtype_class", "dtype_classes"):
                    handles_dtype = True
            if isinstance(sub, ast.Call):
                resolved = resolve_call(sub.func, aliases)
                name = resolved.split(".")[-1] if resolved else (
                    sub.func.attr if isinstance(sub.func, ast.Attribute)
                    else None)
                if name in NUMPY_KERNELS or name == "lexsort":
                    calls_kernel = True
            if isinstance(sub, ast.Attribute) and sub.attr == "dtype":
                handles_dtype = True
        if calls_columns and calls_kernel and not handles_dtype:
            add(func, "RA807", "error",
                f"{func.name}() feeds Relation columns into numpy "
                "kernels without handling the int64-or-object split; "
                "branch on the column dtype class (object columns take "
                "the per-value path)")


def _is_pure_delegator(func: ast.AST) -> bool:
    """A helper whose whole body is ``return other_call(...)`` keeps its
    contract in the delegate, not locally."""
    body = [stmt for stmt in func.body
            if not (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str))]
    return (len(body) == 1 and isinstance(body[0], ast.Return)
            and isinstance(body[0].value, ast.Call))


def _assigns_true(stmt: ast.stmt, name: str) -> bool:
    if isinstance(stmt, ast.Assign):
        targets = stmt.targets
        value = stmt.value
    elif isinstance(stmt, ast.AnnAssign):
        targets = [stmt.target]
        value = stmt.value
    else:  # pragma: no cover - caller filters
        return False
    named = any(isinstance(t, ast.Name) and t.id == name for t in targets)
    return named and isinstance(value, ast.Constant) and value.value is True


# ----------------------------------------------------------------------
# RA808 — dead array materialisation (built, then only len()'d)
# ----------------------------------------------------------------------
def _scan_dead_materialization(tree: ast.AST, aliases: dict, add) -> None:
    for func in ast.walk(tree):
        if not isinstance(func, _FUNCS):
            continue
        scope = function_scope(func)
        tracked = scope.tracked() - scope.params
        parents: dict[int, ast.AST] = {}
        for node in ast.walk(func):
            for child in ast.iter_child_nodes(node):
                parents[id(child)] = node
        # single-assignment locals whose RHS materialises an array
        candidates: dict[str, ast.Assign] = {}
        assignment_counts: dict[str, int] = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        assignment_counts[target.id] = \
                            assignment_counts.get(target.id, 0) + 1
                if (len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)
                        and _materialises_array(node.value, aliases)):
                    candidates[node.targets[0].id] = node
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for sub in ast.walk(node.target):
                    if isinstance(sub, ast.Name):
                        assignment_counts[sub.id] = \
                            assignment_counts.get(sub.id, 0) + 1
        for name, assign in candidates.items():
            if name not in tracked or assignment_counts.get(name, 0) != 1:
                continue
            loads = [node for node in ast.walk(func)
                     if isinstance(node, ast.Name) and node.id == name
                     and isinstance(node.ctx, ast.Load)]
            if not loads:
                continue  # RA503 (dead store) already covers zero uses
            if all(_size_only_use(load, parents) for load in loads):
                add(assign, "RA808", "warning",
                    f"array {name!r} is materialised but only its "
                    "length/shape is ever read; compute the size without "
                    "building the array (dead materialisation)")


def _materialises_array(expr: ast.AST, aliases: dict) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    resolved = resolve_call(expr.func, aliases)
    if resolved is not None and resolved.startswith("numpy") \
            and resolved.split(".")[-1] in _MATERIALIZERS:
        return True
    return (isinstance(expr.func, ast.Attribute)
            and expr.func.attr in ("astype", "copy")
            and resolved is None)


def _size_only_use(load: ast.Name, parents: dict[int, ast.AST]) -> bool:
    parent = parents.get(id(load))
    if (isinstance(parent, ast.Call) and isinstance(parent.func, ast.Name)
            and parent.func.id == "len" and parent.args
            and parent.args[0] is load):
        return True
    return (isinstance(parent, ast.Attribute)
            and parent.attr in _SIZE_ONLY_ATTRS
            and isinstance(parent.ctx, ast.Load))


# ----------------------------------------------------------------------
# report-only scan: bulk build call sites
# ----------------------------------------------------------------------
def _scan_bulk_sites(tree: ast.AST, model: NumericModel) -> None:
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "build_bulk"):
            model.bulk_sites.append(getattr(node, "lineno", 0))
