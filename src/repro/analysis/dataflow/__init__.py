"""Dataflow analysis over Python functions: CFG + fixpoint + rule domains.

The paper's C++ framework enforces the index/cursor protocol at compile
time through templates (§4.1); PR 1's AST lint recovered only the
single-statement slice of that.  This package recovers the *stateful*
slice: a control-flow-graph builder (:mod:`~repro.analysis.dataflow.cfg`),
a generic worklist fixpoint solver
(:mod:`~repro.analysis.dataflow.solver`), and the analyses layered on
top:

* :mod:`~repro.analysis.dataflow.typestate` — abstract interpretation of
  :class:`~repro.indexes.base.PrefixCursor` /
  :class:`~repro.indexes.sorted_trie.TrieIterator` /
  :class:`~repro.indexes.base.TupleIndex` locals (rules RA401–RA404:
  use-before-open, depth discipline, prefix calls on point-only flows,
  mutation-after-build);
* :mod:`~repro.analysis.dataflow.reaching` — function scopes, a
  boundness pass (use-before-def, RA504) and a liveness pass (dead
  stores, RA503);
* :mod:`~repro.analysis.dataflow.hotloop` — loop-nest hazard detection
  for the join/index hot paths (RA501 allocation, RA502 linear scans).

Everything is stdlib-only (``ast``); the registered lint rules that feed
these analyses into the engine live in
:mod:`repro.analysis.rules_dataflow`.
"""

from __future__ import annotations

from repro.analysis.dataflow.cfg import CFG, Edge, Node, build_cfg, function_cfgs
from repro.analysis.dataflow.solver import ForwardAnalysis, solve_forward

__all__ = [
    "CFG",
    "Edge",
    "ForwardAnalysis",
    "Node",
    "build_cfg",
    "function_cfgs",
    "solve_forward",
]
