"""Typestate analysis of cursor / iterator / index locals (RA401–RA404).

The paper's C++ framework makes protocol misuse a *compile error*: a
``SUPPORTS_PREFIX=False`` structure simply has no prefix methods to call,
and a trie iterator's navigation contract is enforced by the template
interface (§4.1).  This module recovers the stateful part of that check
for Python through abstract interpretation over the function CFG:

* ``TrieIterator`` locals (born from ``<index>.iterator()``) carry an
  *open-depth interval* and a 3-valued *exhaustion* flag.  ``key``/
  ``next``/``seek`` before any ``open`` (RA401), advancing or reading a
  cursor that may already be exhausted without an ``at_end()`` guard
  (RA401), and ``up()`` above the root (RA402) are reported.
* ``PrefixCursor`` locals (born from ``<index>.cursor()``) carry a
  *descent-depth interval*; ``ascend()`` that may pop above the root is
  RA402.  Branch guards refine the interval: the true edge of
  ``if cursor.try_descend(v):`` is depth+1, the false edge unchanged.
* ``TupleIndex`` locals (born from a registered index constructor or a
  ``make_index("<name>", …)`` literal) carry *capability* and *frozen*
  facts: prefix methods on a value that may flow from a
  ``SUPPORTS_PREFIX=False`` construction are RA403; ``insert``/``build``
  after the index was handed to an adapter/executor is RA404
  (mutation-after-build — the index structures here never rehash, §3.1,
  so post-build mutation corrupts cursors already derived from them).

Aliasing is handled by *dropping*: ``a = b`` untracks both names, and a
tracked object passed to an unknown call escapes and is untracked — the
analysis prefers false negatives over false positives, as a CI gate
must.  Only plain locals are tracked; attributes and container elements
are out of scope (and the repo's hot paths keep cursors in locals).
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import resolve_call
from repro.analysis.dataflow.cfg import KIND_STMT, KIND_TEST, Node
from repro.analysis.dataflow.solver import ForwardAnalysis

# ----------------------------------------------------------------------
# Static knowledge about the index zoo (cross-checked against the live
# registry by tests/analysis/test_dataflow_rules.py so it cannot rot).
# ----------------------------------------------------------------------
#: registered TupleIndex classes (repro.indexes + repro.core.sonic)
INDEX_CLASSES = frozenset({
    "SonicIndex", "SwissTableSet", "RobinHoodTupleIndex", "BPlusTree",
    "AdaptiveRadixTree", "HatTrie", "HierarchicalHashMap", "HashTrie",
    "SuccinctRangeFilter", "SortedTrie",
})
#: classes with SUPPORTS_PREFIX = False (§5.4 point-lookup-only group)
POINT_ONLY_CLASSES = frozenset({
    "SwissTableSet", "RobinHoodTupleIndex", "SuccinctRangeFilter",
})
#: registry names of the point-only group (for make_index literals)
POINT_ONLY_NAMES = frozenset({"hashset", "robinhood", "surf"})
#: TupleIndex prefix-protocol surface (§3.1 prefix operations + cursor)
PREFIX_METHODS = frozenset({
    "prefix_lookup", "count_prefix", "has_prefix", "iter_next_values",
    "cursor",
})
#: methods that mutate an index after construction
MUTATOR_METHODS = frozenset({"insert", "build"})
#: call targets that take ownership of an index (the build→probe handoff)
FREEZER_CALLS = frozenset({"IndexAdapter"})
#: calls that read a tracked object without invalidating what we know
_HARMLESS_CALLS = frozenset({"len", "repr", "str", "bool", "id", "print"})

#: exhaustion lattice for TrieIterator
_NO, _MAYBE, _YES = "no", "maybe", "yes"
_DEPTH_CAP = 64

# abstract value shapes (plain tuples: hashable, comparable, immutable):
#   ("trieiter", depth_lo, depth_hi, at_end)
#   ("cursor",   depth_lo, depth_hi)
#   ("index",    frozen,   prefix)     frozen ∈ {live, maybe, frozen};
#                                      prefix ∈ {ok, point}


def _join_value(left, right):
    if left == right:
        return left
    if left is None or right is None or left[0] != right[0]:
        return None  # incompatible histories: stop tracking
    kind = left[0]
    if kind == "trieiter":
        at_end = left[3] if left[3] == right[3] else _MAYBE
        return ("trieiter", min(left[1], right[1]),
                min(max(left[2], right[2]), _DEPTH_CAP), at_end)
    if kind == "cursor":
        return ("cursor", min(left[1], right[1]),
                min(max(left[2], right[2]), _DEPTH_CAP))
    frozen = left[1] if left[1] == right[1] else "maybe"
    prefix = left[2] if left[2] == right[2] else "point"
    return ("index", frozen, prefix)


class TypestateAnalysis(ForwardAnalysis):
    """Forward abstract interpretation of one function's tracked locals."""

    def __init__(self, aliases: dict[str, str]):
        self.aliases = aliases

    # ------------------------------------------------------------------
    # lattice plumbing
    # ------------------------------------------------------------------
    def initial(self):
        return {}

    def join(self, left, right):
        if left == right:
            return left
        joined = {}
        for name in left.keys() & right.keys():
            value = _join_value(left[name], right[name])
            if value is not None:
                joined[name] = value
        return joined

    # ------------------------------------------------------------------
    # origins
    # ------------------------------------------------------------------
    def _origin(self, expr: ast.AST):
        """Abstract value born from ``expr``, or None."""
        if not isinstance(expr, ast.Call):
            return None
        func = expr.func
        if isinstance(func, ast.Attribute):
            if func.attr == "iterator":
                return ("trieiter", 0, 0, _NO)
            if func.attr == "cursor":
                return ("cursor", 0, 0)
        dotted = resolve_call(func, self.aliases)
        if dotted is None:
            return None
        tail = dotted.rsplit(".", 1)[-1]
        if tail in INDEX_CLASSES:
            prefix = "point" if tail in POINT_ONLY_CLASSES else "ok"
            return ("index", "live", prefix)
        if tail == "make_index" and expr.args:
            first = expr.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                prefix = "point" if first.value in POINT_ONLY_NAMES else "ok"
                return ("index", "live", prefix)
            return ("index", "live", "ok")  # unknown name: assume capable
        return None

    # ------------------------------------------------------------------
    # transfer
    # ------------------------------------------------------------------
    def transfer(self, node: Node, state, report=None):
        if node.kind == KIND_TEST:
            # conditions mutate nothing here; effects of try_descend /
            # at_end inside a test are applied per-edge by refine().
            # Still surface check-only violations (e.g. key() in a test).
            if node.guard is not None and report is not None:
                self._check_expr(node.guard, state, report)
            return state
        if node.kind != KIND_STMT or node.stmt is None:
            return state
        stmt = node.stmt
        new = state
        # 1. apply method effects / escapes in evaluation order
        for call in self._calls(stmt):
            new = self._apply_call(call, new, report)
        # 2. deletions and (re)bindings
        for inner in ast.walk(stmt):
            if isinstance(inner, ast.Name) and isinstance(inner.ctx, ast.Del):
                new = self._drop(new, inner.id)
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            new = self._assign(stmt.targets[0].id, stmt.value, new)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None \
                and isinstance(stmt.target, ast.Name):
            new = self._assign(stmt.target.id, stmt.value, new)
        else:
            # any other store to a tracked name invalidates it
            for inner in ast.walk(stmt):
                if isinstance(inner, ast.Name) \
                        and isinstance(inner.ctx, ast.Store):
                    new = self._drop(new, inner.id)
        return new

    def _assign(self, name: str, value: ast.AST, state):
        born = self._origin(value)
        if born is not None:
            new = dict(state)
            new[name] = born
            return new
        # aliasing a tracked object under two names would de-synchronise
        # their states; drop both rather than guess.
        if isinstance(value, ast.Name) and value.id in state:
            new = self._drop(state, value.id)
            return self._drop(new, name)
        return self._drop(state, name)

    @staticmethod
    def _drop(state, name: str):
        if name in state:
            new = dict(state)
            del new[name]
            return new
        return state

    # ------------------------------------------------------------------
    # calls: method effects, freezes, escapes
    # ------------------------------------------------------------------
    @staticmethod
    def _calls(stmt: ast.AST):
        """Calls inside one statement, outermost-last (≈ evaluation order)."""
        calls = [n for n in ast.walk(stmt) if isinstance(n, ast.Call)]
        calls.reverse()
        return calls

    def _apply_call(self, call: ast.Call, state, report):
        func = call.func
        # method call on a tracked local
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name) \
                and func.value.id in state:
            return self._method(call, func.value.id, func.attr, state, report)
        # tracked locals passed as arguments: freeze or escape
        dotted = resolve_call(func, self.aliases)
        tail = dotted.rsplit(".", 1)[-1] if dotted else None
        tracked_args = [a.id for a in call.args
                        if isinstance(a, ast.Name) and a.id in state]
        tracked_args += [k.value.id for k in call.keywords
                         if isinstance(k.value, ast.Name) and k.value.id in state]
        if not tracked_args:
            return state
        new = state
        for name in tracked_args:
            value = new.get(name)
            if value is None:
                continue
            if tail in FREEZER_CALLS and value[0] == "index":
                updated = dict(new)
                updated[name] = ("index", "frozen", value[2])
                new = updated
            elif tail not in _HARMLESS_CALLS:
                new = self._drop(new, name)  # escaped to unknown code
        return new

    def _method(self, call: ast.Call, name: str, method: str, state, report):
        value = state[name]
        kind = value[0]
        if kind == "trieiter":
            return self._trieiter_method(call, name, method, value, state, report)
        if kind == "cursor":
            return self._cursor_method(call, name, method, value, state, report)
        return self._index_method(call, name, method, value, state, report)

    # -- TrieIterator ---------------------------------------------------
    def _trieiter_method(self, call, name, method, value, state, report):
        _, lo, hi, at_end = value
        emit = report if report is not None else _ignore
        if method == "open":
            lo, hi = min(lo + 1, _DEPTH_CAP), min(hi + 1, _DEPTH_CAP)
            at_end = _NO
        elif method == "up":
            if hi == 0:
                emit(call, "RA402", "error",
                     f"{name}.up() above the root: every path reaching this "
                     "line has balanced open()/up() already")
            elif lo == 0:
                emit(call, "RA402", "warning",
                     f"{name}.up() may pop above the root on some path "
                     "(unbalanced open()/up())")
            lo, hi = max(lo - 1, 0), max(hi - 1, 0)
            at_end = _NO  # parent was positioned on a real key
        elif method in ("next", "seek"):
            if hi == 0:
                emit(call, "RA401", "error",
                     f"{name}.{method}() before any open(): the iterator is "
                     "above the root on every path reaching this line")
            elif lo == 0:
                emit(call, "RA401", "warning",
                     f"{name}.{method}() may run before open() on some path")
            if at_end == _YES:
                emit(call, "RA401", "error",
                     f"{name}.{method}() after at_end() is already true: "
                     "advancing an exhausted iterator")
            elif at_end == _MAYBE:
                emit(call, "RA401", "warning",
                     f"{name}.{method}() on a possibly exhausted iterator; "
                     "guard with at_end() first")
            at_end = _MAYBE
        elif method == "key":
            if hi == 0:
                emit(call, "RA401", "error",
                     f"{name}.key() before any open(): no component is bound "
                     "on any path reaching this line")
            elif lo == 0:
                emit(call, "RA401", "warning",
                     f"{name}.key() may run before open() on some path")
            if at_end == _YES:
                emit(call, "RA401", "error",
                     f"{name}.key() after at_end() is already true: the "
                     "iterator is exhausted at this depth")
            elif at_end == _MAYBE:
                emit(call, "RA401", "warning",
                     f"{name}.key() on a possibly exhausted iterator; guard "
                     "with at_end() first")
        elif method == "at_end":
            return state  # pure query; refinement happens on branch edges
        else:
            return self._drop(state, name)  # unknown method: stop tracking
        new = dict(state)
        new[name] = ("trieiter", lo, hi, at_end)
        return new

    # -- PrefixCursor ---------------------------------------------------
    def _cursor_method(self, call, name, method, value, state, report):
        _, lo, hi = value
        emit = report if report is not None else _ignore
        if method == "try_descend":
            # unconditional call (result unused / stored): may descend
            new = dict(state)
            new[name] = ("cursor", lo, min(hi + 1, _DEPTH_CAP))
            return new
        if method == "ascend":
            if hi == 0:
                emit(call, "RA402", "error",
                     f"{name}.ascend() above the root: every path reaching "
                     "this line has no un-popped descend")
            elif lo == 0:
                emit(call, "RA402", "warning",
                     f"{name}.ascend() may pop above the root on some path "
                     "(a failed try_descend leaves the depth unchanged)")
            new = dict(state)
            new[name] = ("cursor", max(lo - 1, 0), max(hi - 1, 0))
            return new
        if method in ("child_values", "count", "depth"):
            return state
        return self._drop(state, name)

    # -- TupleIndex -----------------------------------------------------
    def _index_method(self, call, name, method, value, state, report):
        _, frozen, prefix = value
        emit = report if report is not None else _ignore
        if method in PREFIX_METHODS and prefix == "point":
            emit(call, "RA403", "error",
                 f"{name}.{method}() on a SUPPORTS_PREFIX=False index: this "
                 "value flows from a point-lookup-only construction "
                 "(hashset/robinhood/surf) and will raise "
                 "UnsupportedOperationError (§5.4 exclusion)")
        if method in MUTATOR_METHODS:
            if frozen == "frozen":
                emit(call, "RA404", "error",
                     f"{name}.{method}() after the index was handed to the "
                     "executor/adapter (mutation-after-build): cursors and "
                     "counts derived from it are now stale")
            elif frozen == "maybe":
                emit(call, "RA404", "warning",
                     f"{name}.{method}() on an index that may already be "
                     "built into an adapter on some path")
        return state

    # ------------------------------------------------------------------
    # branch refinement
    # ------------------------------------------------------------------
    def refine(self, guard, truth: bool, state):
        while isinstance(guard, ast.UnaryOp) and isinstance(guard.op, ast.Not):
            guard, truth = guard.operand, not truth
        # cursor.try_descend(v) — depth+1 only when the descend succeeded
        if isinstance(guard, ast.Call) and isinstance(guard.func, ast.Attribute) \
                and isinstance(guard.func.value, ast.Name):
            name = guard.func.value.id
            value = state.get(name)
            if value is None:
                return state
            method = guard.func.attr
            if value[0] == "cursor" and method == "try_descend":
                if truth:
                    new = dict(state)
                    new[name] = ("cursor", min(value[1] + 1, _DEPTH_CAP),
                                 min(value[2] + 1, _DEPTH_CAP))
                    return new
                return state
            if value[0] == "trieiter" and method == "at_end":
                new = dict(state)
                new[name] = ("trieiter", value[1], value[2],
                             _YES if truth else _NO)
                return new
            return state
        # idx.SUPPORTS_PREFIX — the §5.4 capability check
        if isinstance(guard, ast.Attribute) and guard.attr == "SUPPORTS_PREFIX" \
                and isinstance(guard.value, ast.Name):
            name = guard.value.id
            value = state.get(name)
            if value is not None and value[0] == "index":
                new = dict(state)
                new[name] = ("index", value[1], "ok" if truth else "point")
                return new
        return state

    # ------------------------------------------------------------------
    # check-only sweep for calls inside branch conditions
    # ------------------------------------------------------------------
    def _check_expr(self, expr: ast.AST, state, report):
        for call in self._calls(expr):
            func = call.func
            if isinstance(func, ast.Attribute) \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id in state:
                # run the method transfer for its findings, discard state
                self._method(call, func.value.id, func.attr, state, report)


def _ignore(node, code, severity, message):  # pragma: no cover
    pass
