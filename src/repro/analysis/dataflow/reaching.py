"""Reaching-definitions-family passes: scopes, boundness, liveness.

Three pieces, all per-function and all over the same
:class:`~repro.analysis.dataflow.cfg.CFG`:

* :class:`FunctionScope` — which names are true locals, which are
  parameters, which escape into nested functions (closures) and which
  are declared ``global``/``nonlocal``.  Comprehension targets belong to
  their own scope and are excluded throughout (Python 3 semantics).
* :func:`use_before_def` — a forward *boundness* fixpoint (3-value
  lattice UNBOUND < MAYBE < BOUND per name).  A load of a local that is
  UNBOUND — no path from entry binds it — is a guaranteed ``NameError``
  (rule RA504).  MAYBE (bound on some paths) is deliberately not
  reported: correlated branches make it too false-positive-prone for a
  CI gate.
* :func:`dead_stores` — a backward liveness fixpoint.  A store to a
  local that is not live-out at the storing node can never be read
  (rule RA503).  Only plain single-name assignments are reported;
  loop targets, unpacking, augmented targets, ``_``-prefixed names and
  anything captured by a closure are excluded as idiomatic or unsound
  to judge.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.dataflow.cfg import (
    CFG,
    KIND_ENTRY,
    KIND_FORHEAD,
    KIND_HANDLER,
    KIND_STMT,
    KIND_TEST,
    KIND_WITHHEAD,
    Node,
)
from repro.analysis.dataflow.solver import ForwardAnalysis, solve_forward

_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)

# boundness lattice
UNBOUND = 0
MAYBE = 1
BOUND = 2


# ----------------------------------------------------------------------
# Scope discovery
# ----------------------------------------------------------------------
@dataclass
class FunctionScope:
    """Name classification for one function body."""

    params: frozenset[str]
    locals: frozenset[str]       # names bound somewhere in the body
    escaping: frozenset[str]     # referenced from nested function scopes
    declared: frozenset[str]     # global / nonlocal declarations

    def tracked(self) -> frozenset[str]:
        """Locals safe to reason about flow-sensitively."""
        return self.locals - self.declared - self.escaping


def _param_names(args: ast.arguments) -> list[str]:
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


class _ScopeCollector(ast.NodeVisitor):
    """Bound / escaping / declared names of one function, nested scopes cut."""

    def __init__(self) -> None:
        self.bound: set[str] = set()
        self.escaping: set[str] = set()
        self.declared: set[str] = set()
        self._comp_targets: list[set[str]] = []

    # -- nested scopes: their loads may capture our locals ---------------
    def _visit_nested(self, node: ast.AST) -> None:
        for inner in ast.walk(node):
            if isinstance(inner, ast.Name):
                self.escaping.add(inner.id)
            elif isinstance(inner, (ast.Global, ast.Nonlocal)):
                self.escaping.update(inner.names)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.bound.add(node.name)
        self._visit_nested(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.bound.add(node.name)
        self._visit_nested(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_nested(node)

    # -- comprehension targets are their own scope -----------------------
    def _visit_comprehension(self, node) -> None:
        targets: set[str] = set()
        for gen in node.generators:
            for inner in ast.walk(gen.target):
                if isinstance(inner, ast.Name):
                    targets.add(inner.id)
        self._comp_targets.append(targets)
        self.generic_visit(node)
        self._comp_targets.pop()

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- plain bindings ---------------------------------------------------
    def _comp_local(self, name: str) -> bool:
        return any(name in targets for targets in self._comp_targets)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)) and not self._comp_local(node.id):
            self.bound.add(node.id)

    def visit_Global(self, node: ast.Global) -> None:
        self.declared.update(node.names)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self.declared.update(node.names)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.bound.add(alias.asname or alias.name.split(".")[0])

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            if alias.name != "*":
                self.bound.add(alias.asname or alias.name)


def function_scope(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> FunctionScope:
    """Classify every name of ``func``'s own scope."""
    collector = _ScopeCollector()
    for stmt in func.body:
        collector.visit(stmt)
    params = frozenset(_param_names(func.args))
    return FunctionScope(
        params=params,
        locals=frozenset(collector.bound - collector.declared),
        escaping=frozenset(collector.escaping),
        declared=frozenset(collector.declared),
    )


# ----------------------------------------------------------------------
# Per-node defs / uses (header-scoped: compound bodies are other nodes)
# ----------------------------------------------------------------------
@dataclass
class NodeEffects:
    """Names a CFG node uses (before) and defines / deletes (after)."""

    uses: list[ast.Name] = field(default_factory=list)
    defs: list[ast.Name] = field(default_factory=list)
    dels: list[str] = field(default_factory=list)


class _EffectCollector(ast.NodeVisitor):
    """Loads and stores of one header, nested scopes and comps cut out."""

    def __init__(self) -> None:
        self.effects = NodeEffects()
        self._comp_targets: list[set[str]] = []

    def _visit_nested(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            self.effects.defs.append(
                ast.copy_location(ast.Name(id=node.name, ctx=ast.Store()), node))

    visit_FunctionDef = _visit_nested  # type: ignore[assignment]
    visit_AsyncFunctionDef = _visit_nested  # type: ignore[assignment]
    visit_ClassDef = _visit_nested  # type: ignore[assignment]
    visit_Lambda = _visit_nested  # type: ignore[assignment]

    def _visit_comprehension(self, node) -> None:
        targets: set[str] = set()
        for gen in node.generators:
            for inner in ast.walk(gen.target):
                if isinstance(inner, ast.Name):
                    targets.add(inner.id)
        self._comp_targets.append(targets)
        self.generic_visit(node)
        self._comp_targets.pop()

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def _comp_local(self, name: str) -> bool:
        return any(name in targets for targets in self._comp_targets)

    def visit_Name(self, node: ast.Name) -> None:
        if self._comp_local(node.id):
            return
        if isinstance(node.ctx, ast.Load):
            self.effects.uses.append(node)
        elif isinstance(node.ctx, ast.Store):
            self.effects.defs.append(node)
        elif isinstance(node.ctx, ast.Del):
            self.effects.dels.append(node.id)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        # a bare annotation (`x: int`) declares without binding
        if node.value is None:
            return
        self.visit(node.value)
        self.visit(node.target)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # the target is read before it is written
        if isinstance(node.target, ast.Name) and not self._comp_local(node.target.id):
            self.effects.uses.append(node.target)
            self.effects.defs.append(node.target)
        else:
            self.visit(node.target)
        self.visit(node.value)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            name = alias.asname or alias.name.split(".")[0]
            self.effects.defs.append(
                ast.copy_location(ast.Name(id=name, ctx=ast.Store()), node))

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            if alias.name == "*":
                continue
            name = alias.asname or alias.name
            self.effects.defs.append(
                ast.copy_location(ast.Name(id=name, ctx=ast.Store()), node))


def _collect(*roots: "ast.AST | None") -> NodeEffects:
    collector = _EffectCollector()
    for root in roots:
        if root is not None:
            collector.visit(root)
    return collector.effects


def node_effects(node: Node) -> NodeEffects:
    """Header-scoped uses / defs of one CFG node."""
    if node.kind == KIND_STMT:
        return _collect(node.stmt)
    if node.kind == KIND_TEST:
        return _collect(node.guard)
    if node.kind == KIND_FORHEAD:
        stmt = node.stmt
        effects = _collect(stmt.iter)
        effects.defs.extend(_collect(stmt.target).defs)
        return effects
    if node.kind == KIND_WITHHEAD:
        stmt = node.stmt
        effects = NodeEffects()
        for item in stmt.items:
            effects.uses.extend(_collect(item.context_expr).uses)
            if item.optional_vars is not None:
                effects.defs.extend(_collect(item.optional_vars).defs)
        return effects
    if node.kind == KIND_HANDLER:
        handler = node.stmt
        effects = _collect(handler.type)
        if handler.name:
            effects.defs.append(
                ast.copy_location(ast.Name(id=handler.name, ctx=ast.Store()),
                                  handler))
        return effects
    return NodeEffects()  # entry / exit


# ----------------------------------------------------------------------
# Use-before-def: forward boundness
# ----------------------------------------------------------------------
class _Boundness(ForwardAnalysis):
    """3-value boundness of tracked locals; reports UNBOUND loads."""

    def __init__(self, cfg: CFG, scope: FunctionScope):
        self.scope = scope
        self.tracked = scope.tracked() - scope.params
        self.effects = {n.index: node_effects(n) for n in cfg.nodes}

    def initial(self):
        return {name: UNBOUND for name in self.tracked}

    def transfer(self, node: Node, state, report=None):
        effects = self.effects[node.index]
        if report is not None:
            for use in effects.uses:
                if state.get(use.id) == UNBOUND and use.id in self.tracked:
                    report(use, "RA504", "error",
                           f"local variable {use.id!r} is used before any "
                           "assignment on every path reaching this line "
                           "(guaranteed NameError)")
        if not effects.defs and not effects.dels:
            return state
        new = dict(state)
        for target in effects.defs:
            if target.id in self.tracked:
                new[target.id] = BOUND
        for name in effects.dels:
            if name in self.tracked:
                new[name] = UNBOUND
        return new

    def join(self, left, right):
        if left == right:
            return left
        return {name: left[name] if left[name] == right[name] else MAYBE
                for name in left}


def use_before_def(cfg: CFG, scope: "FunctionScope | None" = None):
    """``(ast.Name, message)`` pairs for guaranteed-unbound loads."""
    scope = scope or function_scope(cfg.func)
    analysis = _Boundness(cfg, scope)
    states = solve_forward(cfg, analysis)
    found: list[tuple[ast.Name, str]] = []
    seen: set[tuple[int, int, str]] = set()

    def report(node, code, severity, message):
        key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0),
               node.id)
        if key not in seen:
            seen.add(key)
            found.append((node, message))

    for index, state in sorted(states.items()):
        analysis.transfer(cfg.nodes[index], state, report=report)
    return found


# ----------------------------------------------------------------------
# Dead stores: backward liveness
# ----------------------------------------------------------------------
def _liveness(cfg: CFG, effects: dict[int, NodeEffects],
              tracked: frozenset[str]) -> dict[int, frozenset[str]]:
    """live-out set per node (backward may-analysis to fixpoint)."""
    use_sets = {i: frozenset(n.id for n in e.uses if n.id in tracked)
                for i, e in effects.items()}
    def_sets = {i: frozenset(n.id for n in e.defs if n.id in tracked)
                for i, e in effects.items()}
    live_in: dict[int, frozenset[str]] = {i: frozenset() for i in effects}
    live_out: dict[int, frozenset[str]] = {i: frozenset() for i in effects}
    work = list(effects)
    budget = 64 * max(len(cfg), 1)
    while work and budget > 0:
        budget -= 1
        index = work.pop()
        node = cfg.nodes[index]
        out = frozenset().union(*(live_in[e.dst] for e in node.succ)) \
            if node.succ else frozenset()
        new_in = use_sets[index] | (out - def_sets[index])
        live_out[index] = out
        if new_in != live_in[index]:
            live_in[index] = new_in
            work.extend(node.pred)
    return live_out


def dead_stores(cfg: CFG, scope: "FunctionScope | None" = None):
    """``(ast.Name, message)`` pairs for stores that can never be read."""
    scope = scope or function_scope(cfg.func)
    tracked = scope.tracked()
    effects = {n.index: node_effects(n) for n in cfg.nodes}
    live_out = _liveness(cfg, effects, tracked)
    found: list[tuple[ast.Name, str]] = []
    for node in cfg.nodes:
        if node.kind != KIND_STMT or node.index not in live_out:
            continue
        stmt = node.stmt
        targets: list[ast.Name] = []
        if isinstance(stmt, ast.Assign):
            targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None \
                and isinstance(stmt.target, ast.Name):
            targets = [stmt.target]
        for target in targets:
            name = target.id
            if (name.startswith("_") or name not in tracked
                    or name in live_out[node.index]):
                continue
            found.append((target,
                          f"value assigned to {name!r} is never read on any "
                          "path from here (dead store); drop the binding or "
                          "use the value"))
    return found
