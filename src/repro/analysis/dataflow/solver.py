"""Generic worklist fixpoint solver for forward dataflow analyses.

An analysis supplies an initial state, a monotone transfer function, a
join, and (optionally) an edge refiner that sharpens state along guarded
branches — the piece that lets the typestate rules understand
``if cursor.try_descend(v):`` (depth+1 on the true edge only) and
``while not it.at_end():`` (not-exhausted inside the body).

States are treated as immutable values: ``transfer``/``refine``/``join``
return fresh states (or the argument unchanged) and never mutate their
inputs.  ``None`` is the implicit bottom — the state of unreachable
nodes, which are simply never visited, so dead code cannot raise
findings.

Termination: all shipped analyses use finite lattices per variable
(capped depth intervals, small enums), so the chaotic iteration
converges; a generous iteration budget guards against a non-monotone
user-supplied transfer, degrading to partial (still sound-for-reporting)
results instead of hanging the linter.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.analysis.dataflow.cfg import CFG, Node

#: findings callback: (ast_node, code, severity_name, message)
ReportFn = Callable[[Any, str, str, str], None]


class ForwardAnalysis:
    """Base class for forward dataflow analyses over one CFG."""

    def initial(self) -> Any:
        """State at the function entry."""
        raise NotImplementedError

    def transfer(self, node: Node, state: Any,
                 report: "ReportFn | None" = None) -> Any:
        """State after executing ``node``; with ``report`` set, also emit
        findings for protocol violations observable in ``state`` (the
        reporting pass runs once, over the fixed point)."""
        raise NotImplementedError

    def refine(self, guard, truth: bool, state: Any) -> Any:
        """Sharpen ``state`` along a guarded edge (default: no-op)."""
        return state

    def join(self, left: Any, right: Any) -> Any:
        """Least upper bound of two states."""
        raise NotImplementedError


def solve_forward(cfg: CFG, analysis: ForwardAnalysis,
                  max_steps: "int | None" = None) -> dict[int, Any]:
    """In-states of every reachable node at the least fixed point."""
    in_states: dict[int, Any] = {cfg.entry: analysis.initial()}
    work: deque[int] = deque([cfg.entry])
    queued = {cfg.entry}
    budget = max_steps if max_steps is not None else 64 * max(len(cfg), 1)
    while work and budget > 0:
        budget -= 1
        index = work.popleft()
        queued.discard(index)
        node = cfg.nodes[index]
        out = analysis.transfer(node, in_states[index])
        for edge in node.succ:
            state = out
            if edge.guard is not None and edge.truth is not None:
                state = analysis.refine(edge.guard, edge.truth, out)
            old = in_states.get(edge.dst)
            new = state if old is None else analysis.join(old, state)
            if old is None or new != old:
                in_states[edge.dst] = new
                if edge.dst not in queued:
                    work.append(edge.dst)
                    queued.add(edge.dst)
    return in_states


def report_fixed_point(cfg: CFG, analysis: ForwardAnalysis,
                       in_states: dict[int, Any], report: ReportFn) -> None:
    """One reporting sweep over the solved states (no state is kept)."""
    for index in sorted(in_states):
        analysis.transfer(cfg.nodes[index], in_states[index], report=report)
