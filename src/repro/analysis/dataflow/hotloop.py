"""Hot-loop hygiene detection (RA501/RA502) and obs routing (RA601).

The paper's per-probe cost argument (§5.2) assumes the inner join loops
do O(1) work per binding beyond the index operations themselves; a
Python reproduction silently loses that property the moment someone
drops a list comprehension or a linear membership test into the probe
loop.  This module finds the *hot regions* of a module —

* the body of every **innermost** loop (a loop containing no other
  loop), and
* the **whole body** of every directly-recursive function (the repo's
  join drivers recurse per attribute level, so their per-call
  allocations are per-binding costs even though no syntactic loop
  encloses them)

— and flags, inside those regions:

* **RA501** — fresh container allocations: list/dict/set/tuple displays
  and comprehensions, ``list()``/``dict()``/``set()`` calls, and ``+`` /
  ``+=`` on sequence-valued operands (string or list concatenation
  allocates a new object per iteration).
* **RA502** — known-O(n) operations: ``x in <list/tuple display>``,
  ``sorted(...)`` (allocates *and* sorts per iteration — hoist it or
  sort in place outside the loop), ``tuple(<generator>)`` /
  ``list(<generator>)`` materialisation, ``min``/``max``/``sum`` over a
  fresh iterable, and ``.index()`` / ``.count()`` on sequences.

Both rules are *warnings*: a human must judge whether the allocation is
on the per-probe path or amortised (e.g. done once per output tuple).
Suppress deliberate ones with ``# repro: noqa[RA501]`` or adopt them
into ``analysis-baseline.json``.

:func:`scan_unguarded_obs` (RA601) guards the observability discipline
of ``repro.obs``: method calls on metrics/tracer/observer receivers
inside an **innermost loop** must sit under an ``if …enabled:`` branch
(an ``.enabled`` attribute test, or a name ending in ``enabled``), so
disabled instrumentation can never silently tax the probe path.  Plain
``+=`` accumulation into local counters or slot attributes is the
sanctioned alternative and is never flagged.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

_LOOPS = (ast.For, ast.While, ast.AsyncFor)
_FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef)
_COMPS = (ast.ListComp, ast.SetComp, ast.DictComp)
_DISPLAYS = (ast.List, ast.Dict, ast.Set)

#: builtin calls that allocate a fresh container
_ALLOC_CALLS = frozenset({"list", "dict", "set"})
#: builtin calls that traverse their whole argument
_LINEAR_CALLS = frozenset({"sorted", "min", "max", "sum", "any", "all"})
#: sequence methods that scan linearly
_LINEAR_METHODS = frozenset({"index", "count"})


@dataclass(frozen=True)
class HotRegion:
    """One hot region: the statements to scan and why they are hot."""

    body: tuple[ast.stmt, ...]
    reason: str  # "innermost loop" | "recursive function f"


def _contains_loop(stmts: "list[ast.stmt] | tuple[ast.stmt, ...]") -> bool:
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, _LOOPS):
                return True
    return False


def _is_directly_recursive(func: ast.AST) -> bool:
    name = func.name
    for node in ast.walk(func):
        if node is func:
            continue
        if isinstance(node, _FUNCS) and node.name == name:
            return False  # shadowed by a nested def of the same name
    for node in ast.walk(func):
        if (isinstance(node, ast.Call)
                and ((isinstance(node.func, ast.Name) and node.func.id == name)
                     or (isinstance(node.func, ast.Attribute)
                         and node.func.attr == name
                         and isinstance(node.func.value, ast.Name)
                         and node.func.value.id == "self"))):
            return True
    return False


def hot_regions(tree: ast.AST) -> Iterator[HotRegion]:
    """Hot regions of a module: innermost loop bodies and the bodies of
    directly-recursive functions."""
    for node in ast.walk(tree):
        if isinstance(node, _LOOPS):
            body = list(node.body) + list(node.orelse)
            if not _contains_loop(body):
                yield HotRegion(tuple(body), "innermost loop")
        elif isinstance(node, _FUNCS) and _is_directly_recursive(node):
            yield HotRegion(tuple(node.body),
                            f"recursive function {node.name}")


def _walk_region(body: tuple[ast.stmt, ...]) -> Iterator[ast.AST]:
    """Walk a hot region without descending into nested function defs
    (their bodies are separate regions if they qualify on their own)."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNCS + (ast.Lambda,)):
                continue
            stack.append(child)


def _describe_alloc(node: ast.AST) -> "str | None":
    if isinstance(node, ast.ListComp):
        return "list comprehension allocates a fresh list"
    if isinstance(node, ast.SetComp):
        return "set comprehension allocates a fresh set"
    if isinstance(node, ast.DictComp):
        return "dict comprehension allocates a fresh dict"
    if isinstance(node, ast.List) and node.elts:
        return "list display allocates a fresh list"
    if isinstance(node, ast.Set):
        return "set display allocates a fresh set"
    if isinstance(node, ast.Dict) and node.keys:
        return "dict display allocates a fresh dict"
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in _ALLOC_CALLS):
        return f"{node.func.id}() allocates a fresh container"
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        if isinstance(node.left, (ast.List, ast.Tuple)) \
                or isinstance(node.right, (ast.List, ast.Tuple)):
            return "sequence concatenation with + copies both operands"
    if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add) \
            and isinstance(node.value, (ast.List, ast.Tuple)):
        return "+= with a sequence literal copies per iteration"
    return None


def _describe_linear(node: ast.AST) -> "str | None":
    if isinstance(node, ast.Compare) \
            and any(isinstance(op, (ast.In, ast.NotIn)) for op in node.ops):
        for comparator in node.comparators:
            if isinstance(comparator, (ast.List, ast.Tuple)) \
                    and len(getattr(comparator, "elts", ())) > 3:
                return ("membership test against a sequence literal is "
                        "O(n) per probe; use a frozenset constant")
        return None
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "sorted":
                return ("sorted() copies and sorts its argument on every "
                        "iteration; hoist it or sort in place outside the "
                        "hot region")
            if func.id in ("tuple", "list") and node.args \
                    and isinstance(node.args[0], ast.GeneratorExp):
                return (f"{func.id}(<generator>) materialises the whole "
                        "stream per iteration")
            if func.id in _LINEAR_CALLS and node.args \
                    and isinstance(node.args[0],
                                   (ast.GeneratorExp, ast.ListComp)):
                return (f"{func.id}() over a fresh comprehension traverses "
                        "the whole input per iteration")
        elif isinstance(func, ast.Attribute) \
                and func.attr in _LINEAR_METHODS and node.args:
            return (f".{func.attr}() scans the sequence linearly on every "
                    "iteration")
    return None


# ----------------------------------------------------------------------
# RA601 — unguarded observability calls in innermost loops
# ----------------------------------------------------------------------

#: receiver-name segments that mark a call as observability plumbing
_OBS_RECEIVERS = frozenset({
    "obs", "_obs", "observer", "_observer",
    "metrics", "_metrics", "tracer", "_tracer",
    # the distributed-obs layer (PR 9): flight recorders and registries
    "flightrec", "_flightrec", "recorder", "_recorder",
    "flight_recorder", "_flight_recorder", "FLIGHT_RECORDER",
    "registry", "_registry", "METRICS_REGISTRY",
})
#: obs-API method names that mark a call even off a recognised receiver
_OBS_METHODS = frozenset({"inc", "observe", "span", "add_span",
                          "record_build", "record", "to_prometheus_text",
                          "scrape"})


def _attr_parts(node: ast.AST) -> list[str]:
    """Names along an attribute chain, method first (``a.b.c()`` →
    ``["c", "b", "a"]``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return parts


def _obs_call_method(node: ast.AST) -> "str | None":
    """The method name if ``node`` is an obs-ish method call, else None."""
    if not (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)):
        return None
    parts = _attr_parts(node.func)
    method, receivers = parts[0], parts[1:]
    if any(part in _OBS_RECEIVERS for part in receivers):
        return method
    if method in _OBS_METHODS and receivers:
        return method
    return None


def _test_mentions_enabled(test: ast.AST) -> bool:
    """Does an ``if`` test look like the null-object enabled guard?"""
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr == "enabled":
            return True
        if isinstance(node, ast.Name) and node.id.endswith("enabled"):
            return True
    return False


def _scan_obs_stmts(stmts, guarded: bool) -> Iterator[tuple[ast.AST, str]]:
    for stmt in stmts:
        if isinstance(stmt, _FUNCS):
            continue  # a nested def's body is its own scope
        if isinstance(stmt, ast.If):
            yield from _scan_obs_stmts(
                stmt.body, guarded or _test_mentions_enabled(stmt.test))
            yield from _scan_obs_stmts(stmt.orelse, guarded)
            continue
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            if not guarded:
                for item in stmt.items:
                    yield from _scan_obs_exprs(item.context_expr)
            yield from _scan_obs_stmts(stmt.body, guarded)
            continue
        if isinstance(stmt, ast.Try):
            yield from _scan_obs_stmts(stmt.body, guarded)
            for handler in stmt.handlers:
                yield from _scan_obs_stmts(handler.body, guarded)
            yield from _scan_obs_stmts(stmt.orelse, guarded)
            yield from _scan_obs_stmts(stmt.finalbody, guarded)
            continue
        if not guarded:
            yield from _scan_obs_exprs(stmt)


def _scan_obs_exprs(node: ast.AST) -> Iterator[tuple[ast.AST, str]]:
    for sub in ast.walk(node):
        method = _obs_call_method(sub)
        if method is not None:
            yield (sub, method)


def scan_unguarded_obs(tree: ast.AST) -> Iterator[tuple[ast.AST, str]]:
    """Yield ``(call_node, method_name)`` for every obs-ish method call
    inside an innermost loop that is not routed through an
    ``…enabled``-style guard (RA601).  ``else`` branches of a guard are
    scanned with the *outer* guard state — guarding the then-branch does
    not bless the else-branch."""
    for node in ast.walk(tree):
        if isinstance(node, _LOOPS):
            body = list(node.body) + list(node.orelse)
            if not _contains_loop(body):
                yield from _scan_obs_stmts(body, False)


def scan_hot_regions(tree: ast.AST) -> Iterator[tuple[ast.AST, str, str]]:
    """Yield ``(ast_node, code, message)`` for every RA501/RA502 hit.

    Deduplicates by source position so a statement inside two overlapping
    hot regions (an innermost loop inside a recursive function) is
    reported once.
    """
    seen: set[tuple[int, int, str]] = set()
    for region in hot_regions(tree):
        for node in _walk_region(region.body):
            alloc = _describe_alloc(node)
            if alloc is not None:
                key = (node.lineno, node.col_offset, "RA501")
                if key not in seen:
                    seen.add(key)
                    yield (node, "RA501",
                           f"{alloc} inside a hot region ({region.reason}); "
                           "hoist it out of the per-binding path or preallocate")
            linear = _describe_linear(node)
            if linear is not None:
                key = (node.lineno, node.col_offset, "RA502")
                if key not in seen:
                    seen.add(key)
                    yield (node, "RA502",
                           f"{linear} (hot region: {region.reason})")
