"""Control-flow graphs over Python function bodies.

One :class:`CFG` per function: nodes are statement *headers* (a compound
statement contributes only the part that executes at its own position —
an ``if``'s test, a ``for``'s target binding — its body becomes separate
nodes), edges carry an optional branch guard so downstream analyses can
refine state per branch (``if cursor.try_descend(v):`` means depth+1 on
the true edge only).

Covered control flow: ``if``/``elif``/``else``, ``while`` (including
``while True`` with no false exit), ``for``, ``break``/``continue``,
loop ``else``, early ``return``, ``raise``, ``try``/``except``/``else``/
``finally`` (every protected statement gets a may-raise edge to each
handler head), ``with``, ``match`` and ``assert``.  Nested functions and
classes are opaque single nodes — they get their own CFGs via
:func:`function_cfgs`.

The construction is the classic dangling-edge walk: each statement list
is processed against a *frontier* of unconnected out-edges which the next
node seals.  Unreachable statements (after a ``return``) produce nodes
with no predecessors, which fixpoint solvers simply never visit — dead
code cannot raise findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

#: a dangling out-edge awaiting its destination: (source node, guard, truth)
_Dangling = "tuple[int, ast.expr | None, bool | None]"

#: node kinds — what the node's `stmt`/`guard` mean to analyses
KIND_ENTRY = "entry"
KIND_EXIT = "exit"
KIND_STMT = "stmt"        # a simple statement, executed atomically
KIND_TEST = "test"        # a branch condition (guard holds the expression)
KIND_FORHEAD = "forhead"  # a for loop's per-iteration target binding
KIND_WITHHEAD = "withhead"  # a with statement's context-manager entry
KIND_HANDLER = "handler"  # an except clause head (binds the exception name)


@dataclass
class Edge:
    """One CFG edge; ``guard``/``truth`` describe the branch taken."""

    dst: int
    guard: "ast.expr | None" = None
    truth: "bool | None" = None


@dataclass
class Node:
    """One CFG node: a statement header plus its out-edges."""

    index: int
    kind: str
    stmt: "ast.AST | None" = None
    guard: "ast.expr | None" = None
    succ: list[Edge] = field(default_factory=list)
    pred: list[int] = field(default_factory=list)

    @property
    def lineno(self) -> int:
        anchor = self.guard if self.guard is not None else self.stmt
        return getattr(anchor, "lineno", 1)

    @property
    def col_offset(self) -> int:
        anchor = self.guard if self.guard is not None else self.stmt
        return getattr(anchor, "col_offset", 0)


@dataclass
class CFG:
    """A function's control-flow graph."""

    func: "ast.FunctionDef | ast.AsyncFunctionDef"
    nodes: list[Node]
    entry: int
    exit: int

    def node(self, index: int) -> Node:
        return self.nodes[index]

    def __len__(self) -> int:
        return len(self.nodes)


_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def function_cfgs(tree: ast.AST) -> Iterator[CFG]:
    """CFGs for every function (and method) in a module, nested included."""
    for node in ast.walk(tree):
        if isinstance(node, _FUNCTION_NODES):
            yield build_cfg(node)


def build_cfg(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> CFG:
    """Build the CFG of one function definition."""
    builder = _Builder(func)
    builder.build()
    return CFG(func=func, nodes=builder.nodes,
               entry=builder.entry, exit=builder.exit)


class _Builder:
    """Dangling-edge CFG construction over one function body."""

    def __init__(self, func: "ast.FunctionDef | ast.AsyncFunctionDef"):
        self.func = func
        self.nodes: list[Node] = []
        self.entry = self._make(KIND_ENTRY, func)
        self.exit = self._make(KIND_EXIT, func)
        #: stack of (continue-target node, accumulated break frontier)
        self._loops: list[tuple[int, list]] = []
        #: stack of active handler-head node lists (innermost last)
        self._exc: list[list[int]] = []

    # ------------------------------------------------------------------
    def _make(self, kind: str, stmt: "ast.AST | None" = None,
              guard: "ast.expr | None" = None) -> int:
        node = Node(index=len(self.nodes), kind=kind, stmt=stmt, guard=guard)
        self.nodes.append(node)
        return node.index

    def _body_node(self, kind: str, stmt: "ast.AST | None" = None,
                   guard: "ast.expr | None" = None) -> int:
        """A node that may raise: wired to the innermost handler heads."""
        index = self._make(kind, stmt, guard)
        if self._exc:
            for head in self._exc[-1]:
                self._connect(index, head, None, None)
        return index

    def _connect(self, src: int, dst: int, guard, truth) -> None:
        self.nodes[src].succ.append(Edge(dst, guard, truth))
        self.nodes[dst].pred.append(src)

    def _seal(self, frontier: list, target: int) -> None:
        for src, guard, truth in frontier:
            self._connect(src, target, guard, truth)

    # ------------------------------------------------------------------
    def build(self) -> None:
        frontier = self._stmts(self.func.body, [(self.entry, None, None)])
        self._seal(frontier, self.exit)

    def _stmts(self, stmts: list, frontier: list) -> list:
        for stmt in stmts:
            frontier = self._stmt(stmt, frontier)
        return frontier

    # ------------------------------------------------------------------
    def _stmt(self, stmt: ast.stmt, frontier: list) -> list:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, ast.While):
            return self._while(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            head = self._body_node(KIND_WITHHEAD, stmt)
            self._seal(frontier, head)
            return self._stmts(stmt.body, [(head, None, None)])
        if isinstance(stmt, ast.Return):
            node = self._body_node(KIND_STMT, stmt)
            self._seal(frontier, node)
            self._connect(node, self.exit, None, None)
            return []
        if isinstance(stmt, ast.Raise):
            node = self._body_node(KIND_STMT, stmt)
            self._seal(frontier, node)
            if not self._exc:  # no handler in scope: propagates out
                self._connect(node, self.exit, None, None)
            return []
        if isinstance(stmt, ast.Break):
            node = self._make(KIND_STMT, stmt)
            self._seal(frontier, node)
            if self._loops:
                self._loops[-1][1].append((node, None, None))
            else:  # malformed code; keep the graph connected
                self._connect(node, self.exit, None, None)
            return []
        if isinstance(stmt, ast.Continue):
            node = self._make(KIND_STMT, stmt)
            self._seal(frontier, node)
            target = self._loops[-1][0] if self._loops else self.exit
            self._connect(node, target, None, None)
            return []
        if isinstance(stmt, ast.Assert):
            node = self._body_node(KIND_TEST, stmt, stmt.test)
            self._seal(frontier, node)
            if not self._exc:  # a failing assert leaves the function
                self._connect(node, self.exit, stmt.test, False)
            return [(node, stmt.test, True)]
        if isinstance(stmt, ast.Match):
            return self._match(stmt, frontier)
        # simple statements, nested function/class definitions, etc.
        node = self._body_node(KIND_STMT, stmt)
        self._seal(frontier, node)
        return [(node, None, None)]

    # ------------------------------------------------------------------
    def _if(self, stmt: ast.If, frontier: list) -> list:
        test = self._body_node(KIND_TEST, stmt, stmt.test)
        self._seal(frontier, test)
        out = self._stmts(stmt.body, [(test, stmt.test, True)])
        if stmt.orelse:
            out += self._stmts(stmt.orelse, [(test, stmt.test, False)])
        else:
            out.append((test, stmt.test, False))
        return out

    def _while(self, stmt: ast.While, frontier: list) -> list:
        test = self._body_node(KIND_TEST, stmt, stmt.test)
        self._seal(frontier, test)
        self._loops.append((test, []))
        body_out = self._stmts(stmt.body, [(test, stmt.test, True)])
        self._seal(body_out, test)
        _, breaks = self._loops.pop()
        infinite = isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
        normal: list = [] if infinite else [(test, stmt.test, False)]
        if stmt.orelse and normal:
            normal = self._stmts(stmt.orelse, normal)
        return normal + breaks

    def _for(self, stmt: "ast.For | ast.AsyncFor", frontier: list) -> list:
        head = self._body_node(KIND_FORHEAD, stmt)
        self._seal(frontier, head)
        self._loops.append((head, []))
        body_out = self._stmts(stmt.body, [(head, None, None)])
        self._seal(body_out, head)
        _, breaks = self._loops.pop()
        normal: list = [(head, None, None)]
        if stmt.orelse:
            normal = self._stmts(stmt.orelse, normal)
        return normal + breaks

    def _try(self, stmt: ast.Try, frontier: list) -> list:
        # handler heads exist before the body so protected nodes can edge
        # to them; the heads themselves answer to any *outer* handlers.
        heads = [self._body_node(KIND_HANDLER, handler)
                 for handler in stmt.handlers]
        if heads:
            self._exc.append(heads)
        body_out = self._stmts(stmt.body, frontier)
        if heads:
            self._exc.pop()
        if stmt.orelse:
            body_out = self._stmts(stmt.orelse, body_out)
        out = list(body_out)
        for head, handler in zip(heads, stmt.handlers):
            out += self._stmts(handler.body, [(head, None, None)])
        if stmt.finalbody:
            out = self._stmts(stmt.finalbody, out)
        return out

    def _match(self, stmt: ast.Match, frontier: list) -> list:
        head = self._body_node(KIND_TEST, stmt, None)
        self._seal(frontier, head)
        out: list = []
        for case in stmt.cases:
            out += self._stmts(case.body, [(head, None, None)])
        out.append((head, None, None))  # no case matched
        return out
