"""``python -m repro.analysis`` — the CI gate.

Lints the given paths with every ``RA1xx`` rule, contract-checks the
index registry, and exits non-zero when any *error*-severity finding
survives suppression — which is exactly what ``.github/workflows/ci.yml``
runs.  Also reachable as ``python -m repro analysis …``.

Examples::

    python -m repro.analysis                      # lint src + benchmarks
    python -m repro.analysis src --json           # machine-readable report
    python -m repro.analysis --rule RA102 src     # a single rule
    python -m repro.analysis --list-rules
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.engine import analyze_paths, select_rules
from repro.analysis.findings import Finding, Severity, has_errors
from repro.analysis.reporters import render_json, render_text

DEFAULT_PATHS = ("src", "benchmarks")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis for the SonicJoin reproduction: "
                    "lint rules, index-contract checks and plan validation.",
    )
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--rule", action="append", dest="rules", metavar="CODE",
        help="restrict to specific rule codes (repeatable, e.g. --rule RA102)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit a JSON report instead of compiler-style text",
    )
    parser.add_argument(
        "--no-contracts", action="store_true",
        help="skip the index registry contract check (lint only)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _contract_findings(selected: "Sequence[str] | None") -> list[Finding]:
    """Registry contract findings, honoring a --rule filter.

    Importing the registry pulls in the numeric stack; when that is
    unavailable (a lint-only environment) the check degrades to a
    warning instead of crashing the linter.
    """
    if selected is not None and not any(
            code.upper().startswith("RA2") for code in selected):
        return []
    try:
        from repro.analysis.contracts import check_registry
        findings = check_registry()
    except ImportError as exc:
        return [Finding(
            path="<registry>", line=1, column=1, rule="RA200",
            severity=Severity.WARNING,
            message=f"contract check skipped: registry import failed ({exc})",
        )]
    if selected is not None:
        wanted = {code.upper() for code in selected}
        findings = [f for f in findings if f.rule in wanted]
    return findings


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        from repro.analysis.rules import rule_catalog

        for entry in rule_catalog():
            print(f"{entry['code']}  [{entry['severity']}]  {entry['title']}")
        print("RA2xx [error]  index contract checks (repro.analysis.contracts)")
        print("RA3xx [error]  plan validation (repro.analysis.plancheck)")
        return 0

    try:
        rules = select_rules(options.rules)
    except ValueError as exc:
        parser.error(str(exc))

    # a typo'd path must not silently report "clean" and green-light CI
    missing = [p for p in options.paths if not Path(p).exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(missing)}")

    findings = analyze_paths(options.paths, rules=rules)
    if not options.no_contracts:
        findings.extend(_contract_findings(options.rules))
    findings.sort()

    print(render_json(findings) if options.json else render_text(findings))
    return 1 if has_errors(findings) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
