"""``python -m repro.analysis`` — the CI gate.

Lints the given paths with the full rule registry (syntactic RA1xx and
dataflow RA4xx/RA5xx), contract-checks the index registry, and exits
non-zero when any *error*-severity finding survives suppression — which
is exactly what ``.github/workflows/ci.yml`` runs.  Also reachable as
``python -m repro analysis …``.

With ``--baseline`` the gate tightens: any warning-or-worse finding not
adopted in the committed ``analysis-baseline.json`` fails, so new debt
cannot land silently while the adopted debt stays visible as notes.

Examples::

    python -m repro.analysis                      # lint src + benchmarks
    python -m repro.analysis src --json           # machine-readable report
    python -m repro.analysis --sarif > out.sarif  # GitHub code scanning
    python -m repro.analysis --rule RA401 src     # a single rule
    python -m repro.analysis --baseline analysis-baseline.json
    python -m repro.analysis --changed-only       # fast pre-commit loop
    python -m repro.analysis --concurrency-manifest manifest.json
    python -m repro.analysis --numeric-report numeric-report.json
    python -m repro.analysis --list-rules
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.baseline import (
    apply_baseline,
    gates_with_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.changed import GitError, restrict_to_changed
from repro.analysis.engine import analyze_paths, select_rules
from repro.analysis.findings import Finding, Severity, has_errors
from repro.analysis.reporters import render_json, render_sarif, render_text

DEFAULT_PATHS = ("src", "benchmarks")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis for the SonicJoin reproduction: "
                    "lint rules, dataflow typestate/hot-loop checks, "
                    "index-contract checks and plan validation.",
    )
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--rule", action="append", dest="rules", metavar="CODE",
        help="restrict to specific rule codes (repeatable, e.g. --rule RA401)",
    )
    output = parser.add_mutually_exclusive_group()
    output.add_argument(
        "--json", action="store_true",
        help="emit a JSON report instead of compiler-style text",
    )
    output.add_argument(
        "--sarif", action="store_true",
        help="emit a SARIF 2.1.0 log (GitHub code scanning upload format)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="demote findings adopted in FILE to notes and gate on "
             "anything new (warnings included); stale entries surface "
             "as RA002 notes",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="adopt every current warning/error into FILE and exit 0",
    )
    parser.add_argument(
        "--changed-only", action="store_true",
        help="restrict to files changed vs the diff base "
             "(git diff + untracked), for the fast pre-commit loop",
    )
    parser.add_argument(
        "--diff-base", metavar="REF",
        help="base ref for --changed-only (default: origin/main, then "
             "main, then HEAD); implies --changed-only",
    )
    parser.add_argument(
        "--no-contracts", action="store_true",
        help="skip the index registry contract check (lint only)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--concurrency-manifest", nargs="?", const="-", metavar="FILE",
        help="emit the thread-safety manifest (JSON) to FILE (default "
             "stdout) and exit; non-zero when a require_safe entry point "
             "is not classified thread-safe",
    )
    parser.add_argument(
        "--numeric-report", nargs="?", const="-", metavar="FILE",
        help="emit the per-module kernel-hygiene JSON (arrays entering "
             "kernels by dtype class, copy sites, bulk-vs-scalar build "
             "sites) to FILE (default stdout) and exit",
    )
    return parser


def _contract_findings(selected: "Sequence[str] | None") -> list[Finding]:
    """Registry contract findings, honoring a --rule filter.

    Importing the registry pulls in the numeric stack; when that is
    unavailable (a lint-only environment) the check degrades to a
    warning instead of crashing the linter.
    """
    if selected is not None and not any(
            code.upper().startswith("RA2") for code in selected):
        return []
    try:
        from repro.analysis.contracts import check_registry
        findings = check_registry()
    except ImportError as exc:
        return [Finding(
            path="<registry>", line=1, column=1, rule="RA200",
            severity=Severity.WARNING,
            message=f"contract check skipped: registry import failed ({exc})",
        )]
    if selected is not None:
        wanted = {code.upper() for code in selected}
        findings = [f for f in findings if f.rule in wanted]
    return findings


def _emit_manifest(destination: str) -> int:
    """Write the thread-safety manifest; gate on require_safe entries."""
    import json

    from repro.analysis.concurrency.manifest import (
        build_manifest,
        failing_entries,
        validate_manifest,
    )

    data = build_manifest()
    problems = validate_manifest(data)
    if problems:  # pragma: no cover - guards manifest generator bugs
        for problem in problems:
            print(f"manifest invalid: {problem}", file=sys.stderr)
        return 2
    text = json.dumps(data, indent=2) + "\n"
    if destination == "-":
        print(text, end="")
    else:
        Path(destination).write_text(text, encoding="utf-8")
    failures = failing_entries(data)
    for entry in failures:
        print(f"{entry['path']}: {entry['qualname']} classified "
              f"{entry['classification']!r} but is required thread-safe",
              file=sys.stderr)
    return 1 if failures else 0


def _emit_numeric_report(destination: str, paths: "Sequence[str]") -> int:
    """Write the kernel-hygiene report (informational; always exits 0)."""
    import json

    from repro.analysis.numeric.report import build_numeric_report

    data = build_numeric_report(paths)
    text = json.dumps(data, indent=2) + "\n"
    if destination == "-":
        print(text, end="")
    else:
        Path(destination).write_text(text, encoding="utf-8")
    return 0


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        from repro.analysis.rules import rule_catalog

        for entry in rule_catalog():
            print(f"{entry['code']}  [{entry['severity']}]  {entry['title']}")
        print("RA2xx [error]  index contract checks (repro.analysis.contracts)")
        print("RA3xx [error]  plan validation (repro.analysis.plancheck)")
        return 0

    if options.concurrency_manifest is not None:
        return _emit_manifest(options.concurrency_manifest)

    if options.numeric_report is not None:
        return _emit_numeric_report(options.numeric_report, options.paths)

    try:
        rules = select_rules(options.rules)
    except ValueError as exc:
        parser.error(str(exc))

    # a typo'd path must not silently report "clean" and green-light CI
    missing = [p for p in options.paths if not Path(p).exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(missing)}")

    if options.changed_only or options.diff_base is not None:
        try:
            targets: "list" = restrict_to_changed(
                options.paths, options.diff_base)
        except GitError as exc:
            parser.error(str(exc))
    else:
        targets = list(options.paths)

    findings = analyze_paths(targets, rules=rules)
    if not options.no_contracts:
        findings.extend(_contract_findings(options.rules))
    findings.sort()

    if options.write_baseline:
        count = write_baseline(findings, options.write_baseline)
        print(f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
              f"to {options.write_baseline}")
        return 0

    gate = has_errors
    if options.baseline:
        try:
            baseline = load_baseline(options.baseline)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            parser.error(f"cannot load baseline {options.baseline}: {exc}")
        findings = apply_baseline(findings, baseline,
                                  baseline_path=options.baseline)
        gate = gates_with_baseline

    if options.sarif:
        print(render_sarif(findings))
    elif options.json:
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if gate(findings) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
